//! Offline stand-in for `crossbeam-channel`.
//!
//! An unbounded multi-producer/multi-consumer channel built on
//! `Mutex<VecDeque>` + `Condvar`. Unlike `std::sync::mpsc`, both
//! endpoints are `Sync`, which the threaded UDP driver relies on
//! (it shares one node struct — containing the receiver — across
//! threads via `Arc`).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
    /// Signalled when a receiver frees a slot in a bounded channel.
    space: Condvar,
}

struct ChannelState<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Capacity bound for `bounded` channels (`None` = unbounded).
    cap: Option<usize>,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity (`WouldBlock`-style backpressure
    /// signal); the value is handed back to the caller.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full channel (backpressure) rather than
    /// disconnection.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with the channel still empty.
    Timeout,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel disconnected")
    }
}

impl std::error::Error for RecvError {}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

fn channel_with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1, receivers: 1, cap }),
        ready: Condvar::new(),
        space: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel_with_cap(None)
}

/// Create a bounded channel holding at most `cap` queued values.
/// [`Sender::send`] on a full bounded channel blocks until a receiver
/// frees a slot (matching the real crate); [`Sender::try_send`] is the
/// non-blocking form that surfaces `TrySendError::Full` instead.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel_with_cap(Some(cap))
}

impl<T> Sender<T> {
    /// Enqueue `value`; fails only if every receiver has been dropped.
    /// On a [`bounded`] channel this blocks (like the real crate) until a
    /// receiver frees a slot — use [`try_send`](Self::try_send) for the
    /// non-blocking `WouldBlock`-style form.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            match q.cap {
                Some(cap) if q.items.len() >= cap => {
                    q = self.inner.space.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.items.push_back(value);
        drop(q);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Enqueue `value` without blocking: fails with
    /// [`TrySendError::Full`] when a bounded channel is at capacity
    /// (the `WouldBlock`-style backpressure signal) and
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = q.cap {
            if q.items.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        q.items.push_back(value);
        drop(q);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.senders += 1;
        drop(q);
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.senders -= 1;
        let empty = q.senders == 0;
        drop(q);
        if empty {
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.items.pop_front() {
                drop(q);
                self.inner.space.notify_one();
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvError);
            }
            q = self.inner.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block up to `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.items.pop_front() {
                drop(q);
                self.inner.space.notify_one();
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Take a value only if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        let v = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).items.pop_front();
        if v.is_some() {
            self.inner.space.notify_one();
        }
        v
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.receivers += 1;
        drop(q);
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.receivers -= 1;
        let gone = q.receivers == 0;
        drop(q);
        if gone {
            self.inner.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the receiver drains
            42u32
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn bounded_try_send_signals_full_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(e) if e.is_full() => assert_eq!(e.into_inner(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }
}
