//! Offline stand-in for `crossbeam-channel`.
//!
//! An unbounded multi-producer/multi-consumer channel built on
//! `Mutex<VecDeque>` + `Condvar`. Unlike `std::sync::mpsc`, both
//! endpoints are `Sync`, which the threaded UDP driver relies on
//! (it shares one node struct — containing the receiver — across
//! threads via `Arc`).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
}

struct ChannelState<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait timed out with the channel still empty.
    Timeout,
    /// All senders disconnected and the channel is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel disconnected")
    }
}

impl std::error::Error for RecvError {}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1, receivers: 1 }),
        ready: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

impl<T> Sender<T> {
    /// Enqueue `value`; fails only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.receivers == 0 {
            return Err(SendError(value));
        }
        q.items.push_back(value);
        drop(q);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.senders += 1;
        drop(q);
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.senders -= 1;
        let empty = q.senders == 0;
        drop(q);
        if empty {
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.items.pop_front() {
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvError);
            }
            q = self.inner.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block up to `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.items.pop_front() {
                return Ok(v);
            }
            if q.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Take a value only if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).items.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.receivers += 1;
        drop(q);
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }
}
