//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the `homa-bench` targets use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Throughput`], and
//! [`BenchmarkId`] — over a simple mean-of-N-samples timer. There is no
//! statistical analysis, warm-up tuning, or HTML report; each benchmark
//! prints one line:
//!
//! ```text
//! group/name              time: 1.234 µs/iter  (20 samples)  1.18 GiB/s
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (the real crate's `black_box`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark name (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { total: Duration::ZERO, iters: 0, samples: self.sample_size };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { total: Duration::ZERO, iters: 0, samples: self.sample_size };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id:<40} no iterations recorded", self.name);
            return;
        }
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / per_iter)),
            Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
            None => String::new(),
        };
        println!(
            "{}/{id:<40} time: {}/iter  ({} samples){rate}",
            self.name,
            human_time(per_iter),
            b.iters
        );
    }
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(bps: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if bps >= GIB {
        format!("{:.2} GiB", bps / GIB)
    } else if bps >= MIB {
        format!("{:.2} MiB", bps / MIB)
    } else if bps >= KIB {
        format!("{:.2} KiB", bps / KIB)
    } else {
        format!("{bps:.0} B")
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// workload.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    samples: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples (after one
    /// untimed warm-up call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Bytes(8));
        let mut ran = 0u32;
        g.bench_function("add", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(ran >= 3);
    }
}
