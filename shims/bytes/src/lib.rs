//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships minimal local implementations of the third-party APIs it uses.
//! This crate provides the subset of `bytes` consumed by `homa-wire`:
//! [`BytesMut`] as a growable byte buffer, [`BufMut`] for big-endian
//! writes, and [`Buf`] for big-endian reads from `&[u8]`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable, uniquely-owned byte buffer (backed by a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Big-endian append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

/// Big-endian cursor-style reads. Like the real `bytes` crate, reads
/// past the end of the buffer panic; callers check [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }
    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes(head.try_into().expect("2 bytes"))
    }
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("4 bytes"))
    }
    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_be_bytes(head.try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_slice(&[0xAA, 0xBB]);
        assert_eq!(b.len(), 17);
        let mut r: &[u8] = &b;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x0405_0607);
        assert_eq!(r.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(r, &[0xAA, 0xBB]);
    }
}
