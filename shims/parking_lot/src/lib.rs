//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s API shape: `lock()`
//! returns the guard directly (poisoning is swallowed — a poisoned lock
//! just hands back the inner data, which matches `parking_lot`'s
//! no-poisoning semantics closely enough for this workspace).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
