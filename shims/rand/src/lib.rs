//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] (here a
//! xoshiro256++ generator — high quality, deterministic, and entirely
//! self-contained), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! Determinism matters more than matching the real `rand`'s stream:
//! all simulator/workload seeds in this repository are internal, so the
//! only requirement is that the same seed reproduces the same run.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s full domain (`rng.gen::<f64>()` is
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion (the construction the xoshiro
            // authors recommend).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }
}
