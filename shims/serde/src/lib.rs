//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the
//! sibling `serde_derive` shim. See that crate's docs for why this is
//! sound for this workspace (no serializer is ever instantiated).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
