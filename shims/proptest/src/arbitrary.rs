//! `any::<T>()`: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
