//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `None` for roughly a quarter of draws, `Some(inner)` otherwise
/// (matching the real crate's default `Some` weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
