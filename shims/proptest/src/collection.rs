//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vectors of values from `element` with length drawn from `len`
/// (half-open, like the real crate's range form).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
