//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest this workspace uses: the
//! [`proptest!`] macro, `prop_assert*`/`prop_assume!`/[`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map`, ranges/tuples/`Just` as
//! strategies, [`arbitrary::any`], [`collection::vec`], and
//! [`option::of`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimized.
//! * **Fixed deterministic seeding.** Each test's RNG is seeded from a
//!   hash of its module path and name, so failures reproduce across
//!   runs; there is no persistence file.
//! * **Case count** defaults to 64 and can be raised with the
//!   `PROPTEST_CASES` environment variable (same knob as the real
//!   crate).
//!
//! Integer ranges bias ~1/8 of draws to the range's endpoints, which
//! recovers some of the edge-case pressure that shrinking would
//! otherwise provide.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// The glob-imported names used by property tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each function's arguments are drawn from the
/// given strategies for [`cases()`] iterations.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: `{:?} == {:?}`", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)+),
        }
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r)
            }
        }
    };
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // Discarded case: treated as a (vacuous) pass.
            return ::core::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&($strat), rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_hits_all_arms(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&v));
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(0u8..4)) {
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }

        #[test]
        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn endpoint_bias_hits_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bias");
        let strat = 5u64..50;
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match Strategy::sample(&strat, &mut rng) {
                5 => lo_seen = true,
                49 => hi_seen = true,
                v => assert!((5..50).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen, "endpoint bias should hit both bounds");
    }
}
