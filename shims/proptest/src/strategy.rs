//! The [`Strategy`] trait and the basic combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A boxed sampling closure: one arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between same-valued strategies (see
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Build from boxed sampling closures (one per arm).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Fraction of integer-range draws pinned to an endpoint, recovering
/// some of the edge-case pressure the real proptest gets from
/// shrinking.
const EDGE_BIAS_ONE_IN: u64 = 8;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                match rng.next_u64() % (2 * EDGE_BIAS_ONE_IN) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + (rng.next_u64() as u128 % span) as $t,
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                match rng.next_u64() % (2 * EDGE_BIAS_ONE_IN) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t,
                }
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
