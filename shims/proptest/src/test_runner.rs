//! The deterministic RNG and failure type behind [`crate::proptest!`].

use std::fmt;

/// Error carried out of a failing property body by `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64 generator seeded from the test's fully-qualified name, so
/// every run of a given test draws the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
