//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates config/stat types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for
//! serialization once the real `serde` is available, but nothing in the
//! tree actually serializes today (there is no `serde_json`/`bincode`
//! consumer). These derives therefore expand to nothing; the `serde`
//! facade crate re-exports them. `attributes(serde)` keeps any
//! `#[serde(...)]` field attributes legal.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
