//! Integration tests for the paper's mechanism ablations: each of Homa's
//! design choices must have a measurable effect in the direction the
//! paper reports.

use homa::HomaConfig;
use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::slowdown::SlowdownSummary;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_workloads::Workload;

const FABRIC: FabricSpec = FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 };

#[test]
fn delay_attribution_shows_preemption_lag_dominates() {
    // Figure 14's machinery: with delay tracking on, short messages near
    // the tail must show nonzero preemption lag, and (on priority-enabled
    // Homa) lag should dominate same-priority queueing.
    let spec = ScenarioSpec::new("ablate_delay", FABRIC, Workload::W2, 0.8, 6_000, 21);
    let res = run_protocol_scenario(
        Protocol::Homa,
        &spec,
        &OnewayOpts { track_delay: true, ..OnewayOpts::default() }.with_records(),
        None,
    );
    let mut recs = res.records.clone();
    recs.sort_by_key(|r| r.size);
    let short = &recs[..recs.len() / 5];
    let lag: f64 = short.iter().map(|r| r.delay.preemption_lag.as_micros_f64()).sum();
    let queue: f64 = short.iter().map(|r| r.delay.queueing.as_micros_f64()).sum();
    assert!(lag > 0.0, "some preemption lag must be observed at 80% load");
    assert!(
        lag > queue,
        "priorities should convert queueing into (smaller) preemption lag: lag={lag:.1}us queue={queue:.1}us"
    );
}

#[test]
fn overcommitment_reduces_wasted_bandwidth() {
    // Figure 16's headline: more scheduled priorities (higher
    // overcommitment) means less wasted receiver bandwidth on W4.
    let spec = ScenarioSpec::new("ablate_sched", FABRIC, Workload::W4, 0.75, 1_200, 13);
    let run = |sched: u8| {
        let cfg = HomaConfig {
            num_priorities: sched + 1,
            unsched_levels_override: Some(1),
            ..HomaConfig::default()
        };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &spec,
            &OnewayOpts { sample_wasted: true, ..OnewayOpts::default() },
            Some(cfg),
        );
        res.wasted_fraction
    };
    let w1 = run(1);
    let w7 = run(7);
    assert!(
        w1 > w7 + 0.02,
        "overcommitment must reduce waste: 1 sched -> {:.1}%, 7 sched -> {:.1}%",
        w1 * 100.0,
        w7 * 100.0
    );
}

#[test]
fn more_unscheduled_levels_improve_w1_tails() {
    // Figure 17: W1 needs multiple unscheduled levels.
    let spec = ScenarioSpec::new("ablate_unsched", FABRIC, Workload::W1, 0.8, 8_000, 31);
    let run = |unsched: u8| {
        let cfg = HomaConfig {
            num_priorities: unsched + 1,
            unsched_levels_override: Some(unsched),
            ..HomaConfig::default()
        };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &spec,
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        SlowdownSummary::small_message_p99(&res.records, 0.5)
    };
    let one = run(1);
    let seven = run(7);
    assert!(
        one > seven * 1.5,
        "one unscheduled level must be >=1.5x worse: 1 -> {one:.2}, 7 -> {seven:.2}"
    );
}

#[test]
fn blind_transmission_matters_for_small_messages() {
    // Figure 20: a tiny unscheduled limit forces a scheduling round trip
    // onto every message and inflates small-message latency.
    let spec = ScenarioSpec::new("ablate_blind", FABRIC, Workload::W4, 0.7, 1_200, 41);
    let run = |limit: u64| {
        let cfg = HomaConfig { unsched_limit: limit, ..HomaConfig::default() };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &spec,
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        SlowdownSummary::small_message_p99(&res.records, 0.4)
    };
    let tiny = run(1);
    let rtt = run(9_700);
    assert!(
        tiny > rtt * 1.5,
        "suppressing blind transmission must hurt: limit=1B -> {tiny:.2}, RTTbytes -> {rtt:.2}"
    );
}

#[test]
fn pias_single_packet_messages_ride_top_priority_on_w3() {
    // §5.2: "PIAS is nearly identical to Homa for small messages in
    // workload W3" — its always-top-priority first packet happens to
    // match Homa's W3 allocation. (On W1, with many blind priority
    // levels, PIAS is considerably worse — Figure 12.)
    let spec3 = ScenarioSpec::new("ablate_pias_w3", FABRIC, Workload::W3, 0.7, 4_000, 51);
    let homa =
        run_protocol_scenario(Protocol::Homa, &spec3, &OnewayOpts::default().with_records(), None);
    let pias =
        run_protocol_scenario(Protocol::Pias, &spec3, &OnewayOpts::default().with_records(), None);
    let h = SlowdownSummary::small_message_p99(&homa.records, 0.3);
    let p = SlowdownSummary::small_message_p99(&pias.records, 0.3);
    // Near-parity for sub-packet W3 messages, not catastrophically worse
    // like a streaming transport.
    assert!(p < h * 2.5, "PIAS single-packet handling broken: homa={h:.2} pias={p:.2}");

    // And the W1 contrast from Figure 12: PIAS measurably worse there.
    let spec1 = ScenarioSpec::new("ablate_pias_w1", FABRIC, Workload::W1, 0.7, 6_000, 51);
    let homa1 =
        run_protocol_scenario(Protocol::Homa, &spec1, &OnewayOpts::default().with_records(), None);
    let pias1 =
        run_protocol_scenario(Protocol::Pias, &spec1, &OnewayOpts::default().with_records(), None);
    let h1 = SlowdownSummary::small_message_p99(&homa1.records, 0.3);
    let p1 = SlowdownSummary::small_message_p99(&pias1.records, 0.3);
    assert!(
        p1 > h1 * 1.5,
        "PIAS should trail Homa on W1 small messages: homa={h1:.2} pias={p1:.2}"
    );
}
