//! Differential engine fuzzing: every arbitrary [`ScenarioSpec`] must
//! replay bit-identically on all five event engines (legacy heap,
//! hierarchical calendar, and conservative-window parallel dispatch on
//! one and two worker threads plus an explicitly batched variant).
//!
//! This is the randomized companion to `tests/determinism.rs`: instead
//! of a handful of hand-picked scenarios, each iteration draws a spec
//! from the whole generator space — fabrics, workloads, traffic
//! overlays, victims, mixes, fault schedules — and demands identical
//! `MsgRecord` streams, `RunStats`, sketches and delivery accounting
//! from every engine.
//!
//! On a mismatch the harness shrinks the spec to a minimal still-failing
//! one and prints it as a one-line replay string (also appended under
//! `$HOMA_FUZZ_FAILURE_DIR` for CI artifact upload). Replay locally with
//! `HOMA_FUZZ_REPLAY='<line>' cargo test --test fuzz_differential replay`.
//!
//! Iteration counts honor `HOMA_FUZZ_ITERS`; the `#[ignore]` variant is
//! the nightly long haul.

use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{shrink_to_minimal, FuzzFamily, ScenarioSpec};
use homa_sim::EngineKind;

const FAMILY: FuzzFamily = FuzzFamily::new("differential", "HOMA_FUZZ_REPLAY");

const ENGINES: [(&str, EngineKind); 5] = [
    ("hier", EngineKind::Hierarchical),
    ("legacy", EngineKind::LegacyHeap),
    ("par1", EngineKind::ParallelHier { threads: 1, batch: 0 }),
    ("par2", EngineKind::ParallelHier { threads: 2, batch: 0 }),
    // An explicit window-batch size: batching only moves bookkeeping
    // boundaries, so it must be invisible to every arbitrary spec.
    ("par1b4", EngineKind::ParallelHier { threads: 1, batch: 4 }),
];

/// The protocols differentially fuzzed, rotated per iteration: Homa
/// plus the two baselines with the most transport-side state.
const PROTOCOLS: [Protocol; 3] = [Protocol::Homa, Protocol::Phost, Protocol::Pfabric];

/// Lossless signature of one run: Debug formatting is exact for the
/// integer fields and bit-faithful for the floats.
fn signature(p: Protocol, spec: &ScenarioSpec, engine: EngineKind) -> String {
    let res = run_protocol_scenario(
        p,
        &spec.clone().with_engine(engine),
        &OnewayOpts::default().with_records(),
        None,
    );
    format!(
        "records {:?} | victims {:?} | sketch {:?} | stats {:?} | d{} a{} l{} dup{}",
        res.records,
        res.victim_records,
        res.sketch,
        res.stats,
        res.delivered,
        res.aborted,
        res.lost,
        res.duplicate_deliveries,
    )
}

/// `Some(detail)` if any engine disagrees with the hierarchical engine
/// on `spec`, else `None`.
fn engines_disagree(p: Protocol, spec: &ScenarioSpec) -> Option<String> {
    let baseline = signature(p, spec, EngineKind::Hierarchical);
    for (name, engine) in ENGINES.iter().skip(1) {
        if signature(p, spec, *engine) != baseline {
            return Some(format!("{} diverged from hier under {:?}", name, p));
        }
    }
    None
}

fn check_seed_range(first_seed: u64, iters: u64) {
    for i in 0..iters {
        let seed = first_seed + i;
        let spec = ScenarioSpec::arbitrary(seed);
        let p = PROTOCOLS[(seed % PROTOCOLS.len() as u64) as usize];
        if let Some(detail) = engines_disagree(p, &spec) {
            let minimal = shrink_to_minimal(&spec, |s| engines_disagree(p, s).is_some());
            FAMILY.fail(
                &minimal.to_spec_line(),
                &format!("engines disagree (seed {seed}): {detail}"),
            );
        }
    }
}

#[test]
fn arbitrary_specs_replay_identically_on_all_engines() {
    check_seed_range(1_000, FAMILY.iters(20));
}

/// Nightly long-haul sweep on a disjoint seed range.
#[test]
#[ignore = "long-haul fuzz loop; run with --ignored (nightly CI)"]
fn long_haul_differential_fuzz() {
    check_seed_range(100_000, FAMILY.iters(20) * 25);
}

/// Replay hook: set `HOMA_FUZZ_REPLAY` to a spec line printed by a fuzz
/// failure and this test re-runs it against every engine (it passes
/// trivially when the variable is unset).
#[test]
fn replay_spec_line_from_env() {
    let Some(line) = FAMILY.replay() else { return };
    let spec = ScenarioSpec::parse_spec_line(&line).expect("HOMA_FUZZ_REPLAY must be a spec line");
    for p in PROTOCOLS {
        if let Some(detail) = engines_disagree(p, &spec) {
            panic!("replayed spec still fails: {detail}\n  {line}");
        }
    }
}
