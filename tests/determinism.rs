//! Cross-engine determinism: the calendar event engine — sequential
//! *and* under conservative-window parallel dispatch — must replay the
//! legacy single-heap engine bit-for-bit.
//!
//! All engines order events by the same globally-assigned `(time, seq)`
//! key (the parallel dispatcher reassigns exactly the sequence numbers
//! sequential dispatch would have during its merge stage), so for one
//! [`ScenarioSpec`] + seed the full `MsgRecord` stream and the harvested
//! `RunStats` must be identical — not statistically close, *identical*.
//! This is the contract that lets the perf gate pin deterministic event
//! counts in `BENCH_BASELINE.json`.

use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::{EngineKind, FaultPlan, HostId, LinkId};
use homa_workloads::{TrafficSpec, VictimSpec, Workload};

/// Exact signature of a run: every record field (sizes, injection and
/// completion times, unloaded denominators, delay attribution) plus the
/// full fabric statistics. Debug formatting is lossless for the integer
/// fields and bit-faithful for the floats.
fn run_signature(p: Protocol, spec: &ScenarioSpec) -> (String, String, u64, u64) {
    let res = run_protocol_scenario(p, spec, &OnewayOpts::default().with_records(), None);
    assert_eq!(res.injected, spec.messages, "{}: injection shortfall", spec.name);
    assert_eq!(
        res.delivered + res.aborted + res.lost,
        spec.messages,
        "{}: messages unaccounted for",
        spec.name
    );
    (
        format!("{:?} | victims {:?}", res.records, res.victim_records),
        format!("{:?}", res.stats),
        res.delivered,
        res.stats.events_processed,
    )
}

fn assert_engines_agree(p: Protocol, spec: ScenarioSpec) {
    let hier = run_signature(p, &spec.clone().with_engine(EngineKind::Hierarchical));
    let legacy = run_signature(p, &spec.clone().with_engine(EngineKind::LegacyHeap));
    assert_eq!(
        hier.3, legacy.3,
        "{}: event counts diverged (hier {} vs legacy {})",
        spec.name, hier.3, legacy.3
    );
    assert_eq!(hier.2, legacy.2, "{}: delivered counts diverged", spec.name);
    assert_eq!(hier.0, legacy.0, "{}: MsgRecord streams diverged", spec.name);
    assert_eq!(hier.1, legacy.1, "{}: RunStats diverged", spec.name);

    // Conservative-window parallel dispatch, on two worker threads, must
    // replay the same run bit-for-bit (and so must the degenerate inline
    // window mode, exercising the window machinery without threads).
    assert_parallel_agrees(p, &spec, legacy, &[(1, 0), (2, 0)]);

    // And the hierarchical engine agrees with itself across runs.
    let again = run_signature(p, &spec.clone().with_engine(EngineKind::Hierarchical));
    assert_eq!(hier, again, "{}: hierarchical engine not repeatable", spec.name);
}

/// Assert `ParallelHier` replays `legacy` bit-for-bit at each
/// `(threads, batch)` combination. Batch size moves only bookkeeping
/// boundaries, so any value must leave the run untouched.
fn assert_parallel_agrees(
    p: Protocol,
    spec: &ScenarioSpec,
    legacy: (String, String, u64, u64),
    combos: &[(u32, u32)],
) {
    for &(threads, batch) in combos {
        let par = run_signature(
            p,
            &spec.clone().with_engine(EngineKind::ParallelHier { threads, batch }),
        );
        let tag = format!("ParallelHier x{threads} batch {batch}");
        assert_eq!(par.3, legacy.3, "{}: {tag} event count diverged", spec.name);
        assert_eq!(par.2, legacy.2, "{}: {tag} delivered diverged", spec.name);
        assert_eq!(par.0, legacy.0, "{}: {tag} MsgRecords diverged", spec.name);
        assert_eq!(par.1, legacy.1, "{}: {tag} RunStats diverged", spec.name);
    }
}

#[test]
fn homa_engines_agree_on_multi_tor_fabric() {
    assert_engines_agree(
        Protocol::Homa,
        // Mirrors the perf gate's `w4_80_40h` scenario exactly, so the
        // pinned event count in BENCH_BASELINE.json is engine-independent.
        ScenarioSpec::new(
            "det_homa_40h",
            FabricSpec::MultiTor { hosts: 40 },
            Workload::W4,
            0.8,
            1_200,
            42,
        ),
    );
}

#[test]
fn homa_engines_agree_on_leaf_spine() {
    assert_engines_agree(
        Protocol::Homa,
        ScenarioSpec::new(
            "det_homa_ls",
            FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
            Workload::W2,
            0.7,
            800,
            7,
        ),
    );
}

#[test]
fn phost_engines_agree() {
    assert_engines_agree(
        Protocol::Phost,
        ScenarioSpec::new(
            "det_phost",
            FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
            Workload::W2,
            0.6,
            600,
            13,
        ),
    );
}

#[test]
fn homa_engines_agree_under_incast_flap_and_pause() {
    // The fault path is where engine divergence would be most likely:
    // fault events share lanes with packet events, receiver-pause defers
    // and replays deliveries, and link flaps force the RESEND machinery
    // through retransmission timing. The engines must still replay each
    // other bit-for-bit — including the fault counters in RunStats.
    let spec = ScenarioSpec::new(
        "det_fault_incast",
        FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
        Workload::W2,
        0.5,
        700,
        21,
    )
    .with_traffic(TrafficSpec::incast(8).with_victim(VictimSpec::new(9, 3, 20_000, 100_000)))
    .with_faults(
        FaultPlan::new()
            .link_flaps(LinkId::HostDownlink(HostId(0)), 300_000, 150_000, 600_000, 4)
            .receiver_pause(HostId(3), 500_000, 900_000)
            .rate_limit(
                LinkId::TorUplink { rack: 0, spine: 0 },
                100_000,
                2_000_000,
                10_000_000_000,
            ),
    );
    assert_engines_agree(Protocol::Homa, spec);
}

#[test]
fn phost_engines_agree_under_link_flaps() {
    let spec = ScenarioSpec::new(
        "det_fault_phost",
        FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
        Workload::W2,
        0.5,
        500,
        13,
    )
    .with_traffic(TrafficSpec::shuffle())
    .with_faults(FaultPlan::new().link_flaps(
        LinkId::SpineDownlink { spine: 1, rack: 1 },
        200_000,
        100_000,
        500_000,
        3,
    ));
    assert_engines_agree(Protocol::Phost, spec);
}

#[test]
fn homa_engines_agree_under_rack_outage() {
    // Correlated failure: a whole rack goes dark mid-run and comes back.
    // The composite fault expands to one event per member link at the
    // same instant; every engine — including the parallel dispatcher,
    // whose rack groups are exactly the outage's blast radius — must
    // replay identical records, loss accounting and fault counters.
    let spec = ScenarioSpec::new(
        "det_rack_outage",
        FabricSpec::MultiTor { hosts: 16 },
        Workload::W2,
        0.45,
        600,
        17,
    )
    .with_faults(FaultPlan::new().rack_outage(1, 400_000, 1_200_000));
    assert_engines_agree(Protocol::Homa, spec);
}

#[test]
fn homa_engines_agree_under_spine_outage() {
    let spec = ScenarioSpec::new(
        "det_spine_outage",
        FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
        Workload::W2,
        0.5,
        500,
        29,
    )
    .with_traffic(TrafficSpec::shuffle())
    .with_faults(FaultPlan::new().spine_outage(0, 300_000, 900_000));
    assert_engines_agree(Protocol::Homa, spec);
}

#[test]
fn homa_engines_agree_on_faulted_fat_tree() {
    // The 1k-host scale fabric in miniature: a k=4 fat tree with the
    // deterministic counter-spray on TOR, aggregation and core tiers,
    // stressed with the same fault vocabulary as the leaf–spine rows.
    // Agg 0 serves pod 0, so `TorUplink { rack: 0, spine: 0 }` is a
    // valid pod-local uplink for the rate limit.
    let spec = ScenarioSpec::new(
        "det_fault_fat_tree",
        FabricSpec::FatTree { k: 4 },
        Workload::W2,
        0.5,
        700,
        23,
    )
    .with_traffic(TrafficSpec::shuffle())
    .with_faults(
        FaultPlan::new()
            .link_flaps(LinkId::HostDownlink(HostId(1)), 300_000, 150_000, 600_000, 4)
            .receiver_pause(HostId(5), 500_000, 900_000)
            .rate_limit(
                LinkId::TorUplink { rack: 0, spine: 0 },
                100_000,
                2_000_000,
                10_000_000_000,
            ),
    );
    assert_engines_agree(Protocol::Homa, spec.clone());

    // Window batching must be invisible too: explicit batch sizes
    // {1, 4, 16} on one and two worker threads all replay the faulted
    // fat tree bit-for-bit (a batch only moves bookkeeping boundaries,
    // never event order — this is the proof).
    let legacy = run_signature(Protocol::Homa, &spec.clone().with_engine(EngineKind::LegacyHeap));
    assert_parallel_agrees(
        Protocol::Homa,
        &spec,
        legacy,
        &[(1, 1), (1, 4), (1, 16), (2, 1), (2, 4), (2, 16)],
    );
}

#[test]
fn trace_jsonl_is_byte_identical_across_engines() {
    // The flight recorder rides the same `(time, seq)` emit order the
    // engines already agree on, so one spec line must render the *same
    // bytes* of TRACE.jsonl no matter which engine replayed it — the
    // contract behind the trace-golden CI job. Faults and incast are on
    // so the trace exercises drop/preemption/resend records, not just
    // the happy path.
    let spec = ScenarioSpec::new(
        "det_trace",
        FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
        Workload::W2,
        0.5,
        400,
        21,
    )
    .with_traffic(TrafficSpec::incast(6))
    .with_faults(FaultPlan::new().link_flaps(
        LinkId::HostDownlink(HostId(2)),
        300_000,
        150_000,
        600_000,
        3,
    ));

    let jsonl_for = |engine: EngineKind| {
        let res = run_protocol_scenario(
            Protocol::Homa,
            &spec.clone().with_engine(engine),
            &OnewayOpts::default().with_trace(),
            None,
        );
        assert_eq!(res.trace_dropped, 0, "{engine:?}: trace must fit the ring");
        assert!(!res.trace.is_empty(), "{engine:?}: empty trace");
        homa_sim::trace::render_jsonl(&res.trace)
    };

    let legacy = jsonl_for(EngineKind::LegacyHeap);
    let hier = jsonl_for(EngineKind::Hierarchical);
    assert_eq!(legacy, hier, "Hierarchical trace bytes diverged from LegacyHeap");
    for (threads, batch) in [(1u32, 0u32), (2, 0), (1, 4)] {
        let par = jsonl_for(EngineKind::ParallelHier { threads, batch });
        assert_eq!(
            legacy, par,
            "ParallelHier x{threads} batch {batch} trace bytes diverged from LegacyHeap"
        );
    }
}

#[test]
fn pfabric_engines_agree() {
    assert_engines_agree(
        Protocol::Pfabric,
        ScenarioSpec::new(
            "det_pfabric",
            FabricSpec::SingleSwitch { hosts: 8 },
            Workload::W2,
            0.6,
            600,
            5,
        ),
    );
}
