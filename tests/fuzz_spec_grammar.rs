//! Spec-line grammar fuzzing: mutated `ScenarioSpec` lines (deleted and
//! duplicated keys, bit-flips, truncation, separator injection, unknown
//! keys, numeric overflow strings) must never panic the parser, never be
//! silently accepted, and — when still legal — re-format to a fixed
//! point. Rejections must name the offending key.
//!
//! Failures shrink to a minimal line and are reported through the
//! family plumbing (stderr + `$HOMA_FUZZ_FAILURE_DIR/spec-grammar.txt`).
//! Replay a shrunk line with:
//!
//! ```text
//! HOMA_FUZZ_REPLAY_LINE='name=x fabric=ss4 wl=w9' \
//!     cargo test --test fuzz_spec_grammar replay_line_from_env
//! ```

use homa_harness::fuzzing::grammar::{
    check_mutant_line_caught, mutate_spec_line, shrink_line, shrink_line_to_minimal,
};
use homa_harness::{FuzzFamily, ScenarioSpec};

const FAMILY: FuzzFamily = FuzzFamily::new("spec-grammar", "HOMA_FUZZ_REPLAY_LINE");

fn check_seed_range(first_seed: u64, iters: u64) {
    for i in 0..iters {
        let seed = first_seed + i;
        let line = mutate_spec_line(seed);
        if let Err(detail) = check_mutant_line_caught(&line) {
            let minimal = shrink_line_to_minimal(&line, |l| check_mutant_line_caught(l).is_err());
            FAMILY.fail(&minimal, &format!("parser contract broken (seed {seed}): {detail}"));
        }
    }
}

#[test]
fn parser_survives_arbitrary_grammar_mutations() {
    check_seed_range(4_000, FAMILY.iters(500));
}

/// Nightly long-haul sweep on a disjoint seed range.
#[test]
#[ignore = "long-haul fuzz loop; run with --ignored (nightly CI)"]
fn long_haul_spec_grammar_fuzz() {
    check_seed_range(400_000, FAMILY.iters(500) * 20);
}

/// Replay hook: re-check a single (possibly shrunk) line from the
/// environment.
#[test]
fn replay_line_from_env() {
    let Some(line) = FAMILY.replay() else { return };
    match check_mutant_line_caught(&line) {
        Ok(()) => println!("replayed `{line}`: parser contract holds"),
        Err(detail) => panic!("replayed `{line}`: {detail}"),
    }
}

/// Shrinker soundness over real mutants: for seeds whose mutant the
/// parser rejects, the shrunk line must still be rejected and must be
/// locally minimal against the same predicate.
#[test]
fn shrunk_lines_still_reproduce_and_are_locally_minimal() {
    let rejects = |l: &String| ScenarioSpec::parse_spec_line(l).is_err();
    let mut checked = 0;
    for seed in 4_000.. {
        let line = mutate_spec_line(seed);
        if !rejects(&line) {
            continue;
        }
        let minimal = shrink_line_to_minimal(&line, rejects);
        assert!(rejects(&minimal), "seed {seed}: shrunk `{minimal}` no longer rejected");
        for cand in shrink_line(&minimal) {
            assert!(
                !rejects(&cand),
                "seed {seed}: `{minimal}` is not minimal — `{cand}` still rejected"
            );
        }
        assert_eq!(shrink_line_to_minimal(&line, rejects), minimal, "seed {seed} nondeterministic");
        checked += 1;
        if checked == 25 {
            break;
        }
    }
    assert_eq!(checked, 25, "mutator never produced rejected lines");
}
