//! Transport-conservation fuzzing: on every arbitrary [`ScenarioSpec`],
//! each of the six transports must conserve messages exactly.
//!
//! The invariants, per run:
//!
//! * every planned message is injected (`injected == spec.messages`);
//! * every injected message is accounted for exactly once
//!   (`delivered + aborted + lost == injected`);
//! * nothing is delivered twice (`duplicate_deliveries == 0`);
//! * the record streams cover exactly the deliveries
//!   (`records + victim_records == delivered`), and the streaming
//!   sketch saw exactly the non-victim deliveries.
//!
//! Failures shrink to a minimal spec and print a one-line replay string
//! (also appended under `$HOMA_FUZZ_FAILURE_DIR` for CI artifacts).
//! Iteration counts honor `HOMA_FUZZ_ITERS`; the `#[ignore]` variant is
//! the nightly long haul.

use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{shrink_to_minimal, FuzzFamily, ScenarioSpec};

const FAMILY: FuzzFamily = FuzzFamily::new("conservation", "HOMA_FUZZ_REPLAY");

const TRANSPORTS: [Protocol; 6] = [
    Protocol::Homa,
    Protocol::Basic,
    Protocol::Pfabric,
    Protocol::Phost,
    Protocol::Pias,
    Protocol::Stream,
];

/// `Some(detail)` if `p` violates conservation on `spec`, else `None`.
fn violates_conservation(p: Protocol, spec: &ScenarioSpec) -> Option<String> {
    let res = run_protocol_scenario(p, spec, &OnewayOpts::default().with_records(), None);
    if res.injected != spec.messages {
        return Some(format!(
            "{:?}: injected {} of {} planned messages",
            p, res.injected, spec.messages
        ));
    }
    if res.delivered + res.aborted + res.lost != res.injected {
        return Some(format!(
            "{:?}: {} delivered + {} aborted + {} lost != {} injected",
            p, res.delivered, res.aborted, res.lost, res.injected
        ));
    }
    if res.duplicate_deliveries != 0 {
        return Some(format!("{:?}: {} duplicate deliveries", p, res.duplicate_deliveries));
    }
    let recorded = (res.records.len() + res.victim_records.len()) as u64;
    if recorded != res.delivered {
        return Some(format!("{:?}: {} records for {} deliveries", p, recorded, res.delivered));
    }
    if res.sketch.count() != res.records.len() as u64 {
        return Some(format!(
            "{:?}: sketch saw {} messages, records hold {}",
            p,
            res.sketch.count(),
            res.records.len()
        ));
    }
    None
}

fn check_seed_range(first_seed: u64, iters: u64) {
    for i in 0..iters {
        let seed = first_seed + i;
        let spec = ScenarioSpec::arbitrary(seed);
        for p in TRANSPORTS {
            if let Some(detail) = violates_conservation(p, &spec) {
                let minimal = shrink_to_minimal(&spec, |s| violates_conservation(p, s).is_some());
                FAMILY.fail(
                    &minimal.to_spec_line(),
                    &format!("conservation violated (seed {seed}): {detail}"),
                );
            }
        }
    }
}

#[test]
fn all_transports_conserve_messages_on_arbitrary_specs() {
    check_seed_range(2_000, FAMILY.iters(10));
}

/// Nightly long-haul sweep on a disjoint seed range.
#[test]
#[ignore = "long-haul fuzz loop; run with --ignored (nightly CI)"]
fn long_haul_conservation_fuzz() {
    check_seed_range(200_000, FAMILY.iters(10) * 25);
}

/// Replay hook: set `HOMA_FUZZ_REPLAY` to a spec line printed by a fuzz
/// failure and this test re-checks conservation on it for every
/// transport (it passes trivially when the variable is unset).
#[test]
fn replay_spec_line_from_env() {
    let Some(line) = FAMILY.replay() else { return };
    let spec = ScenarioSpec::parse_spec_line(&line)
        .unwrap_or_else(|e| panic!("bad {} line: {e}", FAMILY.replay_var));
    for p in TRANSPORTS {
        if let Some(detail) = violates_conservation(p, &spec) {
            panic!("replayed spec still violates conservation: {detail}\n  {line}");
        }
    }
}
