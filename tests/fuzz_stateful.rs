//! Stateful model-based endpoint fuzzing: arbitrary interleavings of
//! the [`homa::HomaEndpoint`] driving surface across an adversarial
//! in-memory channel, checked against the reference model in
//! `homa_harness::fuzzing::stateful` after every op and at quiescence.
//!
//! Failures shrink to a one-line op trace and are reported through the
//! family plumbing (stderr + `$HOMA_FUZZ_FAILURE_DIR/stateful.txt`).
//! Replay a shrunk line with:
//!
//! ```text
//! HOMA_FUZZ_REPLAY_OPS='ra:200:30000,pa:8,db:8,xb,ta:2100000' \
//!     cargo test --test fuzz_stateful replay_ops_line_from_env
//! ```

use homa_harness::fuzzing::stateful::{check_ops_caught, trace_deliveries};
use homa_harness::{parse_ops_line, shrink_ops_to_minimal, FuzzFamily, OpTrace};

const FAMILY: FuzzFamily = FuzzFamily::new("stateful", "HOMA_FUZZ_REPLAY_OPS");

fn check_seed_range(first_seed: u64, iters: u64) {
    for i in 0..iters {
        let seed = first_seed + i;
        let trace = OpTrace::arbitrary(seed);
        if let Err(detail) = check_ops_caught(&trace) {
            let minimal = shrink_ops_to_minimal(&trace, |t| check_ops_caught(t).is_err());
            FAMILY.fail(&minimal.to_ops_line(), &format!("model diverged (seed {seed}): {detail}"));
        }
    }
}

#[test]
fn endpoint_pairs_match_the_model_on_arbitrary_traces() {
    check_seed_range(3_000, FAMILY.iters(50));
}

/// Nightly long-haul sweep on a disjoint seed range.
#[test]
#[ignore = "long-haul fuzz loop; run with --ignored (nightly CI)"]
fn long_haul_stateful_fuzz() {
    check_seed_range(300_000, FAMILY.iters(50) * 25);
}

/// Replay hook: run a single shrunk op trace from the environment.
#[test]
fn replay_ops_line_from_env() {
    let Some(line) = FAMILY.replay() else { return };
    let trace =
        parse_ops_line(&line).unwrap_or_else(|e| panic!("bad {} line: {e}", FAMILY.replay_var));
    match check_ops_caught(&trace) {
        Ok(()) => println!("replayed `{line}`: model satisfied"),
        Err(detail) => panic!("replayed `{line}`: {detail}"),
    }
}

/// Shrinker soundness on a run-outcome predicate: the shrunk trace must
/// still reproduce the original predicate, and must be locally minimal
/// (no single candidate still fails it).
#[test]
fn shrunk_op_traces_still_reproduce_and_are_locally_minimal() {
    let mut checked = 0;
    for seed in 3_000.. {
        let trace = OpTrace::arbitrary(seed);
        // Predicate: the trace actually delivers something — a property
        // of the run, not of the op list's shape.
        let fails = |t: &OpTrace| trace_deliveries(t) > 0;
        if !fails(&trace) {
            continue;
        }
        let minimal = shrink_ops_to_minimal(&trace, fails);
        assert!(
            trace_deliveries(&minimal) > 0,
            "seed {seed}: shrunk trace `{}` no longer delivers",
            minimal.to_ops_line()
        );
        for cand in minimal.shrink() {
            assert_eq!(
                trace_deliveries(&cand),
                0,
                "seed {seed}: `{}` is not minimal — candidate `{}` still delivers",
                minimal.to_ops_line(),
                cand.to_ops_line()
            );
        }
        // Deterministic: shrinking twice lands on the same trace.
        assert_eq!(shrink_ops_to_minimal(&trace, fails), minimal, "seed {seed} nondeterministic");
        checked += 1;
        if checked == 3 {
            break;
        }
    }
    assert_eq!(checked, 3, "generator never produced delivering traces");
}
