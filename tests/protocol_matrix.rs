//! Every transport in the comparison matrix completes a moderate-load run
//! on the leaf-spine fabric — the invariant behind all the figure runs —
//! and conserves bytes exactly under an identical W4 scenario.

use homa::HomaConfig;
use homa_baselines::{
    ndp, pfabric, pias, HomaSimTransport, NdpConfig, NdpTransport, PfabricConfig, PfabricTransport,
    PhostConfig, PhostTransport, PiasConfig, PiasTransport, StreamConfig, StreamTransport,
};
use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::{
    AppEvent, HostId, Network, NetworkConfig, PacketMeta, QueueDiscipline, SimTime, Topology,
    Transport,
};
use homa_workloads::Workload;
use std::collections::HashMap;

fn check(p: Protocol, w: Workload, load: f64, n: u64) {
    check_on(p, w, load, n, 17, FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 });
}

fn check_on(p: Protocol, w: Workload, load: f64, n: u64, seed: u64, fabric: FabricSpec) {
    let spec = ScenarioSpec::new("matrix", fabric, w, load, n, seed);
    let res = run_protocol_scenario(p, &spec, &OnewayOpts::default(), None);
    assert_eq!(res.injected, n);
    let frac = res.delivered as f64 / n as f64;
    assert!(
        frac >= 0.99,
        "{} on {w} (seed {seed}): delivered only {}/{n}",
        p.name(),
        res.delivered
    );
}

#[test]
fn homa_all_workloads() {
    for w in [Workload::W1, Workload::W2, Workload::W3] {
        check(Protocol::Homa, w, 0.7, 1_500);
    }
    check(Protocol::Homa, Workload::W4, 0.7, 500);
    check(Protocol::Homa, Workload::W5, 0.7, 80);
}

#[test]
fn pfabric_matrix() {
    check(Protocol::Pfabric, Workload::W2, 0.7, 1_500);
    check(Protocol::Pfabric, Workload::W4, 0.6, 400);
}

#[test]
fn phost_matrix() {
    check(Protocol::Phost, Workload::W2, 0.6, 1_500);
    check(Protocol::Phost, Workload::W4, 0.5, 400);
}

#[test]
fn pias_matrix() {
    check(Protocol::Pias, Workload::W2, 0.6, 1_500);
    check(Protocol::Pias, Workload::W4, 0.5, 400);
}

#[test]
fn ndp_on_w5() {
    // The paper evaluates NDP on W5 only (full-size packets).
    check(Protocol::Ndp, Workload::W5, 0.5, 60);
}

#[test]
fn basic_and_stream() {
    check(Protocol::Basic, Workload::W3, 0.6, 1_000);
    check(Protocol::Stream, Workload::W3, 0.6, 1_000);
}

// ---------------------------------------------------------------------
// Nightly long-haul matrix: a second seed, more messages, and a bigger
// fabric than the per-PR runs — every transport in the comparison. These
// are `#[ignore]`d so PR CI stays fast; the scheduled nightly workflow
// runs them with `cargo test --release -- --ignored`.
// ---------------------------------------------------------------------

const LONG_SEED: u64 = 99;
const LONG_FABRIC: FabricSpec = FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 };

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_homa_second_seed() {
    check_on(Protocol::Homa, Workload::W2, 0.8, 6_000, LONG_SEED, LONG_FABRIC);
    check_on(Protocol::Homa, Workload::W4, 0.8, 2_000, LONG_SEED, LONG_FABRIC);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_homa_100_hosts() {
    check_on(
        Protocol::Homa,
        Workload::W4,
        0.8,
        6_000,
        LONG_SEED,
        FabricSpec::MultiTor { hosts: 100 },
    );
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_pfabric_second_seed() {
    check_on(Protocol::Pfabric, Workload::W2, 0.7, 4_000, LONG_SEED, LONG_FABRIC);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_phost_second_seed() {
    check_on(Protocol::Phost, Workload::W2, 0.6, 4_000, LONG_SEED, LONG_FABRIC);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_pias_second_seed() {
    check_on(Protocol::Pias, Workload::W2, 0.6, 4_000, LONG_SEED, LONG_FABRIC);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_ndp_second_seed() {
    check_on(Protocol::Ndp, Workload::W5, 0.5, 200, LONG_SEED, LONG_FABRIC);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_basic_and_stream_second_seed() {
    check_on(Protocol::Basic, Workload::W3, 0.6, 3_000, LONG_SEED, LONG_FABRIC);
    check_on(Protocol::Stream, Workload::W3, 0.6, 3_000, LONG_SEED, LONG_FABRIC);
}

// ---------------------------------------------------------------------
// Nightly fault matrix: every transport in the byte-conservation set
// runs the incast-of-20 + link-flap + receiver-pause scenario to
// quiescence. The invariants are accounting ones — every injected
// message is delivered, aborted, or counted lost (a one-way message
// whose every packet died on a downed link is unrecoverable by design),
// and the faults demonstrably fired. Run with
// `cargo test --release --test protocol_matrix -- --ignored`.
// ---------------------------------------------------------------------

#[cfg(test)]
fn fault_matrix_spec(p: Protocol) -> ScenarioSpec {
    use homa_harness::{FabricSpec, ScenarioSpec};
    use homa_sim::{FaultPlan, LinkId};
    use homa_workloads::TrafficSpec;
    ScenarioSpec::new(
        format!("fault_incast20_{}", p.name()),
        FabricSpec::MultiTor { hosts: 40 },
        Workload::W2,
        0.5,
        1_500,
        LONG_SEED,
    )
    .with_traffic(TrafficSpec::incast(20))
    // The whole schedule sits inside the ~1.7ms injection window so every
    // fault fires for every transport (after the last injection the run
    // only continues while messages are outstanding).
    .with_faults(
        FaultPlan::new()
            .link_flaps(LinkId::HostDownlink(HostId(0)), 200_000, 60_000, 400_000, 3)
            .receiver_pause(HostId(0), 1_300_000, 1_450_000),
    )
}

#[cfg(test)]
fn check_fault_matrix(p: Protocol) {
    use homa_bench::run_protocol_scenario;
    let spec = fault_matrix_spec(p);
    let res = run_protocol_scenario(p, &spec, &OnewayOpts::default(), None);
    assert_eq!(res.injected, spec.messages, "{}: injection shortfall", p.name());
    assert_eq!(
        res.delivered + res.aborted + res.lost,
        spec.messages,
        "{}: unaccounted messages",
        p.name()
    );
    assert_eq!(res.stats.faults_applied, 8, "{}: fault schedule truncated", p.name());
    let frac = res.delivered as f64 / spec.messages as f64;
    assert!(frac >= 0.80, "{}: only {:.1}% delivered under faults", p.name(), frac * 100.0);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_homa() {
    check_fault_matrix(Protocol::Homa);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_pfabric() {
    check_fault_matrix(Protocol::Pfabric);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_phost() {
    check_fault_matrix(Protocol::Phost);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_pias() {
    check_fault_matrix(Protocol::Pias);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_ndp() {
    check_fault_matrix(Protocol::Ndp);
}

#[test]
#[ignore = "long-haul: run by the nightly CI job"]
fn long_haul_fault_matrix_stream() {
    check_fault_matrix(Protocol::Stream);
}

// ---------------------------------------------------------------------
// Conservation: under one identical W4 scenario (same sizes, same
// endpoints, same injection times, same fabric seed), every transport
// must hand the application exactly the injected bytes — nothing lost,
// nothing delivered twice. This is the contract the shared
// `baselines::common` scaffolding (reassembly table, send queues,
// fragmentation) owes every protocol built on it.
// ---------------------------------------------------------------------

const CONSERVE_HOSTS: u32 = 8;
const CONSERVE_MSGS: u64 = 60;
const CONSERVE_SEED: u64 = 0xC0FFEE;

/// Source–destination pattern of a conservation scenario: the historical
/// uniform row plus the incast and shuffle rows from the
/// `TrafficMatrix` subsystem.
#[derive(Clone, Copy)]
enum ConservePattern {
    Uniform,
    Incast,
    Shuffle,
}

impl ConservePattern {
    const ALL: [ConservePattern; 3] =
        [ConservePattern::Uniform, ConservePattern::Incast, ConservePattern::Shuffle];

    fn name(self) -> &'static str {
        match self {
            ConservePattern::Uniform => "uniform",
            ConservePattern::Incast => "incast",
            ConservePattern::Shuffle => "shuffle",
        }
    }
}

/// The shared scenario: deterministic W4 sizes at a fixed cadence, with
/// endpoints from the selected pattern. Returns
/// `(at_ns, src, dst, size, tag)`.
fn conserve_scenario(pattern: ConservePattern) -> Vec<(u64, HostId, HostId, u64, u64)> {
    use homa_workloads::TrafficMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let dist = Workload::W4.dist();
    let mut x = CONSERVE_SEED;
    let mut lcg = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    let mut rng = StdRng::seed_from_u64(CONSERVE_SEED);
    let mut matrix = match pattern {
        // The historical uniform row keeps its original LCG endpoint
        // draws (bit-compatible with the pre-TrafficMatrix test).
        ConservePattern::Uniform => None,
        ConservePattern::Incast => Some(TrafficMatrix::incast(5, CONSERVE_HOSTS)),
        ConservePattern::Shuffle => {
            Some(homa_workloads::TrafficSpec::shuffle().matrix(CONSERVE_HOSTS, CONSERVE_HOSTS, 1))
        }
    };
    (0..CONSERVE_MSGS)
        .map(|i| {
            // Quantile-sampled sizes, capped below the extreme tail so a
            // single 10 MB outlier doesn't dominate the run.
            let p = (lcg() % 10_000) as f64 / 10_000.0;
            let size = dist.quantile(p.min(0.995)).max(1);
            let (src, dst) = match &mut matrix {
                None => {
                    let src = (lcg() % CONSERVE_HOSTS as u64) as u32;
                    let dst_raw = (lcg() % (CONSERVE_HOSTS as u64 - 1)) as u32;
                    let dst = if dst_raw >= src { dst_raw + 1 } else { dst_raw };
                    (src, dst)
                }
                Some(m) => m.draw(&mut rng),
            };
            (i * 30_000, HostId(src), HostId(dst), size, i)
        })
        .collect()
}

/// Drive one transport through the shared scenario (all three traffic
/// patterns) and assert exact byte conservation under each.
fn assert_conserves<M, T>(
    name: &str,
    queues: Option<QueueDiscipline>,
    mut mk: impl FnMut(HostId) -> T,
) where
    M: PacketMeta,
    T: Transport<M>,
{
    for pattern in ConservePattern::ALL {
        assert_conserves_on(name, pattern, queues, &mut mk);
    }
}

/// One transport, one traffic pattern: exact byte conservation.
fn assert_conserves_on<M, T>(
    name: &str,
    pattern: ConservePattern,
    queues: Option<QueueDiscipline>,
    mk: impl FnMut(HostId) -> T,
) where
    M: PacketMeta,
    T: Transport<M>,
{
    let name = &format!("{name}/{}", pattern.name());
    let netcfg = match queues {
        Some(q) => NetworkConfig::uniform(CONSERVE_SEED, q),
        None => NetworkConfig { seed: CONSERVE_SEED, ..NetworkConfig::default() },
    };
    let topo = Topology::single_switch(CONSERVE_HOSTS);
    let mut net: Network<M, T> = Network::new(topo, netcfg, mk);

    let scenario = conserve_scenario(pattern);
    let injected_bytes: u64 = scenario.iter().map(|&(_, _, _, size, _)| size).sum();
    let mut expect: HashMap<u64, (HostId, HostId, u64)> = HashMap::new();
    let mut deliveries = Vec::new();

    for (at_ns, src, dst, size, tag) in scenario {
        net.run_until(SimTime::from_nanos(at_ns));
        deliveries.extend(net.take_app_events());
        net.inject_message(src, dst, size, tag);
        expect.insert(tag, (src, dst, size));
    }
    net.run_until(SimTime::from_millis(500));
    deliveries.extend(net.take_app_events());

    // Exactly one delivery per message, at the right host, with the
    // right sender and length.
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for (_, host, ev) in &deliveries {
        if let AppEvent::MessageDelivered { src, tag, len } = ev {
            let &(exp_src, exp_dst, exp_size) =
                expect.get(tag).unwrap_or_else(|| panic!("{name}: unknown tag {tag}"));
            assert_eq!(*src, exp_src, "{name}: tag {tag} wrong sender");
            assert_eq!(*host, exp_dst, "{name}: tag {tag} delivered to wrong host");
            assert_eq!(*len, exp_size, "{name}: tag {tag} wrong length");
            *seen.entry(*tag).or_default() += 1;
        }
    }
    for (tag, &count) in &seen {
        assert_eq!(count, 1, "{name}: tag {tag} delivered {count} times");
    }
    assert_eq!(
        seen.len() as u64,
        CONSERVE_MSGS,
        "{name}: {} of {CONSERVE_MSGS} messages delivered",
        seen.len()
    );

    // Goodput accounting agrees: summed transport counters equal the
    // injected bytes exactly (no loss, no double-count).
    let delivered_bytes: u64 =
        (0..CONSERVE_HOSTS).map(|h| net.transport(HostId(h)).delivered_bytes()).sum();
    assert_eq!(
        delivered_bytes, injected_bytes,
        "{name}: delivered {delivered_bytes} bytes of {injected_bytes} injected"
    );
}

#[test]
fn conservation_homa() {
    assert_conserves("Homa", None, |h| HomaSimTransport::new(h, HomaConfig::default()));
}

#[test]
fn conservation_pfabric() {
    let cfg = PfabricConfig::default();
    assert_conserves("pFabric", Some(pfabric::fabric_queues(&cfg)), move |h| {
        PfabricTransport::new(h, PfabricConfig::default())
    });
}

#[test]
fn conservation_phost() {
    assert_conserves("pHost", None, |h| PhostTransport::new(h, PhostConfig::default()));
}

#[test]
fn conservation_pias() {
    let cfg = PiasConfig::default();
    assert_conserves("PIAS", Some(pias::fabric_queues(&cfg)), move |h| {
        PiasTransport::new(h, PiasConfig::default())
    });
}

#[test]
fn conservation_ndp() {
    let cfg = NdpConfig::default();
    assert_conserves("NDP", Some(ndp::fabric_queues(&cfg)), move |h| {
        NdpTransport::new(h, NdpConfig::default())
    });
}

#[test]
fn conservation_stream() {
    assert_conserves("Stream", None, |h| StreamTransport::new(h, StreamConfig::default()));
}
