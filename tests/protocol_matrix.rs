//! Every transport in the comparison matrix completes a moderate-load run
//! on the leaf-spine fabric — the invariant behind all the figure runs.

use homa_bench::{run_protocol_oneway, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_sim::Topology;
use homa_workloads::Workload;

fn check(p: Protocol, w: Workload, load: f64, n: u64) {
    let topo = Topology::scaled_fabric(2, 6, 2);
    let res = run_protocol_oneway(p, &topo, &w.dist(), load, n, 17, &OnewayOpts::default(), None);
    assert_eq!(res.injected, n);
    let frac = res.delivered as f64 / n as f64;
    assert!(
        frac >= 0.99,
        "{} on {w}: delivered only {}/{n}",
        p.name(),
        res.delivered
    );
}

#[test]
fn homa_all_workloads() {
    for w in [Workload::W1, Workload::W2, Workload::W3] {
        check(Protocol::Homa, w, 0.7, 1_500);
    }
    check(Protocol::Homa, Workload::W4, 0.7, 500);
    check(Protocol::Homa, Workload::W5, 0.7, 80);
}

#[test]
fn pfabric_matrix() {
    check(Protocol::Pfabric, Workload::W2, 0.7, 1_500);
    check(Protocol::Pfabric, Workload::W4, 0.6, 400);
}

#[test]
fn phost_matrix() {
    check(Protocol::Phost, Workload::W2, 0.6, 1_500);
    check(Protocol::Phost, Workload::W4, 0.5, 400);
}

#[test]
fn pias_matrix() {
    check(Protocol::Pias, Workload::W2, 0.6, 1_500);
    check(Protocol::Pias, Workload::W4, 0.5, 400);
}

#[test]
fn ndp_on_w5() {
    // The paper evaluates NDP on W5 only (full-size packets).
    check(Protocol::Ndp, Workload::W5, 0.5, 60);
}

#[test]
fn basic_and_stream() {
    check(Protocol::Basic, Workload::W3, 0.6, 1_000);
    check(Protocol::Stream, Workload::W3, 0.6, 1_000);
}
