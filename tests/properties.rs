//! Property-based tests spanning crates: wire round-trips, end-to-end
//! delivery for arbitrary message mixes, and workload CDF invariants.

use homa::packets::{DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId, ResendHeader};
use homa::{HomaConfig, HomaEndpoint};
use homa_workloads::MessageSizeDist;
use proptest::prelude::*;

fn arb_dir() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Request), Just(Dir::Response), Just(Dir::Oneway)]
}

fn arb_key() -> impl Strategy<Value = MsgKey> {
    (any::<u32>(), any::<u64>(), arb_dir()).prop_map(|(o, seq, dir)| MsgKey {
        origin: PeerId(o),
        seq,
        dir,
    })
}

proptest! {
    #[test]
    fn wire_data_round_trip(
        key in arb_key(),
        msg_len in 1u64..u64::MAX / 2,
        offset in 0u64..u64::MAX / 2,
        payload_len in 0u32..2_000,
        prio in 0u8..8,
        flags in any::<[bool; 3]>(),
        tag in any::<u64>(),
    ) {
        let hdr = DataHeader {
            key,
            msg_len,
            offset,
            payload: payload_len,
            prio,
            unscheduled: flags[0],
            retransmit: flags[1],
            incast_mark: flags[2],
            tag,
        };
        let payload = vec![0x5Au8; payload_len as usize];
        let pkt = HomaPacket::Data(hdr);
        let buf = homa_wire::encode(&pkt, &payload);
        let (out, off) = homa_wire::decode(&buf).expect("round trip");
        prop_assert_eq!(out, pkt);
        prop_assert_eq!(&buf[off..], &payload[..]);
    }

    #[test]
    fn wire_control_round_trip(
        key in arb_key(),
        offset in any::<u64>(),
        length in any::<u64>(),
        prio in 0u8..8,
    ) {
        for pkt in [
            HomaPacket::Grant(GrantHeader { key, offset, prio, cutoffs: None }),
            HomaPacket::Resend(ResendHeader { key, offset, length, prio }),
        ] {
            let buf = homa_wire::encode(&pkt, &[]);
            let (out, _) = homa_wire::decode(&buf).expect("round trip");
            prop_assert_eq!(out, pkt);
        }
    }

    #[test]
    fn wire_decode_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = homa_wire::decode(&noise); // must not panic
    }

    #[test]
    fn endpoint_delivers_arbitrary_message_mixes(
        sizes in proptest::collection::vec(1u64..200_000, 1..20),
    ) {
        // A zero-latency lossless shuttle between two endpoints must
        // deliver every message exactly once, whatever the mix.
        let mut a = HomaEndpoint::new(PeerId(0), HomaConfig::default());
        let mut b = HomaEndpoint::new(PeerId(1), HomaConfig::default());
        for (i, &s) in sizes.iter().enumerate() {
            a.send_message(0, PeerId(1), s, i as u64);
        }
        loop {
            let mut moved = false;
            while let Some((_, pkt)) = a.poll_transmit(0) {
                b.on_packet(0, PeerId(0), pkt);
                moved = true;
            }
            while let Some((_, pkt)) = b.poll_transmit(0) {
                a.on_packet(0, PeerId(1), pkt);
                moved = true;
            }
            if !moved {
                break;
            }
        }
        let evs = b.take_events();
        prop_assert_eq!(evs.len(), sizes.len());
        prop_assert_eq!(b.delivered_bytes(), sizes.iter().sum::<u64>());
    }

    #[test]
    fn cdf_quantile_consistency(
        anchors in proptest::collection::vec((1u64..1_000_000, 0u32..1000), 2..8),
        p in 0.0f64..1.0,
    ) {
        // Build a valid anchor set from arbitrary input.
        let mut sizes: Vec<u64> = anchors.iter().map(|&(s, _)| s).collect();
        sizes.sort_unstable();
        sizes.dedup();
        prop_assume!(sizes.len() >= 2);
        let n = sizes.len();
        let pts: Vec<(u64, f64)> = sizes
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i as f64 / (n - 1) as f64))
            .collect();
        let d = MessageSizeDist::from_anchors(pts);
        // Quantile is monotone and stays in support.
        let q = d.quantile(p);
        prop_assert!(q >= d.min_size() && q <= d.max_size());
        let q2 = d.quantile((p + 0.05).min(1.0));
        prop_assert!(q2 >= q);
        // CDF inverts within tolerance.
        let back = d.cdf(q);
        prop_assert!((back - p).abs() < 0.1, "p={} q={} back={}", p, q, back);
    }
}
