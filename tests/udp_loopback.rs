//! Integration tests for the real-socket UDP transport.

use homa::packets::PeerId;
use homa_udp::{HomaUdpNode, UdpConfig, UdpEvent};
use std::time::Duration;

fn pair() -> (std::sync::Arc<HomaUdpNode>, std::sync::Arc<HomaUdpNode>) {
    let a = HomaUdpNode::bind(PeerId(0), "127.0.0.1:0", UdpConfig::default()).expect("bind a");
    let b = HomaUdpNode::bind(PeerId(1), "127.0.0.1:0", UdpConfig::default()).expect("bind b");
    a.add_peer(PeerId(1), b.local_addr().expect("addr"));
    b.add_peer(PeerId(0), a.local_addr().expect("addr"));
    (a, b)
}

#[test]
fn many_concurrent_messages_over_loopback() {
    let (a, b) = pair();
    let n = 20u64;
    let mut expected: std::collections::HashMap<u64, Vec<u8>> = Default::default();
    for i in 0..n {
        let len = 500 + (i as usize) * 731;
        let payload: Vec<u8> = (0..len).map(|j| ((j as u64 * (i + 1)) % 251) as u8).collect();
        expected.insert(i, payload.clone());
        a.send_message(PeerId(1), payload, i).expect("send");
    }
    for _ in 0..n {
        match b.events().recv_timeout(Duration::from_secs(10)).expect("delivery") {
            UdpEvent::Message { tag, data, .. } => {
                assert_eq!(expected.remove(&tag).expect("unique tag"), data);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(expected.is_empty());
    a.shutdown();
    b.shutdown();
}

#[test]
fn rpc_pipeline_over_loopback() {
    let (a, b) = pair();
    // Server: echo with a twist so we know the server actually ran.
    let b2 = b.clone();
    let server = std::thread::spawn(move || {
        for _ in 0..8 {
            match b2.events().recv_timeout(Duration::from_secs(10)).expect("request") {
                UdpEvent::Request { from, rpc, mut data } => {
                    data.reverse();
                    b2.respond(from, rpc, data).expect("respond");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    });
    for i in 0..8u64 {
        let payload: Vec<u8> = (0..100 + i * 37).map(|j| (j % 256) as u8).collect();
        a.call(PeerId(1), payload.clone(), i).expect("call");
        match a.events().recv_timeout(Duration::from_secs(10)).expect("response") {
            UdpEvent::Response { tag, data, .. } => {
                assert_eq!(tag, i);
                let mut want = payload;
                want.reverse();
                assert_eq!(data, want);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    server.join().expect("server thread");
    a.shutdown();
    b.shutdown();
}

#[test]
fn recovery_after_injected_loss() {
    let (a, b) = pair();
    // Drop every 5th data packet the receiver sees, for the first 10.
    let mut seen = 0;
    b.set_rx_drop_filter(move |p| {
        if matches!(p, homa::packets::HomaPacket::Data(_)) {
            seen += 1;
            seen <= 10 && seen % 5 == 0
        } else {
            false
        }
    });
    let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();
    a.send_message(PeerId(1), payload.clone(), 1).expect("send");
    match b.events().recv_timeout(Duration::from_secs(15)).expect("recovered delivery") {
        UdpEvent::Message { data, .. } => assert_eq!(data, payload),
        other => panic!("unexpected {other:?}"),
    }
    a.shutdown();
    b.shutdown();
}
