//! Cross-crate integration tests: the full Homa stack on the simulated
//! leaf-spine fabric.

use homa::HomaConfig;
use homa_baselines::homa_sim::static_map_for_workload;
use homa_baselines::HomaSimTransport;
use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::slowdown::SlowdownSummary;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::PortClass;
use homa_workloads::Workload;

const FABRIC: FabricSpec = FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 };

#[test]
fn homa_delivers_everything_on_the_fabric_at_80_percent() {
    let spec = ScenarioSpec::new("full_w2", FABRIC, Workload::W2, 0.8, 3_000, 7);
    let res =
        run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default().with_records(), None);
    assert_eq!(res.delivered, res.injected, "no lost messages");
    assert_eq!(res.aborted, 0);
    assert_eq!(res.duplicate_deliveries, 0);
    assert_eq!(res.stats.total_drops(), 0, "Homa's buffering avoids drops");
    // All slowdowns >= ~1 (sanity of the unloaded-latency denominator).
    for r in &res.records {
        assert!(r.slowdown() > 0.9, "slowdown {} for size {}", r.slowdown(), r.size);
    }
}

#[test]
fn homa_tail_latency_beats_streaming_under_load() {
    // The paper's core claim, end to end: under load, Homa's small-message
    // p99 slowdown is far below a TCP-like stream transport's.
    let spec = ScenarioSpec::new(
        "full_w3",
        FabricSpec::SingleSwitch { hosts: 10 },
        Workload::W3,
        0.7,
        4_000,
        3,
    );
    let homa =
        run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default().with_records(), None);
    let stream =
        run_protocol_scenario(Protocol::Stream, &spec, &OnewayOpts::default().with_records(), None);
    let h = SlowdownSummary::small_message_p99(&homa.records, 0.5);
    let s = SlowdownSummary::small_message_p99(&stream.records, 0.5);
    assert!(h * 3.0 < s, "expected >=3x tail gap, got homa={h:.2} stream={s:.2}");
}

#[test]
fn queueing_concentrates_at_tor_downlinks() {
    // Table 1's structural claim: with per-packet spraying, mean queue
    // lengths in the core stay below the TOR->host downlinks'.
    let spec = ScenarioSpec::new("full_w4_queues", FABRIC, Workload::W4, 0.8, 1_500, 5);
    let res = run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default(), None);
    let down = res.stats.mean_queue_bytes(PortClass::TorDown).unwrap();
    let up = res.stats.mean_queue_bytes(PortClass::TorUp).unwrap();
    let spine = res.stats.mean_queue_bytes(PortClass::SpineDown).unwrap();
    assert!(down > up, "downlink {down:.0}B vs uplink {up:.0}B");
    assert!(down > spine, "downlink {down:.0}B vs spine {spine:.0}B");
    // And absolute occupancy is modest (paper: means of 1-17 KB).
    assert!(down < 60_000.0, "mean downlink queue {down:.0}B too large");
}

#[test]
fn restricting_priorities_hurts_tail_latency() {
    // Figures 8/17: HomaP1 (single priority level) must be measurably
    // worse than full Homa for small messages under load.
    let spec = ScenarioSpec::new("full_w1_prios", FABRIC, Workload::W1, 0.8, 8_000, 11);
    let dist = Workload::W1.dist();
    let run = |prios: u8| {
        let cfg = HomaConfig { num_priorities: prios, ..HomaConfig::default() };
        let map = static_map_for_workload(&dist, &cfg);
        let res = spec.run_oneway(
            None,
            |h| HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone()),
            &OnewayOpts::default().with_records(),
        );
        assert!(res.delivered >= res.injected * 99 / 100);
        SlowdownSummary::small_message_p99(&res.records, 0.5)
    };
    let p8 = run(8);
    let p1 = run(1);
    assert!(p1 > p8 * 1.3, "single priority should degrade tails: P8={p8:.2} P1={p1:.2}");
}

#[test]
fn overcommitment_limits_inflight_buffering() {
    // §3.5: the degree of overcommitment bounds TOR buffering to roughly
    // K * RTTbytes (plus unscheduled collisions).
    let spec = ScenarioSpec::new(
        "full_w4_overcommit",
        FabricSpec::SingleSwitch { hosts: 16 },
        Workload::W4,
        0.8,
        800,
        9,
    );
    let res = run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default(), None);
    let max_q = res.stats.max_queue_bytes(PortClass::TorDown).unwrap();
    // 7 scheduled levels x 9.7KB plus a generous unscheduled allowance.
    assert!(max_q < 350_000, "max TOR downlink queue {max_q}B exceeds the overcommitment bound");
}

#[test]
fn deterministic_experiments() {
    let spec = ScenarioSpec::new(
        "full_det",
        FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 4, spines: 1 },
        Workload::W2,
        0.6,
        500,
        99,
    );
    let run = || {
        let res = run_protocol_scenario(
            Protocol::Homa,
            &spec,
            &OnewayOpts::default().with_records(),
            None,
        );
        res.records.iter().map(|r| (r.size, r.completed_ns)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed, same results");
}

#[test]
fn spec_line_replays_a_full_stack_run() {
    // The replay contract end to end: serialize a spec, parse it back,
    // and get bit-identical results from the parsed copy.
    let spec = ScenarioSpec::new("full_replay", FABRIC, Workload::W2, 0.6, 800, 77);
    let replayed = ScenarioSpec::parse_spec_line(&spec.to_spec_line()).expect("line parses");
    let sig = |s: &ScenarioSpec| {
        let res =
            run_protocol_scenario(Protocol::Homa, s, &OnewayOpts::default().with_records(), None);
        (res.records.iter().map(|r| (r.size, r.completed_ns)).collect::<Vec<_>>(), res.delivered)
    };
    assert_eq!(sig(&spec), sig(&replayed), "replayed spec diverged from the original");
}
