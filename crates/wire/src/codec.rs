//! Encoding and decoding of Homa packets.

use crate::error::WireError;
use bytes::{Buf, BufMut, BytesMut};
use homa::packets::{
    BusyHeader, CutoffsUpdate, DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId,
    ResendHeader,
};

/// Packet-type tags.
const T_DATA: u8 = 0x01;
const T_GRANT: u8 = 0x02;
const T_RESEND: u8 = 0x03;
const T_BUSY: u8 = 0x04;
const T_CUTOFFS: u8 = 0x05;

const D_REQUEST: u8 = 0x01;
const D_RESPONSE: u8 = 0x02;
const D_ONEWAY: u8 = 0x03;

const F_UNSCHEDULED: u8 = 0x01;
const F_RETRANSMIT: u8 = 0x02;
const F_INCAST: u8 = 0x04;

/// Fixed common-header length (see crate docs for the layout).
pub const HEADER_LEN: usize = 18;

/// Maximum cutoffs a CUTOFFS/GRANT may carry (7 boundaries for 8 levels).
const MAX_CUTOFFS: usize = 7;

fn dir_code(d: Dir) -> u8 {
    match d {
        Dir::Request => D_REQUEST,
        Dir::Response => D_RESPONSE,
        Dir::Oneway => D_ONEWAY,
    }
}

fn dir_from(code: u8) -> Result<Dir, WireError> {
    match code {
        D_REQUEST => Ok(Dir::Request),
        D_RESPONSE => Ok(Dir::Response),
        D_ONEWAY => Ok(Dir::Oneway),
        other => Err(WireError::BadDir(other)),
    }
}

fn put_header(buf: &mut BytesMut, ty: u8, key: Option<MsgKey>, prio: u8, flags: u8) {
    buf.put_u8(ty);
    let key = key.unwrap_or(MsgKey { origin: PeerId(0), seq: 0, dir: Dir::Oneway });
    buf.put_u32(key.origin.0);
    buf.put_u64(key.seq);
    buf.put_u8(dir_code(key.dir));
    buf.put_u8(prio);
    buf.put_u8(flags);
    buf.put_u16(0); // reserved
}

fn put_cutoffs(buf: &mut BytesMut, c: &CutoffsUpdate) {
    buf.put_u64(c.version);
    buf.put_u8(c.unsched_levels);
    buf.put_u8(c.cutoffs.len() as u8);
    for &x in &c.cutoffs {
        buf.put_u64(x);
    }
}

fn get_cutoffs(buf: &mut &[u8]) -> Result<CutoffsUpdate, WireError> {
    if buf.remaining() < 10 {
        return Err(WireError::Truncated { needed: 10, got: buf.remaining() });
    }
    let version = buf.get_u64();
    let unsched_levels = buf.get_u8();
    let n = buf.get_u8() as usize;
    if n > MAX_CUTOFFS {
        return Err(WireError::TooManyCutoffs(n));
    }
    if buf.remaining() < n * 8 {
        return Err(WireError::Truncated { needed: n * 8, got: buf.remaining() });
    }
    let cutoffs = (0..n).map(|_| buf.get_u64()).collect();
    Ok(CutoffsUpdate { version, unsched_levels, cutoffs })
}

/// Size of the encoding of `pkt` (excluding DATA payload bytes).
pub fn encoded_len(pkt: &HomaPacket) -> usize {
    HEADER_LEN
        + match pkt {
            HomaPacket::Data(_) => 28,
            HomaPacket::Grant(g) => {
                9 + g.cutoffs.as_ref().map(|c| 10 + 8 * c.cutoffs.len()).unwrap_or(0)
            }
            HomaPacket::Resend(_) => 16,
            HomaPacket::Busy(_) => 0,
            HomaPacket::Cutoffs(c) => 10 + 8 * c.cutoffs.len(),
        }
}

/// Encode `pkt` (with `payload` appended for DATA packets) into a fresh
/// buffer.
pub fn encode(pkt: &HomaPacket, payload: &[u8]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(encoded_len(pkt) + payload.len());
    match pkt {
        HomaPacket::Data(h) => {
            let mut flags = 0;
            if h.unscheduled {
                flags |= F_UNSCHEDULED;
            }
            if h.retransmit {
                flags |= F_RETRANSMIT;
            }
            if h.incast_mark {
                flags |= F_INCAST;
            }
            put_header(&mut buf, T_DATA, Some(h.key), h.prio, flags);
            buf.put_u64(h.msg_len);
            buf.put_u64(h.offset);
            buf.put_u32(h.payload);
            buf.put_u64(h.tag);
            debug_assert_eq!(payload.len(), h.payload as usize, "payload length mismatch");
            buf.put_slice(payload);
        }
        HomaPacket::Grant(g) => {
            put_header(&mut buf, T_GRANT, Some(g.key), g.prio, 0);
            buf.put_u64(g.offset);
            match &g.cutoffs {
                Some(c) => {
                    buf.put_u8(1);
                    put_cutoffs(&mut buf, c);
                }
                None => buf.put_u8(0),
            }
        }
        HomaPacket::Resend(r) => {
            put_header(&mut buf, T_RESEND, Some(r.key), r.prio, 0);
            buf.put_u64(r.offset);
            buf.put_u64(r.length);
        }
        HomaPacket::Busy(b) => {
            put_header(&mut buf, T_BUSY, Some(b.key), 0, 0);
        }
        HomaPacket::Cutoffs(c) => {
            put_header(&mut buf, T_CUTOFFS, None, 0, 0);
            put_cutoffs(&mut buf, c);
        }
    }
    buf
}

/// Decode a packet. For DATA, the returned `usize` is the offset of the
/// payload bytes within `buf` (the header's `payload` field tells their
/// length, validated against the buffer).
pub fn decode(buf: &[u8]) -> Result<(HomaPacket, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, got: buf.len() });
    }
    let mut b = buf;
    let ty = b.get_u8();
    let origin = PeerId(b.get_u32());
    let seq = b.get_u64();
    let dir = dir_from(b.get_u8())?;
    let prio = b.get_u8();
    let flags = b.get_u8();
    let _rsvd = b.get_u16();
    let key = MsgKey { origin, seq, dir };

    match ty {
        T_DATA => {
            if b.remaining() < 28 {
                return Err(WireError::Truncated { needed: HEADER_LEN + 28, got: buf.len() });
            }
            let msg_len = b.get_u64();
            let offset = b.get_u64();
            let payload = b.get_u32();
            let tag = b.get_u64();
            let payload_off = HEADER_LEN + 28;
            if buf.len() < payload_off + payload as usize {
                return Err(WireError::BadLength {
                    declared: payload as usize,
                    available: buf.len() - payload_off,
                });
            }
            Ok((
                HomaPacket::Data(DataHeader {
                    key,
                    msg_len,
                    offset,
                    payload,
                    prio,
                    unscheduled: flags & F_UNSCHEDULED != 0,
                    retransmit: flags & F_RETRANSMIT != 0,
                    incast_mark: flags & F_INCAST != 0,
                    tag,
                }),
                payload_off,
            ))
        }
        T_GRANT => {
            if b.remaining() < 9 {
                return Err(WireError::Truncated { needed: HEADER_LEN + 9, got: buf.len() });
            }
            let offset = b.get_u64();
            let has_cutoffs = b.get_u8() != 0;
            let cutoffs = if has_cutoffs { Some(get_cutoffs(&mut b)?) } else { None };
            Ok((HomaPacket::Grant(GrantHeader { key, offset, prio, cutoffs }), buf.len()))
        }
        T_RESEND => {
            if b.remaining() < 16 {
                return Err(WireError::Truncated { needed: HEADER_LEN + 16, got: buf.len() });
            }
            let offset = b.get_u64();
            let length = b.get_u64();
            Ok((HomaPacket::Resend(ResendHeader { key, offset, length, prio }), buf.len()))
        }
        T_BUSY => Ok((HomaPacket::Busy(BusyHeader { key }), buf.len())),
        T_CUTOFFS => {
            let c = get_cutoffs(&mut b)?;
            Ok((HomaPacket::Cutoffs(c), buf.len()))
        }
        other => Err(WireError::BadType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MsgKey {
        MsgKey { origin: PeerId(7), seq: 0xDEAD_BEEF_1234, dir: Dir::Request }
    }

    #[test]
    fn data_round_trip_with_payload() {
        let hdr = DataHeader {
            key: key(),
            msg_len: 100_000,
            offset: 2_800,
            payload: 5,
            prio: 6,
            unscheduled: true,
            retransmit: false,
            incast_mark: true,
            tag: 42,
        };
        let pkt = HomaPacket::Data(hdr.clone());
        let buf = encode(&pkt, b"hello");
        let (out, off) = decode(&buf).expect("decodes");
        assert_eq!(out, pkt);
        assert_eq!(&buf[off..off + 5], b"hello");
    }

    #[test]
    fn grant_round_trip_with_cutoffs() {
        let pkt = HomaPacket::Grant(GrantHeader {
            key: key(),
            offset: 123_456,
            prio: 2,
            cutoffs: Some(CutoffsUpdate {
                version: 9,
                unsched_levels: 4,
                cutoffs: vec![280, 1_000, 4_000],
            }),
        });
        let buf = encode(&pkt, &[]);
        let (out, _) = decode(&buf).expect("decodes");
        assert_eq!(out, pkt);
    }

    #[test]
    fn grant_round_trip_without_cutoffs() {
        let pkt = HomaPacket::Grant(GrantHeader { key: key(), offset: 1, prio: 0, cutoffs: None });
        let (out, _) = decode(&encode(&pkt, &[])).expect("decodes");
        assert_eq!(out, pkt);
    }

    #[test]
    fn resend_busy_cutoffs_round_trip() {
        for pkt in [
            HomaPacket::Resend(ResendHeader { key: key(), offset: 10, length: 999, prio: 7 }),
            HomaPacket::Busy(BusyHeader { key: key() }),
            HomaPacket::Cutoffs(CutoffsUpdate {
                version: 3,
                unsched_levels: 7,
                cutoffs: vec![1, 2, 3, 4, 5, 6],
            }),
        ] {
            let (out, _) = decode(&encode(&pkt, &[])).expect("decodes");
            assert_eq!(out, pkt);
        }
    }

    #[test]
    fn truncated_buffers_rejected() {
        let pkt = HomaPacket::Busy(BusyHeader { key: key() });
        let buf = encode(&pkt, &[]);
        for cut in 0..buf.len() {
            let r = decode(&buf[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn data_with_lying_payload_length_rejected() {
        let hdr = DataHeader {
            key: key(),
            msg_len: 10,
            offset: 0,
            payload: 100, // claims 100 bytes but carries none
            prio: 0,
            unscheduled: false,
            retransmit: false,
            incast_mark: false,
            tag: 0,
        };
        // Build manually to bypass the debug assertion.
        let mut buf = encode(&HomaPacket::Data(DataHeader { payload: 0, ..hdr.clone() }), &[]);
        // Patch the payload-length field (at HEADER_LEN + 16).
        let at = HEADER_LEN + 16;
        buf[at..at + 4].copy_from_slice(&100u32.to_be_bytes());
        assert!(matches!(decode(&buf), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn unknown_type_rejected() {
        let pkt = HomaPacket::Busy(BusyHeader { key: key() });
        let mut buf = encode(&pkt, &[]);
        buf[0] = 0x7F;
        assert_eq!(decode(&buf), Err(WireError::BadType(0x7F)));
    }

    #[test]
    fn encoded_len_matches() {
        for (pkt, payload) in [
            (
                HomaPacket::Data(DataHeader {
                    key: key(),
                    msg_len: 10,
                    offset: 0,
                    payload: 3,
                    prio: 0,
                    unscheduled: false,
                    retransmit: false,
                    incast_mark: false,
                    tag: 0,
                }),
                &b"abc"[..],
            ),
            (HomaPacket::Busy(BusyHeader { key: key() }), &b""[..]),
            (
                HomaPacket::Cutoffs(CutoffsUpdate {
                    version: 1,
                    unsched_levels: 2,
                    cutoffs: vec![5],
                }),
                &b""[..],
            ),
        ] {
            let buf = encode(&pkt, payload);
            assert_eq!(buf.len(), encoded_len(&pkt) + payload.len());
        }
    }
}
