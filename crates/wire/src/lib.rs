//! # homa-wire — binary wire formats for the Homa transport
//!
//! A compact binary encoding of the protocol packets defined in
//! [`homa::packets`], used by the real-network UDP transport
//! (`homa-udp`). The format is deliberately simple and explicit,
//! smoltcp-style: fixed-layout headers with explicit byte order
//! (big-endian), no implicit padding, and validating parsers that reject
//! truncated or malformed input instead of panicking.
//!
//! ## Layout
//!
//! Every packet begins with a 1-byte type tag and the 17-byte message key
//! (origin peer: 4, sequence: 8, direction: 1, priority: 1, flags: 1,
//! reserved: 2). Type-specific fields follow; DATA payload bytes trail
//! the header.
//!
//! ```text
//!  0      1        5            13    14     15      16..18
//! +------+--------+------------+-----+------+-------+------+
//! | type | origin | seq (u64)  | dir | prio | flags | rsvd |
//! +------+--------+------------+-----+------+-------+------+
//! | type-specific fields ...                               |
//! +--------------------------------------------------------+
//! ```
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`codec`] | §4's packet formats, reduced to an explicit byte layout for UDP transport |
//! | [`error`] | parse-failure taxonomy (no paper analogue; the paper's DPDK driver trusts its NIC) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;

pub use codec::{decode, encode, encoded_len, HEADER_LEN};
pub use error::WireError;
