//! Wire decoding errors.

use std::fmt;

/// Why a buffer failed to parse as a Homa packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unknown packet-type tag.
    BadType(u8),
    /// Unknown direction code.
    BadDir(u8),
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// Declared length.
        declared: usize,
        /// Actual available bytes.
        available: usize,
    },
    /// Cutoff list longer than the protocol allows.
    TooManyCutoffs(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            WireError::BadType(t) => write!(f, "unknown packet type {t:#x}"),
            WireError::BadDir(d) => write!(f, "unknown direction code {d:#x}"),
            WireError::BadLength { declared, available } => {
                write!(f, "bad length: declared {declared}, available {available}")
            }
            WireError::TooManyCutoffs(n) => write!(f, "too many cutoffs: {n}"),
        }
    }
}

impl std::error::Error for WireError {}
