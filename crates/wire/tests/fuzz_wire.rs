//! Adversarial fuzzing of the wire codec.
//!
//! Three properties, each a seeded deterministic loop:
//!
//! 1. `decode` never panics — not on random garbage, not on truncated
//!    prefixes of valid packets, not on bit-flipped valid packets. It
//!    returns `Ok` or a [`WireError`]; anything else is a bug.
//! 2. Every *strict* prefix of a valid encoding fails to decode (the
//!    format has no ambiguous framing).
//! 3. `decode ∘ encode` is the identity on valid packets, payload
//!    included.
//!
//! On top of the random loops, `adversarial_corpus_decodes_to_exact_errors`
//! pins a checked-in corpus of hostile buffers to their *exact*
//! [`WireError`] values, so an error-taxonomy regression is caught even
//! if the random walk misses the path that round.
//!
//! Iteration counts honor `HOMA_FUZZ_ITERS` (CI smoke pins 500); the
//! `#[ignore]` long-haul variant multiplies them for nightly runs.

use homa::packets::{
    BusyHeader, CutoffsUpdate, DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId,
    ResendHeader,
};
use homa_harness::{FuzzFamily, SplitMix64};
use homa_wire::{decode, encode, encoded_len, WireError, HEADER_LEN};

/// The wire family shares the workspace fuzz plumbing (`HOMA_FUZZ_ITERS`
/// for iteration budgets). Its failures are plain assert panics — the
/// corpus table below is the replay mechanism — so the replay variable
/// is only ever mentioned, never read.
const FAMILY: FuzzFamily = FuzzFamily::new("wire", "HOMA_FUZZ_REPLAY");

fn arbitrary_key(rng: &mut SplitMix64) -> MsgKey {
    MsgKey {
        origin: PeerId(rng.next_u64() as u32),
        seq: rng.next_u64(),
        dir: match rng.below(3) {
            0 => Dir::Request,
            1 => Dir::Response,
            _ => Dir::Oneway,
        },
    }
}

fn arbitrary_cutoffs(rng: &mut SplitMix64) -> CutoffsUpdate {
    let n = rng.below(8) as usize; // 0..=7, the protocol maximum
    CutoffsUpdate {
        version: rng.next_u64(),
        unsched_levels: rng.below(8) as u8,
        cutoffs: (0..n).map(|_| rng.next_u64()).collect(),
    }
}

/// A structurally valid packet plus (for DATA) its payload bytes.
fn arbitrary_packet(rng: &mut SplitMix64) -> (HomaPacket, Vec<u8>) {
    let key = arbitrary_key(rng);
    match rng.below(5) {
        0 => {
            let payload: Vec<u8> = (0..rng.below(64)).map(|_| rng.next_u64() as u8).collect();
            let flags = rng.next_u64();
            (
                HomaPacket::Data(DataHeader {
                    key,
                    msg_len: rng.next_u64(),
                    offset: rng.next_u64(),
                    payload: payload.len() as u32,
                    prio: rng.below(8) as u8,
                    unscheduled: flags & 1 != 0,
                    retransmit: flags & 2 != 0,
                    incast_mark: flags & 4 != 0,
                    tag: rng.next_u64(),
                }),
                payload,
            )
        }
        1 => {
            let cutoffs = if rng.below(2) == 0 { Some(arbitrary_cutoffs(rng)) } else { None };
            (
                HomaPacket::Grant(GrantHeader {
                    key,
                    offset: rng.next_u64(),
                    prio: rng.below(8) as u8,
                    cutoffs,
                }),
                Vec::new(),
            )
        }
        2 => (
            HomaPacket::Resend(ResendHeader {
                key,
                offset: rng.next_u64(),
                length: rng.next_u64(),
                prio: rng.below(8) as u8,
            }),
            Vec::new(),
        ),
        3 => (HomaPacket::Busy(BusyHeader { key }), Vec::new()),
        _ => (HomaPacket::Cutoffs(arbitrary_cutoffs(rng)), Vec::new()),
    }
}

/// An 18-byte common header with the given type and direction codes and
/// an arbitrary-but-fixed key, for corpus construction.
fn corpus_header(ty: u8, dir: u8) -> Vec<u8> {
    let mut b = vec![ty];
    b.extend_from_slice(&7u32.to_be_bytes()); // origin
    b.extend_from_slice(&42u64.to_be_bytes()); // seq
    b.push(dir);
    b.push(1); // prio
    b.push(0); // flags
    b.extend_from_slice(&[0, 0]); // reserved
    assert_eq!(b.len(), HEADER_LEN);
    b
}

/// The checked-in adversarial corpus: each entry is a hostile buffer
/// and the *exact* error the decoder must return for it. Extend this
/// table whenever a fuzz run shrinks a new failure class.
fn adversarial_corpus() -> Vec<(&'static str, Vec<u8>, WireError)> {
    let mut t: Vec<(&'static str, Vec<u8>, WireError)> = vec![
        ("empty", Vec::new(), WireError::Truncated { needed: HEADER_LEN, got: 0 }),
        ("header-short-one", vec![0u8; 17], WireError::Truncated { needed: HEADER_LEN, got: 17 }),
        // Direction is validated before the type dispatch.
        ("dir-zero", corpus_header(0x04, 0x00), WireError::BadDir(0x00)),
        ("dir-junk", corpus_header(0x01, 0x7F), WireError::BadDir(0x7F)),
        ("type-zero", corpus_header(0x00, 0x01), WireError::BadType(0x00)),
        ("type-junk", corpus_header(0xFF, 0x03), WireError::BadType(0xFF)),
    ];

    // DATA with one body byte missing (needs 28 past the header).
    let mut b = corpus_header(0x01, 0x01);
    b.extend_from_slice(&[0u8; 27]);
    t.push(("data-body-short", b, WireError::Truncated { needed: HEADER_LEN + 28, got: 45 }));

    // DATA whose payload field claims 100 bytes the buffer doesn't have.
    let mut b = corpus_header(0x01, 0x02);
    b.extend_from_slice(&10u64.to_be_bytes()); // msg_len
    b.extend_from_slice(&0u64.to_be_bytes()); // offset
    b.extend_from_slice(&100u32.to_be_bytes()); // payload length (a lie)
    b.extend_from_slice(&0u64.to_be_bytes()); // tag
    t.push(("data-lying-payload", b, WireError::BadLength { declared: 100, available: 0 }));

    // GRANT missing its cutoffs-flag byte (needs 9 past the header).
    let mut b = corpus_header(0x02, 0x02);
    b.extend_from_slice(&5u64.to_be_bytes());
    t.push(("grant-body-short", b, WireError::Truncated { needed: HEADER_LEN + 9, got: 26 }));

    // GRANT that promises cutoffs but truncates their 10-byte header.
    let mut b = corpus_header(0x02, 0x01);
    b.extend_from_slice(&5u64.to_be_bytes()); // offset
    b.push(1); // has_cutoffs
    b.extend_from_slice(&[0u8; 5]); // 5 of the 10 cutoffs-header bytes
    t.push(("grant-cutoffs-short", b, WireError::Truncated { needed: 10, got: 5 }));

    // GRANT carrying 8 cutoff boundaries (7 is the protocol maximum).
    let mut b = corpus_header(0x02, 0x01);
    b.extend_from_slice(&5u64.to_be_bytes()); // offset
    b.push(1); // has_cutoffs
    b.extend_from_slice(&9u64.to_be_bytes()); // version
    b.push(4); // unsched_levels
    b.push(8); // count — one past MAX_CUTOFFS
    b.extend_from_slice(&[0u8; 64]);
    t.push(("grant-cutoffs-overflow", b, WireError::TooManyCutoffs(8)));

    // CUTOFFS with a saturated count byte.
    let mut b = corpus_header(0x05, 0x03);
    b.extend_from_slice(&1u64.to_be_bytes()); // version
    b.push(2); // unsched_levels
    b.push(255); // count
    t.push(("cutoffs-count-255", b, WireError::TooManyCutoffs(255)));

    // CUTOFFS declaring 7 boundaries but carrying only 3.
    let mut b = corpus_header(0x05, 0x03);
    b.extend_from_slice(&1u64.to_be_bytes());
    b.push(2);
    b.push(7);
    b.extend_from_slice(&[0u8; 24]);
    t.push(("cutoffs-boundaries-short", b, WireError::Truncated { needed: 56, got: 24 }));

    // RESEND one byte short of its 16-byte body.
    let mut b = corpus_header(0x03, 0x01);
    b.extend_from_slice(&[0u8; 15]);
    t.push(("resend-body-short", b, WireError::Truncated { needed: HEADER_LEN + 16, got: 33 }));

    t
}

#[test]
fn adversarial_corpus_decodes_to_exact_errors() {
    for (name, buf, want) in adversarial_corpus() {
        match decode(&buf) {
            Err(e) => assert_eq!(e, want, "corpus entry `{name}` returned the wrong error"),
            Ok((pkt, _)) => panic!("corpus entry `{name}` decoded as {pkt:?}"),
        }
    }
}

fn check_random_buffers(seed: u64, iters: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in 0..iters {
        let len = rng.below(600) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Must not panic; a random buffer that happens to parse must
        // re-encode to something that parses back to the same packet.
        if let Ok((pkt, off)) = decode(&buf) {
            let payload = if let HomaPacket::Data(d) = &pkt {
                &buf[off..off + d.payload as usize]
            } else {
                &[][..]
            };
            let re = encode(&pkt, payload);
            let (again, _) = decode(&re).unwrap_or_else(|e| {
                panic!("iter {i}: re-encode of randomly-parsed {pkt:?} failed to decode: {e}")
            });
            assert_eq!(again, pkt, "iter {i}: random buffer round trip diverged");
        }
    }
}

fn check_prefixes_and_identity(seed: u64, iters: u64) {
    let mut rng = SplitMix64::new(seed);
    for i in 0..iters {
        let (pkt, payload) = arbitrary_packet(&mut rng);
        let buf = encode(&pkt, &payload);
        assert_eq!(buf.len(), encoded_len(&pkt) + payload.len(), "iter {i}: encoded_len lied");

        // Identity, payload included.
        let (out, off) =
            decode(&buf).unwrap_or_else(|e| panic!("iter {i}: {pkt:?} failed to decode: {e}"));
        assert_eq!(out, pkt, "iter {i}: decode(encode(pkt)) != pkt");
        if let HomaPacket::Data(d) = &out {
            assert_eq!(&buf[off..off + d.payload as usize], &payload[..], "iter {i}: payload");
        }

        // No strict prefix may parse: truncation is always detected.
        for cut in 0..buf.len() {
            if let Ok((p, _)) = decode(&buf[..cut]) {
                panic!("iter {i}: {cut}-byte prefix of {pkt:?} decoded as {p:?}");
            }
        }
    }
}

fn check_bit_flips(seed: u64, iters: u64) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..iters {
        let (pkt, payload) = arbitrary_packet(&mut rng);
        let buf = encode(&pkt, &payload);
        for bit in 0..buf.len() * 8 {
            let mut mutant = buf.to_vec();
            mutant[bit / 8] ^= 1 << (bit % 8);
            // Ok (a different valid packet) or Err are both fine; the
            // decoder just must not panic or read out of bounds.
            let _ = decode(&mutant);
        }
    }
}

#[test]
fn random_buffers_never_panic() {
    check_random_buffers(7, FAMILY.iters(2_000));
}

#[test]
fn prefixes_fail_and_encode_decode_is_identity() {
    check_prefixes_and_identity(11, FAMILY.iters(1_000));
}

#[test]
fn single_bit_flips_never_panic() {
    check_bit_flips(17, FAMILY.iters(300));
}

/// Nightly long-haul: the same three properties at ~50x the smoke
/// budget, on a disjoint seed stream.
#[test]
#[ignore = "long-haul fuzz loop; run with --ignored (nightly CI)"]
fn long_haul_wire_fuzz() {
    check_random_buffers(0x9E37_79B9, FAMILY.iters(2_000) * 50);
    check_prefixes_and_identity(0xDEAD_BEEF, FAMILY.iters(1_000) * 50);
    check_bit_flips(0x00C0_FFEE, FAMILY.iters(300) * 20);
}
