//! Golden test for the flight-recorder JSONL export.
//!
//! A small seed-42 run is pinned **byte-for-byte**. The trace rides the
//! same `(time, seq)` total order the engines replay bit-identically
//! (see the `determinism` suite), so any diff here means either the
//! simulator/transport behavior changed (refresh deliberately — the
//! perf gate's pinned event counts will flag it too) or the JSONL
//! rendering drifted (don't let it: downstream tooling parses these
//! lines).
//!
//! To refresh after an intentional change:
//! `BLESS=1 cargo test -p homa-bench --test trace_golden`

use homa_bench::tracecmd::trace_run;
use homa_bench::Protocol;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_workloads::Workload;

/// The spec the golden trace was generated from (equivalent to
/// `repro trace name=trace_golden fabric=mtor:16 wl=W2 load=0.5
/// msgs=40 seed=42`).
fn golden_spec() -> ScenarioSpec {
    ScenarioSpec::new("trace_golden", FabricSpec::MultiTor { hosts: 16 }, Workload::W2, 0.5, 40, 42)
}

const GOLDEN_PATH: &str = "tests/golden/TRACE_seed42_w2.jsonl";

#[test]
fn trace_jsonl_seed42_matches_golden() {
    let tr = trace_run(Protocol::Homa, &golden_spec(), 1 << 20);
    assert_eq!(tr.dropped, 0, "golden run must fit the ring");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &tr.jsonl).expect("write golden");
        return;
    }
    let golden = include_str!("golden/TRACE_seed42_w2.jsonl");
    assert_eq!(
        tr.jsonl, golden,
        "TRACE.jsonl drifted from the golden file. If the simulation change is \
         intentional, refresh with: BLESS=1 cargo test -p homa-bench --test trace_golden"
    );
}
