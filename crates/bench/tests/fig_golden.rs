//! Golden tests for the machine-readable figure output.
//!
//! Two layers of pinning:
//!
//! * **Schema** — the canonical comparison columns
//!   (`workload`/`protocol`/`variant`/`load`/`metric`/`x`/`value`) must
//!   survive in every comparison-relevant table, and `FIG_*.json` must
//!   round-trip through the hand-rolled parser. The `repro compare`
//!   gate and the nightly figure-accuracy job both read these files;
//!   renaming a column would silently unjoin every reference curve.
//! * **Numbers** — a seed-42 reduced-scale `repro fig12` run is pinned
//!   byte-for-byte. The simulation is deterministic, so any diff means
//!   either the simulator/transport behavior changed (refresh
//!   deliberately, and expect the perf gate to flag it too) or the JSON
//!   formatting drifted (don't).
//!
//! To refresh after an intentional change:
//! `BLESS=1 cargo test -p homa-bench --test fig_golden`

use homa_bench::figdata::{self, measured_points, ReproOpts};
use homa_bench::perfjson::{parse_table, render_table};
use homa_workloads::Workload;

/// The options the golden file was generated with (equivalent to
/// `repro fig12 --workloads W4 --loads 0.8 --scale 0.05 --seed 42`).
fn golden_opts() -> ReproOpts {
    ReproOpts {
        full: false,
        workloads: vec![Workload::W4],
        loads: vec![0.8],
        seed: 42,
        msgs_scale: 0.05,
        bins: 10,
    }
}

const GOLDEN_PATH: &str = "tests/golden/FIG_12_seed42_w4.json";

#[test]
fn fig12_seed42_reduced_matches_golden() {
    let table = figdata::fig12(&golden_opts());
    let json = render_table(&table);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }
    let golden = include_str!("golden/FIG_12_seed42_w4.json");
    assert_eq!(
        json, golden,
        "FIG_12.json drifted from the golden file. If the simulation change is \
         intentional, refresh with: BLESS=1 cargo test -p homa-bench --test fig_golden"
    );
}

#[test]
fn fig12_schema_has_canonical_columns_and_round_trips() {
    let golden = include_str!("golden/FIG_12_seed42_w4.json");
    let table = parse_table(golden).expect("golden parses");
    assert_eq!(table.figure, "fig12");
    assert_eq!(table.schema, 1);

    // Render → parse is the identity on our own files.
    let back = parse_table(&render_table(&table)).expect("round trip");
    assert_eq!(back, table);

    // Every row must carry the canonical comparison columns; the gate
    // joins reference curves on exactly these.
    let points = measured_points(&table);
    assert_eq!(points.len(), table.rows.len(), "every fig12 row must extract as a measured point");
    // 4 protocols (Homa/pFabric/pHost/PIAS) x (10 bins + 1 summary row).
    assert_eq!(points.len(), 44);
    for p in &points {
        assert_eq!(p.workload, "W4");
        assert!(p.load > 0.0 && p.load <= 1.0, "load {}", p.load);
        assert!(p.metric == "p99_slowdown" || p.metric == "small_msg_p99", "{}", p.metric);
        assert!(p.y.is_finite() && p.y > 0.0, "value {}", p.y);
    }
    // The percentile bins cover the full x axis for each protocol.
    let homa_xs: Vec<f64> = points
        .iter()
        .filter(|p| p.protocol == "Homa" && p.metric == "p99_slowdown")
        .map(|p| p.x)
        .collect();
    assert_eq!(homa_xs, vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]);
}

#[test]
fn fig12_golden_joins_the_reference_curves() {
    // The pinned table must actually join the digitized fig12 W4/Homa
    // reference curve — if the join breaks, the nightly gate would
    // silently compare nothing.
    let golden = include_str!("golden/FIG_12_seed42_w4.json");
    let table = parse_table(golden).expect("golden parses");
    let deltas = homa_harness::figures::compare_curves(&measured_points(&table));
    let joined: Vec<_> = deltas.iter().filter(|d| !d.points.is_empty()).collect();
    assert!(
        joined.iter().any(|d| d.curve.workload == "W4"
            && d.curve.protocol == "Homa"
            && d.curve.figure == "fig12"
            && d.points.len() == d.curve.points.len()),
        "fig12 W4/Homa@80% must fully join the reference curve"
    );
}
