//! Minimal JSON writer/reader for the machine-readable report formats.
//!
//! The workspace builds offline (the `serde` dependency is a no-op shim),
//! so the perf gate and the `repro` binary carry their own serializer for
//! the two schemas they need:
//!
//! * [`Report`] — the `perf-smoke` format: a flat object per scenario
//!   inside a `"scenarios"` array.
//! * [`FigTable`] — the `repro` figure format (`FIG_<n>.json`): a flat
//!   object per data row inside a `"rows"` array, with free-form columns
//!   ([`Field`]: string or number) so every figure can carry its own
//!   shape while the comparison gate reads the canonical columns it
//!   needs.
//!
//! The parsers accept exactly what the renderers emit (plus whitespace
//! variations) — they are readers for our own files, not general JSON
//! parsers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One cell of a [`FigTable`] row: a string or a (finite) number.
///
/// There is no bool/null; figure rows don't need them, and keeping the
/// domain tiny keeps the round-trip rule honest: on parse, any cell that
/// parses as `f64` comes back as [`Field::Num`], everything else as
/// [`Field::Text`] — so text columns must not hold purely numeric
/// strings (ours are workload/protocol/metric names, which never are).
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// A string cell.
    Text(String),
    /// A numeric cell.
    Num(f64),
}

impl Field {
    /// The cell as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Field::Num(n) => Some(*n),
            Field::Text(_) => None,
        }
    }

    /// The cell as text, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Field::Text(s) => Some(s),
            Field::Num(_) => None,
        }
    }
}

/// One row of figure data: column name → cell. Columns are free-form;
/// the `repro compare` gate looks for the canonical ones
/// (`workload`/`protocol`/`variant`/`load`/`metric`/`x`/`value`).
pub type FigRow = BTreeMap<String, Field>;

/// Machine-readable data for one figure/table of the paper, written as
/// `FIG_<n>.json` next to the text output.
#[derive(Debug, Clone, PartialEq)]
pub struct FigTable {
    /// Schema version (bump when the canonical columns change meaning).
    pub schema: u32,
    /// Which figure this is (`"fig12"`, `"table1"`, ...).
    pub figure: String,
    /// Free-form description of what produced the table (deterministic:
    /// no timestamps, so golden tests can pin whole files).
    pub produced_by: String,
    /// Data rows in presentation order.
    pub rows: Vec<FigRow>,
}

impl FigTable {
    /// New empty table for `figure`.
    pub fn new(figure: &str, produced_by: String) -> FigTable {
        FigTable { schema: 1, figure: figure.to_string(), produced_by, rows: Vec::new() }
    }

    /// The `FIG_12.json`-style file name for this table.
    pub fn file_name(&self) -> String {
        let f = &self.figure;
        let upper = match f.strip_prefix("fig") {
            Some(n) => format!("FIG_{n}"),
            None => match f.strip_prefix("table") {
                Some(n) => format!("TABLE_{n}"),
                None => f.to_ascii_uppercase(),
            },
        };
        format!("{upper}.json")
    }
}

/// Canonical number formatting for [`Field::Num`]: integers print bare,
/// everything else with six decimals, trailing zeros trimmed. The format
/// is deterministic (golden tests pin it) and survives the parse rule
/// (`f64` round-trip at six decimals is what the comparisons need).
pub fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{n:.0}")
    } else {
        let s = format!("{n:.6}");
        let s = s.trim_end_matches('0');
        let s = s.strip_suffix('.').unwrap_or(s);
        s.to_string()
    }
}

/// Serialize a figure table as pretty-printed JSON.
pub fn render_table(t: &FigTable) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", t.schema);
    let _ = writeln!(out, "  \"figure\": \"{}\",", escape(&t.figure));
    let _ = writeln!(out, "  \"produced_by\": \"{}\",", escape(&t.produced_by));
    out.push_str("  \"rows\": [\n");
    for (i, row) in t.rows.iter().enumerate() {
        out.push_str("    {");
        for (j, (k, v)) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            match v {
                Field::Text(s) => {
                    let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(s));
                }
                Field::Num(n) => {
                    let _ = write!(out, "\"{}\": {}", escape(k), fmt_num(*n));
                }
            }
        }
        out.push_str(if i + 1 < t.rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a figure table produced by [`render_table`]. Cells that parse
/// as `f64` come back numeric, the rest as text (see [`Field`]).
///
/// The top-level object is recognized by carrying both `figure` and
/// `schema`; the `schema`/`produced_by` column names are therefore
/// reserved and must not appear in data rows (a row column named
/// `figure` alone is fine — `COMPARE.json` uses one).
pub fn parse_table(json: &str) -> Result<FigTable, String> {
    let objects = flat_objects(json)?;
    let mut table = FigTable::new("", String::new());
    let mut saw_header = false;
    let mut rows = Vec::new();
    for obj in objects {
        if obj.contains_key("figure") && obj.contains_key("schema") {
            // The top-level object (it closes last, but order among rows
            // is preserved either way).
            saw_header = true;
            table.figure = obj.get("figure").cloned().unwrap_or_default();
            table.produced_by = obj.get("produced_by").cloned().unwrap_or_default();
            if let Some(s) = obj.get("schema") {
                table.schema = s.parse().map_err(|e| format!("bad schema: {e}"))?;
            }
        } else {
            let row: FigRow = obj
                .into_iter()
                .map(|(k, v)| {
                    let field = match v.parse::<f64>() {
                        Ok(n) if n.is_finite() => Field::Num(n),
                        _ => Field::Text(v),
                    };
                    (k, field)
                })
                .collect();
            rows.push(row);
        }
    }
    if !saw_header {
        return Err("not a figure table: no top-level \"schema\"/\"produced_by\" header".into());
    }
    table.rows = rows;
    Ok(table)
}

/// Measurements for one scenario of a perf-smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (`w4_80_100h`); the key baselines are matched on.
    pub name: String,
    /// Hosts in the fabric.
    pub hosts: u64,
    /// Messages injected.
    pub messages: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Simulator events processed — deterministic for a given seed, so a
    /// mismatch against the baseline means the simulation itself changed.
    pub events: u64,
    /// Simulated duration of the run, nanoseconds.
    pub sim_ns: u64,
    /// Wall-clock of the run, milliseconds.
    pub wall_ms: f64,
    /// Events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Peak resident set (VmHWM) observed for the run, in KiB; 0 when
    /// RSS sampling was off or unavailable (non-Linux), and absent from
    /// reports written before the column existed — the parser defaults
    /// those to 0, and the gate skips the RSS comparison when either
    /// side is 0.
    pub peak_rss_kb: u64,
    /// Parallel-engine scaling efficiency: this scenario's events/sec
    /// divided by the `Hierarchical` engine's events/sec on the same
    /// scenario in the same run. 0 when the run did not measure a
    /// hierarchical reference (plain single-engine runs), and absent
    /// from reports written before the column existed — the parser
    /// defaults those to 0, and the gate compares efficiency only when
    /// both sides carry a nonzero value.
    pub scaling_efficiency: f64,
}

/// A whole perf-smoke report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version (bump when fields change incompatibly).
    pub schema: u32,
    /// Free-form description of what produced the report.
    pub produced_by: String,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioReport>,
}

/// Serialize a report as pretty-printed JSON.
pub fn render_report(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", r.schema);
    let _ = writeln!(out, "  \"produced_by\": \"{}\",", escape(&r.produced_by));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in r.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
        let _ = writeln!(out, "      \"hosts\": {},", s.hosts);
        let _ = writeln!(out, "      \"messages\": {},", s.messages);
        let _ = writeln!(out, "      \"delivered\": {},", s.delivered);
        let _ = writeln!(out, "      \"events\": {},", s.events);
        let _ = writeln!(out, "      \"sim_ns\": {},", s.sim_ns);
        let _ = writeln!(out, "      \"wall_ms\": {:.3},", s.wall_ms);
        let _ = writeln!(out, "      \"events_per_sec\": {:.1},", s.events_per_sec);
        let _ = writeln!(out, "      \"peak_rss_kb\": {},", s.peak_rss_kb);
        let _ = writeln!(out, "      \"scaling_efficiency\": {:.3}", s.scaling_efficiency);
        out.push_str(if i + 1 < r.scenarios.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse a report produced by [`render_report`]. Returns a readable error
/// for anything malformed.
pub fn parse_report(json: &str) -> Result<Report, String> {
    let objects = flat_objects(json)?;
    let mut schema = 0u32;
    let mut produced_by = String::new();
    let mut scenarios = Vec::new();
    for obj in objects {
        if let Some(name) = obj.get("name") {
            let get = |k: &str| -> Result<f64, String> {
                obj.get(k)
                    .ok_or_else(|| format!("scenario {name}: missing field {k:?}"))?
                    .parse::<f64>()
                    .map_err(|e| format!("scenario {name}: bad {k:?}: {e}"))
            };
            scenarios.push(ScenarioReport {
                name: name.clone(),
                hosts: get("hosts")? as u64,
                messages: get("messages")? as u64,
                delivered: get("delivered")? as u64,
                events: get("events")? as u64,
                sim_ns: get("sim_ns")? as u64,
                wall_ms: get("wall_ms")?,
                events_per_sec: get("events_per_sec")?,
                // Optional: pre-RSS-era reports lack the column.
                peak_rss_kb: obj
                    .get("peak_rss_kb")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0),
                // Optional: pre-scaling-era reports lack the column.
                scaling_efficiency: obj
                    .get("scaling_efficiency")
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(0.0),
            });
        } else {
            // The top-level object (fields outside any scenario).
            if let Some(s) = obj.get("schema") {
                schema = s.parse().map_err(|e| format!("bad schema: {e}"))?;
            }
            if let Some(p) = obj.get("produced_by") {
                produced_by = p.clone();
            }
        }
    }
    if scenarios.is_empty() {
        return Err("no scenarios found".into());
    }
    Ok(Report { schema, produced_by, scenarios })
}

/// Split a JSON document into flat key→value maps: one for each
/// `{...}` nesting level encountered. Strings lose their quotes; numbers
/// stay textual. Arrays only serve as grouping.
fn flat_objects(json: &str) -> Result<Vec<BTreeMap<String, String>>, String> {
    let mut stack: Vec<BTreeMap<String, String>> = Vec::new();
    let mut done: Vec<BTreeMap<String, String>> = Vec::new();
    let mut key: Option<String> = None;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                // A container discharges any pending key ("scenarios": [...]).
                key = None;
                stack.push(BTreeMap::new());
            }
            '[' => key = None,
            '}' => {
                let obj = stack.pop().ok_or("unbalanced '}'")?;
                done.push(obj);
                key = None;
            }
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some(e) => s.push(e),
                            None => return Err("dangling escape".into()),
                        },
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string".into()),
                    }
                }
                let top = stack.last_mut().ok_or("value outside object")?;
                match key.take() {
                    None => key = Some(s),
                    Some(k) => {
                        top.insert(k, s);
                    }
                }
            }
            ':' | ',' | ']' => {}
            c if c.is_whitespace() => {}
            c => {
                // A bare token: number, true/false/null.
                let mut tok = String::new();
                tok.push(c);
                while let Some(&n) = chars.peek() {
                    if n == ',' || n == '}' || n == ']' || n.is_whitespace() {
                        break;
                    }
                    tok.push(n);
                    chars.next();
                }
                let top = stack.last_mut().ok_or("value outside object")?;
                let k = key.take().ok_or_else(|| format!("bare value {tok:?} without key"))?;
                top.insert(k, tok);
            }
        }
    }
    if !stack.is_empty() {
        return Err("unbalanced '{'".into());
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            schema: 1,
            produced_by: "perf-smoke test".into(),
            scenarios: vec![
                ScenarioReport {
                    name: "w4_80_40h".into(),
                    hosts: 40,
                    messages: 2000,
                    delivered: 2000,
                    events: 123_456,
                    sim_ns: 7_000_000,
                    wall_ms: 321.5,
                    events_per_sec: 383_999.9,
                    peak_rss_kb: 51_200,
                    scaling_efficiency: 0.875,
                },
                ScenarioReport {
                    name: "w4_80_100h".into(),
                    hosts: 100,
                    messages: 4000,
                    delivered: 3999,
                    events: 999_999,
                    sim_ns: 9_000_000,
                    wall_ms: 1000.0,
                    events_per_sec: 999_999.0,
                    peak_rss_kb: 0,
                    scaling_efficiency: 0.0,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let r = sample();
        let json = render_report(&r);
        let back = parse_report(&json).unwrap();
        assert_eq!(back.schema, 1);
        assert_eq!(back.produced_by, "perf-smoke test");
        assert_eq!(back.scenarios.len(), 2);
        assert_eq!(back.scenarios[0], r.scenarios[0]);
        assert_eq!(back.scenarios[1].delivered, 3999);
        assert!((back.scenarios[1].wall_ms - 1000.0).abs() < 1e-9);
        assert_eq!(back.scenarios[0].peak_rss_kb, 51_200);
        assert_eq!(back.scenarios[1].peak_rss_kb, 0);
        assert!((back.scenarios[0].scaling_efficiency - 0.875).abs() < 1e-9);
        assert_eq!(back.scenarios[1].scaling_efficiency, 0.0);
    }

    #[test]
    fn parse_tolerates_whitespace_and_ordering() {
        let json = r#"{"schema":1,"produced_by":"x","scenarios":[
            {"events":10,"name":"a","hosts":2,"messages":1,"delivered":1,
             "sim_ns":5,"events_per_sec":2.0,"wall_ms":5.0}]}"#;
        let r = parse_report(json).unwrap();
        assert_eq!(r.scenarios[0].name, "a");
        assert_eq!(r.scenarios[0].events, 10);
        // The sample predates the RSS and scaling columns: it must
        // parse, defaulting both to 0 (which disables those gates).
        assert_eq!(r.scenarios[0].peak_rss_kb, 0);
        assert_eq!(r.scenarios[0].scaling_efficiency, 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_report("{").is_err());
        assert!(parse_report("{}").is_err());
        assert!(parse_report(r#"{"scenarios":[{"name":"a"}]}"#).is_err());
    }

    fn fig_sample() -> FigTable {
        let mut t = FigTable::new("fig12", "repro fig12, seed 42".into());
        let mut row = FigRow::new();
        row.insert("workload".into(), Field::Text("W4".into()));
        row.insert("protocol".into(), Field::Text("Homa".into()));
        row.insert("load".into(), Field::Num(0.8));
        row.insert("metric".into(), Field::Text("p99_slowdown".into()));
        row.insert("x".into(), Field::Num(10.0));
        row.insert("value".into(), Field::Num(2.25));
        t.rows.push(row);
        let mut row = FigRow::new();
        row.insert("workload".into(), Field::Text("W4".into()));
        row.insert("count".into(), Field::Num(300.0));
        t.rows.push(row);
        t
    }

    #[test]
    fn fig_table_round_trips() {
        let t = fig_sample();
        let json = render_table(&t);
        let back = parse_table(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn fig_table_file_names() {
        assert_eq!(FigTable::new("fig12", String::new()).file_name(), "FIG_12.json");
        assert_eq!(FigTable::new("table1", String::new()).file_name(), "TABLE_1.json");
        assert_eq!(FigTable::new("compare", String::new()).file_name(), "COMPARE.json");
    }

    #[test]
    fn rows_with_a_figure_column_are_not_mistaken_for_the_header() {
        // COMPARE.json rows carry a "figure" column; they must parse as
        // rows, not clobber the table header.
        let mut t = FigTable::new("compare", "repro compare, seed 42".into());
        for fig in ["fig12", "fig15"] {
            let mut row = FigRow::new();
            row.insert("figure".into(), Field::Text(fig.into()));
            row.insert("reference".into(), Field::Num(2.2));
            row.insert("value".into(), Field::Num(1.7));
            t.rows.push(row);
        }
        let back = parse_table(&render_table(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.figure, "compare");
        assert_eq!(back.rows.len(), 2);
    }

    #[test]
    fn fig_table_rejects_non_tables() {
        assert!(parse_table(r#"{"rows":[{"x":1}]}"#).is_err());
        assert!(parse_table("{").is_err());
        // A perf-smoke report is not a figure table.
        assert!(parse_table(&render_report(&sample())).is_err());
    }

    #[test]
    fn num_formatting_is_canonical() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-2.0), "-2");
        assert_eq!(fmt_num(0.8), "0.8");
        assert_eq!(fmt_num(2.25), "2.25");
        assert_eq!(fmt_num(1.0 / 3.0), "0.333333");
        assert_eq!(fmt_num(0.0), "0");
    }
}
