//! Minimal JSON writer/reader for the `perf-smoke` report format.
//!
//! The workspace builds offline (the `serde` dependency is a no-op shim),
//! so the perf gate carries its own serializer for the one schema it
//! needs: a flat object per scenario inside a `"scenarios"` array. The
//! parser accepts exactly what [`render_report`] emits (plus whitespace
//! variations) — it is a reader for our own files, not a general JSON
//! parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Measurements for one scenario of a perf-smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (`w4_80_100h`); the key baselines are matched on.
    pub name: String,
    /// Hosts in the fabric.
    pub hosts: u64,
    /// Messages injected.
    pub messages: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Simulator events processed — deterministic for a given seed, so a
    /// mismatch against the baseline means the simulation itself changed.
    pub events: u64,
    /// Simulated duration of the run, nanoseconds.
    pub sim_ns: u64,
    /// Wall-clock of the run, milliseconds.
    pub wall_ms: f64,
    /// Events processed per wall-clock second.
    pub events_per_sec: f64,
}

/// A whole perf-smoke report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version (bump when fields change incompatibly).
    pub schema: u32,
    /// Free-form description of what produced the report.
    pub produced_by: String,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioReport>,
}

/// Serialize a report as pretty-printed JSON.
pub fn render_report(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", r.schema);
    let _ = writeln!(out, "  \"produced_by\": \"{}\",", escape(&r.produced_by));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in r.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", escape(&s.name));
        let _ = writeln!(out, "      \"hosts\": {},", s.hosts);
        let _ = writeln!(out, "      \"messages\": {},", s.messages);
        let _ = writeln!(out, "      \"delivered\": {},", s.delivered);
        let _ = writeln!(out, "      \"events\": {},", s.events);
        let _ = writeln!(out, "      \"sim_ns\": {},", s.sim_ns);
        let _ = writeln!(out, "      \"wall_ms\": {:.3},", s.wall_ms);
        let _ = writeln!(out, "      \"events_per_sec\": {:.1}", s.events_per_sec);
        out.push_str(if i + 1 < r.scenarios.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parse a report produced by [`render_report`]. Returns a readable error
/// for anything malformed.
pub fn parse_report(json: &str) -> Result<Report, String> {
    let objects = flat_objects(json)?;
    let mut schema = 0u32;
    let mut produced_by = String::new();
    let mut scenarios = Vec::new();
    for obj in objects {
        if let Some(name) = obj.get("name") {
            let get = |k: &str| -> Result<f64, String> {
                obj.get(k)
                    .ok_or_else(|| format!("scenario {name}: missing field {k:?}"))?
                    .parse::<f64>()
                    .map_err(|e| format!("scenario {name}: bad {k:?}: {e}"))
            };
            scenarios.push(ScenarioReport {
                name: name.clone(),
                hosts: get("hosts")? as u64,
                messages: get("messages")? as u64,
                delivered: get("delivered")? as u64,
                events: get("events")? as u64,
                sim_ns: get("sim_ns")? as u64,
                wall_ms: get("wall_ms")?,
                events_per_sec: get("events_per_sec")?,
            });
        } else {
            // The top-level object (fields outside any scenario).
            if let Some(s) = obj.get("schema") {
                schema = s.parse().map_err(|e| format!("bad schema: {e}"))?;
            }
            if let Some(p) = obj.get("produced_by") {
                produced_by = p.clone();
            }
        }
    }
    if scenarios.is_empty() {
        return Err("no scenarios found".into());
    }
    Ok(Report { schema, produced_by, scenarios })
}

/// Split a JSON document into flat key→value maps: one for each
/// `{...}` nesting level encountered. Strings lose their quotes; numbers
/// stay textual. Arrays only serve as grouping.
fn flat_objects(json: &str) -> Result<Vec<BTreeMap<String, String>>, String> {
    let mut stack: Vec<BTreeMap<String, String>> = Vec::new();
    let mut done: Vec<BTreeMap<String, String>> = Vec::new();
    let mut key: Option<String> = None;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                // A container discharges any pending key ("scenarios": [...]).
                key = None;
                stack.push(BTreeMap::new());
            }
            '[' => key = None,
            '}' => {
                let obj = stack.pop().ok_or("unbalanced '}'")?;
                done.push(obj);
                key = None;
            }
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some(e) => s.push(e),
                            None => return Err("dangling escape".into()),
                        },
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err("unterminated string".into()),
                    }
                }
                let top = stack.last_mut().ok_or("value outside object")?;
                match key.take() {
                    None => key = Some(s),
                    Some(k) => {
                        top.insert(k, s);
                    }
                }
            }
            ':' | ',' | ']' => {}
            c if c.is_whitespace() => {}
            c => {
                // A bare token: number, true/false/null.
                let mut tok = String::new();
                tok.push(c);
                while let Some(&n) = chars.peek() {
                    if n == ',' || n == '}' || n == ']' || n.is_whitespace() {
                        break;
                    }
                    tok.push(n);
                    chars.next();
                }
                let top = stack.last_mut().ok_or("value outside object")?;
                let k = key.take().ok_or_else(|| format!("bare value {tok:?} without key"))?;
                top.insert(k, tok);
            }
        }
    }
    if !stack.is_empty() {
        return Err("unbalanced '{'".into());
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            schema: 1,
            produced_by: "perf-smoke test".into(),
            scenarios: vec![
                ScenarioReport {
                    name: "w4_80_40h".into(),
                    hosts: 40,
                    messages: 2000,
                    delivered: 2000,
                    events: 123_456,
                    sim_ns: 7_000_000,
                    wall_ms: 321.5,
                    events_per_sec: 383_999.9,
                },
                ScenarioReport {
                    name: "w4_80_100h".into(),
                    hosts: 100,
                    messages: 4000,
                    delivered: 3999,
                    events: 999_999,
                    sim_ns: 9_000_000,
                    wall_ms: 1000.0,
                    events_per_sec: 999_999.0,
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let r = sample();
        let json = render_report(&r);
        let back = parse_report(&json).unwrap();
        assert_eq!(back.schema, 1);
        assert_eq!(back.produced_by, "perf-smoke test");
        assert_eq!(back.scenarios.len(), 2);
        assert_eq!(back.scenarios[0], r.scenarios[0]);
        assert_eq!(back.scenarios[1].delivered, 3999);
        assert!((back.scenarios[1].wall_ms - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn parse_tolerates_whitespace_and_ordering() {
        let json = r#"{"schema":1,"produced_by":"x","scenarios":[
            {"events":10,"name":"a","hosts":2,"messages":1,"delivered":1,
             "sim_ns":5,"events_per_sec":2.0,"wall_ms":5.0}]}"#;
        let r = parse_report(json).unwrap();
        assert_eq!(r.scenarios[0].name, "a");
        assert_eq!(r.scenarios[0].events, 10);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_report("{").is_err());
        assert!(parse_report("{}").is_err());
        assert!(parse_report(r#"{"scenarios":[{"name":"a"}]}"#).is_err());
    }
}
