//! `repro` — regenerate every table and figure of the Homa paper.
//!
//! One subcommand per experiment; see `repro help`. By default the
//! experiments run at a reduced scale (fewer hosts/messages) so a full
//! sweep finishes in minutes; pass `--full` for paper-scale runs (144
//! hosts, 8x the messages).
//!
//! ```text
//! repro fig12 --workloads W2,W4 --loads 0.8
//! repro table1
//! repro all
//! ```

use homa::HomaConfig;
use homa_baselines::homa_sim::static_map_for_workload;
use homa_baselines::HomaSimTransport;
use homa_bench::{run_protocol_oneway, run_protocol_rpc, Protocol};
use homa_harness::capacity::max_sustainable_load;
use homa_harness::driver::{run_incast, OnewayOpts, RpcOpts};
use homa_harness::render::{fmt_bps, fmt_bytes, slowdown_table};
use homa_harness::slowdown::SlowdownSummary;
use homa_sim::{NetworkConfig, PortClass, SimDuration, Topology};
use homa_workloads::Workload;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Opts {
    full: bool,
    workloads: Vec<Workload>,
    loads: Vec<f64>,
    seed: u64,
    msgs_scale: f64,
    bins: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            full: false,
            workloads: vec![Workload::W2, Workload::W4],
            loads: vec![0.8],
            seed: 1,
            msgs_scale: 1.0,
            bins: 10,
        }
    }
}

impl Opts {
    /// Simulation fabric: scaled-down by default, Figure 11's 144 hosts
    /// with `--full`.
    fn fabric(&self) -> Topology {
        if self.full {
            Topology::paper_fabric()
        } else {
            Topology::scaled_fabric(3, 8, 2)
        }
    }

    /// Message budget per workload, chosen so event counts (~bytes) are
    /// comparable across workloads.
    fn msgs_for(&self, w: Workload) -> u64 {
        let base = match w {
            Workload::W1 => 40_000,
            Workload::W2 => 25_000,
            Workload::W3 => 12_000,
            Workload::W4 => 3_000,
            Workload::W5 => 500,
        };
        let full_mult = if self.full { 8 } else { 1 };
        ((base * full_mult) as f64 * self.msgs_scale) as u64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        help();
        return;
    }
    let cmd = args[0].clone();
    let mut opts = Opts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes a u64");
            }
            "--scale" => {
                i += 1;
                opts.msgs_scale = args[i].parse().expect("--scale takes a float");
            }
            "--bins" => {
                i += 1;
                opts.bins = args[i].parse().expect("--bins takes a usize");
            }
            "--workloads" => {
                i += 1;
                opts.workloads = args[i]
                    .split(',')
                    .map(|s| Workload::parse(s).unwrap_or_else(|| panic!("bad workload {s}")))
                    .collect();
            }
            "--loads" => {
                i += 1;
                opts.loads =
                    args[i].split(',').map(|s| s.parse().expect("--loads takes floats")).collect();
            }
            other => panic!("unknown option {other}"),
        }
        i += 1;
    }

    match cmd.as_str() {
        "fig1" => fig1(),
        "fig4" => fig4(),
        "fig8" => fig8_9(&opts, 99.0),
        "fig9" => fig8_9(&opts, 50.0),
        "fig10" => fig10(&opts),
        "fig12" => fig12_13(&opts, 99.0),
        "fig13" => fig12_13(&opts, 50.0),
        "fig14" => fig14(&opts),
        "fig15" => fig15(&opts),
        "fig16" => fig16(&opts),
        "fig17" => fig17(&opts),
        "fig18" => fig18(&opts),
        "fig19" => fig19(&opts),
        "fig20" => fig20(&opts),
        "fig21" => fig21(&opts),
        "table1" => table1(&opts),
        "all" => {
            fig1();
            fig4();
            fig8_9(&opts, 99.0);
            fig10(&opts);
            fig12_13(&opts, 99.0);
            fig14(&opts);
            fig15(&opts);
            fig16(&opts);
            fig17(&opts);
            fig18(&opts);
            fig19(&opts);
            fig20(&opts);
            fig21(&opts);
            table1(&opts);
        }
        "help" | "--help" | "-h" => help(),
        other => {
            eprintln!("unknown experiment '{other}'");
            help();
            std::process::exit(1);
        }
    }
}

fn help() {
    println!(
        "repro — regenerate the figures/tables of the Homa paper (SIGCOMM 2018)\n\
         usage: repro <experiment> [options]\n\
         experiments: fig1 fig4 fig8 fig9 fig10 fig12 fig13 fig14 fig15 fig16\n\
         \x20            fig17 fig18 fig19 fig20 fig21 table1 all\n\
         options: --full            paper-scale topology and message counts\n\
         \x20        --workloads LIST  e.g. W1,W3,W5 (default W2,W4)\n\
         \x20        --loads LIST      e.g. 0.5,0.8 (default 0.8)\n\
         \x20        --scale F         multiply message budgets by F\n\
         \x20        --seed N          RNG seed (default 1)\n\
         \x20        --bins N          size bins in slowdown tables (default 10)"
    );
}

/// Figure 1: the workload CDFs (message- and byte-weighted).
fn fig1() {
    println!("=== Figure 1: workload message-size CDFs ===");
    for w in Workload::ALL {
        let d = w.dist();
        println!("\n{w} ({}) — mean {:.0} B", w.description(), d.mean());
        println!("{:>6} {:>12} {:>14} {:>14}", "pct", "size", "CDF(msgs)", "CDF(bytes)");
        for p in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let size = d.quantile(p);
            println!(
                "{:>5.0}% {:>12} {:>13.1}% {:>13.1}%",
                p * 100.0,
                size,
                d.cdf(size) * 100.0,
                d.byte_weighted_cdf(size) * 100.0
            );
        }
    }
}

/// Figure 4: unscheduled priority allocation per workload.
fn fig4() {
    println!("\n=== Figure 4: unscheduled priority allocation (8 levels) ===");
    let cfg = HomaConfig::default();
    for w in Workload::ALL {
        let map = static_map_for_workload(&w.dist(), &cfg);
        let d = w.dist();
        let unsched_frac = d.mean_capped(cfg.rtt_bytes) / d.mean();
        print!(
            "{w}: unscheduled bytes {:>4.1}% -> {} unscheduled + {} scheduled levels; cutoffs: ",
            unsched_frac * 100.0,
            map.unsched_levels,
            map.sched_levels()
        );
        if map.cutoffs.is_empty() {
            println!("(single unscheduled level)");
        } else {
            let mut prev = 1u64;
            let top = map.num_priorities - 1;
            for (i, &c) in map.cutoffs.iter().enumerate() {
                print!("P{}:{}..{}B ", top - i as u8, prev, c);
                prev = c + 1;
            }
            println!("P{}:{}B+", top - map.cutoffs.len() as u8, prev);
        }
    }
}

/// Figures 8/9: implementation echo-RPC slowdown (p99 / p50).
fn fig8_9(opts: &Opts, pct: f64) {
    let which = if pct > 90.0 { "Figure 8 (p99)" } else { "Figure 9 (p50)" };
    println!("\n=== {which}: echo RPC slowdown, 16-node cluster, 80% load ===");
    let topo = Topology::single_switch(16);
    let workloads = if opts.workloads == Opts::default().workloads {
        vec![Workload::W3, Workload::W4, Workload::W5]
    } else {
        opts.workloads.clone()
    };
    let protos = [
        Protocol::Homa,
        Protocol::HomaP(4),
        Protocol::HomaP(2),
        Protocol::HomaP(1),
        Protocol::Basic,
    ];
    for w in workloads {
        let dist = w.dist();
        let n = opts.msgs_for(w);
        println!("\n--- workload {w}, {n} RPCs ---");
        for p in protos {
            let res = run_protocol_rpc(p, &topo, &dist, 0.8, n, opts.seed, &RpcOpts::default());
            let s = SlowdownSummary::from_records(&res.records, opts.bins);
            let stat = if pct > 90.0 { s.overall_p99 } else { s.overall_p50 };
            println!(
                "{:<10} completed {}/{} overall {} {:>8.2}",
                p.name(),
                res.completed,
                res.issued,
                if pct > 90.0 { "p99" } else { "p50" },
                stat
            );
            for b in &s.bins {
                println!(
                    "    {:>10}..{:<10} {:>8.2}",
                    b.min_size,
                    b.max_size,
                    if pct > 90.0 { b.p99 } else { b.p50 }
                );
            }
        }
        // The streaming baseline demonstrates head-of-line blocking
        // (one-way messages; the effect the paper's TCP/InfRC rows show).
        let res = run_protocol_oneway(
            Protocol::Stream,
            &topo,
            &dist,
            0.8,
            opts.msgs_for(w),
            opts.seed,
            &OnewayOpts::default(),
            None,
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "{:<10} (one-way) delivered {}/{} overall {} {:>8.2}",
            Protocol::Stream.name(),
            res.delivered,
            res.injected,
            if pct > 90.0 { "p99" } else { "p50" },
            if pct > 90.0 { s.overall_p99 } else { s.overall_p50 }
        );
    }
}

/// Figure 10: incast throughput with/without incast control.
fn fig10(opts: &Opts) {
    println!("\n=== Figure 10: incast (10 KB responses, 15 servers) ===");
    let topo = Topology::single_switch(16);
    let sweep: Vec<u64> = if opts.full {
        vec![16, 64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        vec![16, 64, 128, 256, 512, 1024]
    };
    println!("{:>12} {:>32} {:>32}", "concurrent", "with control", "without control");
    for &n in &sweep {
        let mut row = Vec::new();
        for enabled in [true, false] {
            let cfg = HomaConfig {
                incast_threshold: if enabled { 32 } else { u32::MAX },
                ..HomaConfig::default()
            };
            let netcfg = NetworkConfig { seed: opts.seed, ..NetworkConfig::default() };
            let res = run_incast(
                &topo,
                netcfg,
                |h| HomaSimTransport::new(h, cfg.clone()),
                n,
                10_000,
                3,
                SimDuration::from_millis(500),
            );
            row.push(format!(
                "{} ({} aborted, {} drops)",
                fmt_bps(res.throughput_bps),
                res.aborted,
                res.drops
            ));
        }
        println!("{n:>12} {:>32} {:>32}", row[0], row[1]);
    }
}

/// Figures 12/13: simulation slowdown across protocols.
fn fig12_13(opts: &Opts, pct: f64) {
    let which = if pct > 90.0 { "Figure 12 (p99)" } else { "Figure 13 (p50)" };
    println!("\n=== {which}: one-way slowdown on the leaf-spine fabric ===");
    let topo = opts.fabric();
    println!(
        "fabric: {} hosts ({} racks x {}), {} spines",
        topo.num_hosts(),
        topo.racks,
        topo.hosts_per_rack,
        topo.spines
    );
    for &load in &opts.loads {
        for &w in &opts.workloads {
            let dist = w.dist();
            let n = opts.msgs_for(w);
            println!("\n--- workload {w}, load {:.0}%, {n} messages ---", load * 100.0);
            let mut protos =
                vec![Protocol::Homa, Protocol::Pfabric, Protocol::Phost, Protocol::Pias];
            if w == Workload::W5 {
                protos.push(Protocol::Ndp); // the paper runs NDP on W5 only
            }
            for p in protos {
                // pHost and NDP cannot sustain 80% (Fig 12 caption): cap
                // their load at the paper's observed limits.
                let eff_load = match p {
                    Protocol::Phost => load.min(0.7),
                    Protocol::Ndp => load.min(0.7),
                    _ => load,
                };
                let res = run_protocol_oneway(
                    p,
                    &topo,
                    &dist,
                    eff_load,
                    n,
                    opts.seed,
                    &OnewayOpts::default(),
                    None,
                );
                let s = SlowdownSummary::from_records(&res.records, opts.bins);
                println!(
                    "{:<10} load {:>3.0}% delivered {}/{} small-msg p99 {:>7.2}",
                    p.name(),
                    eff_load * 100.0,
                    res.delivered,
                    res.injected,
                    SlowdownSummary::small_message_p99(&res.records, 0.5),
                );
                print!("{}", slowdown_table(&format!("  {} bins:", p.name()), &s));
            }
        }
    }
}

/// Figure 14: sources of tail delay for short messages.
fn fig14(opts: &Opts) {
    println!("\n=== Figure 14: tail-delay attribution for short messages (80% load) ===");
    let topo = opts.fabric();
    let workloads = if opts.workloads == Opts::default().workloads {
        Workload::ALL.to_vec()
    } else {
        opts.workloads.clone()
    };
    println!("{:>4} {:>16} {:>16} {:>10}", "wl", "queueing(us)", "preempt-lag(us)", "samples");
    for w in workloads {
        let dist = w.dist();
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            0.8,
            opts.msgs_for(w),
            opts.seed,
            &OnewayOpts { track_delay: true, ..OnewayOpts::default() },
            None,
        );
        // Short messages: smallest 20% (W5: single-packet messages).
        let mut recs = res.records.clone();
        recs.sort_by_key(|r| r.size);
        let cut = match w {
            Workload::W5 => recs.iter().filter(|r| r.size <= 1_400).count().max(1),
            _ => (recs.len() / 5).max(1),
        };
        let short = &recs[..cut.min(recs.len())];
        // Near-p99 selection: slowdowns between p97 and p99.9.
        let mut by_slow = short.to_vec();
        by_slow.sort_by(|a, b| a.slowdown().partial_cmp(&b.slowdown()).expect("no NaN"));
        let lo = (by_slow.len() as f64 * 0.97) as usize;
        let hi = ((by_slow.len() as f64 * 0.999) as usize).max(lo + 1).min(by_slow.len());
        let sel = &by_slow[lo..hi];
        let n = sel.len().max(1) as f64;
        let q: f64 = sel.iter().map(|r| r.delay.queueing.as_micros_f64()).sum::<f64>() / n;
        let l: f64 = sel.iter().map(|r| r.delay.preemption_lag.as_micros_f64()).sum::<f64>() / n;
        println!("{:>4} {q:>16.3} {l:>16.3} {:>10}", w.name(), sel.len());
    }
}

/// Figure 15: maximum sustainable network load per protocol.
fn fig15(opts: &Opts) {
    println!("\n=== Figure 15: maximum sustainable load ===");
    let topo = opts.fabric();
    let protos = if opts.full {
        vec![Protocol::Homa, Protocol::Pfabric, Protocol::Phost, Protocol::Pias]
    } else {
        vec![Protocol::Homa, Protocol::Phost]
    };
    println!("{:>4} {:<10} {:>10} {:>14}", "wl", "protocol", "max load", "goodput frac");
    for &w in &opts.workloads {
        let dist = w.dist();
        let n = opts.msgs_for(w) / 2;
        for &p in &protos {
            let netcfg = NetworkConfig { seed: opts.seed, ..NetworkConfig::default() };
            let cap = match p {
                Protocol::Homa => {
                    let cfg = HomaConfig::default();
                    let map = static_map_for_workload(&dist, &cfg);
                    max_sustainable_load(
                        &topo,
                        &netcfg,
                        |h| HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone()),
                        &dist,
                        n,
                        opts.seed,
                        0.5,
                        0.98,
                        0.03,
                    )
                    .0
                }
                _ => {
                    // Generic path: manual bisection over the dispatcher.
                    // A short drain budget makes the criterion meaningful
                    // at reduced message counts: an over-capacity run
                    // cannot catch up within it.
                    let mut lo = 0.3;
                    let mut hi = 0.98;
                    let probe_opts =
                        OnewayOpts { drain: SimDuration::from_millis(20), ..OnewayOpts::default() };
                    let ok = |load: f64| {
                        let res = run_protocol_oneway(
                            p,
                            &topo,
                            &dist,
                            load,
                            n,
                            opts.seed,
                            &probe_opts,
                            None,
                        );
                        res.delivered as f64 / res.injected.max(1) as f64 >= 0.995
                    };
                    if !ok(lo) {
                        0.0
                    } else if ok(hi) {
                        hi
                    } else {
                        while hi - lo > 0.03 {
                            let mid = (lo + hi) / 2.0;
                            if ok(mid) {
                                lo = mid;
                            } else {
                                hi = mid;
                            }
                        }
                        lo
                    }
                }
            };
            // Application-goodput fraction at the capacity point.
            let res = run_protocol_oneway(
                p,
                &topo,
                &dist,
                (cap - 0.02).max(0.1),
                n,
                opts.seed,
                &OnewayOpts::default(),
                None,
            );
            let frac = if res.stats.tor_down_wire_bytes > 0 {
                res.stats.tor_down_goodput_bytes as f64 / res.stats.tor_down_wire_bytes as f64
            } else {
                0.0
            };
            println!(
                "{:>4} {:<10} {:>9.0}% {:>13.0}%",
                w.name(),
                p.name(),
                cap * 100.0,
                cap * frac * 100.0
            );
        }
    }
}

/// Figure 16: wasted bandwidth vs load for different overcommitment.
fn fig16(opts: &Opts) {
    println!("\n=== Figure 16: wasted bandwidth vs load (W4) ===");
    let topo = opts.fabric();
    let dist = Workload::W4.dist();
    let scheds: Vec<u8> = if opts.full { vec![1, 2, 3, 4, 5, 7] } else { vec![1, 3, 7] };
    let loads: Vec<f64> =
        if opts.full { vec![0.5, 0.6, 0.7, 0.8, 0.85, 0.9] } else { vec![0.5, 0.7, 0.85] };
    let n = opts.msgs_for(Workload::W4);
    println!("{:>12} {:>8} {:>16} {:>16}", "sched prios", "load", "wasted bw", "delivered");
    for &s in &scheds {
        for &load in &loads {
            let cfg = HomaConfig {
                num_priorities: s + 1,
                unsched_levels_override: Some(1),
                ..HomaConfig::default()
            };
            let res = run_protocol_oneway(
                Protocol::Homa,
                &topo,
                &dist,
                load,
                n,
                opts.seed,
                &OnewayOpts { sample_wasted: true, ..OnewayOpts::default() },
                Some(cfg),
            );
            println!(
                "{s:>12} {:>7.0}% {:>15.1}% {:>11}/{}",
                load * 100.0,
                res.wasted_fraction * 100.0,
                res.delivered,
                res.injected
            );
        }
    }
}

/// Figure 17: number of unscheduled priority levels (W1).
fn fig17(opts: &Opts) {
    println!("\n=== Figure 17: unscheduled priority levels (W1, 80% load, 1 sched) ===");
    let topo = opts.fabric();
    let dist = Workload::W1.dist();
    let n = opts.msgs_for(Workload::W1);
    for u in [1u8, 2, 3, 7] {
        let cfg = HomaConfig {
            num_priorities: u + 1,
            unsched_levels_override: Some(u),
            ..HomaConfig::default()
        };
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            0.8,
            n,
            opts.seed,
            &OnewayOpts::default(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "unsched={u}: overall p99 {:>7.2}  small-msg p99 {:>7.2}  delivered {}/{}",
            s.overall_p99,
            SlowdownSummary::small_message_p99(&res.records, 0.5),
            res.delivered,
            res.injected
        );
    }
}

/// Figure 18: cutoff point between two unscheduled priorities (W3).
fn fig18(opts: &Opts) {
    println!("\n=== Figure 18: unscheduled cutoff sweep (W3, 80% load, 2 unsched) ===");
    let topo = opts.fabric();
    let dist = Workload::W3.dist();
    let n = opts.msgs_for(Workload::W3);
    // Homa's own equal-bytes choice, for reference.
    let auto = static_map_for_workload(
        &dist,
        &HomaConfig { unsched_levels_override: Some(2), ..HomaConfig::default() },
    );
    println!("Homa's equal-bytes algorithm picks cutoff {:?}", auto.cutoffs);
    for cutoff in [100u64, 400, 1_000, 2_000, 4_000] {
        let cfg = HomaConfig {
            unsched_levels_override: Some(2),
            cutoff_override: Some(vec![cutoff]),
            ..HomaConfig::default()
        };
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            0.8,
            n,
            opts.seed,
            &OnewayOpts::default(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "cutoff={cutoff:>5}B: overall p99 {:>7.2}  small-msg p99 {:>7.2}",
            s.overall_p99,
            SlowdownSummary::small_message_p99(&res.records, 0.5)
        );
    }
}

/// Figure 19: number of scheduled priority levels (W4).
fn fig19(opts: &Opts) {
    println!("\n=== Figure 19: scheduled priority levels (W4, 80% load, 1 unsched) ===");
    let topo = opts.fabric();
    let dist = Workload::W4.dist();
    let n = opts.msgs_for(Workload::W4);
    for s in [4u8, 7] {
        let cfg = HomaConfig {
            num_priorities: s + 1,
            unsched_levels_override: Some(1),
            ..HomaConfig::default()
        };
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            0.8,
            n,
            opts.seed,
            &OnewayOpts::default(),
            Some(cfg),
        );
        let sm = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "sched={s}: overall p99 {:>7.2}  delivered {}/{}",
            sm.overall_p99, res.delivered, res.injected
        );
    }
}

/// Figure 20: unscheduled-bytes limit (W4).
fn fig20(opts: &Opts) {
    println!("\n=== Figure 20: unscheduled byte limit (W4, 80% load) ===");
    let topo = opts.fabric();
    let dist = Workload::W4.dist();
    let n = opts.msgs_for(Workload::W4);
    let rtt = HomaConfig::default().rtt_bytes;
    for (label, limit) in
        [("1B", 1u64), ("500B", 500), ("1000B", 1_000), ("RTTbytes", rtt), ("2xRTTbytes", 2 * rtt)]
    {
        let cfg = HomaConfig { unsched_limit: limit, ..HomaConfig::default() };
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            0.8,
            n,
            opts.seed,
            &OnewayOpts::default(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "unsched_limit={label:>10}: overall p99 {:>7.2}  small-msg p99 {:>7.2}",
            s.overall_p99,
            SlowdownSummary::small_message_p99(&res.records, 0.5)
        );
    }
}

/// Figure 21: traffic per priority level vs load (W3).
fn fig21(opts: &Opts) {
    println!("\n=== Figure 21: priority level usage (W3) ===");
    let topo = opts.fabric();
    let dist = Workload::W3.dist();
    let n = opts.msgs_for(Workload::W3);
    println!(
        "{:>6} {}",
        "load",
        (0..8).map(|i| format!("{:>8}", format!("P{i}"))).collect::<String>()
    );
    for load in [0.5, 0.8, 0.9] {
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &dist,
            load,
            n,
            opts.seed,
            &OnewayOpts::default(),
            None,
        );
        // Fraction of total available uplink bandwidth per priority.
        let capacity_bytes =
            topo.num_hosts() as f64 * topo.host_link_bps as f64 / 8.0 * res.duration.as_secs_f64();
        let row: String = res
            .prio_bytes
            .iter()
            .map(|&b| format!("{:>7.1}%", b as f64 / capacity_bytes * 100.0))
            .collect();
        println!("{:>5.0}% {row}", load * 100.0);
    }
}

/// Table 1: queue lengths at the three fabric levels.
fn table1(opts: &Opts) {
    println!("\n=== Table 1: switch queue lengths at 80% load (mean/max) ===");
    let topo = opts.fabric();
    let workloads = if opts.workloads == Opts::default().workloads {
        Workload::ALL.to_vec()
    } else {
        opts.workloads.clone()
    };
    println!(
        "{:<12} {}",
        "queue",
        workloads.iter().map(|w| format!("{:>20}", w.name())).collect::<String>()
    );
    let mut rows: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for &w in &workloads {
        let res = run_protocol_oneway(
            Protocol::Homa,
            &topo,
            &w.dist(),
            0.8,
            opts.msgs_for(w),
            opts.seed,
            &OnewayOpts::default(),
            None,
        );
        for class in [PortClass::TorUp, PortClass::SpineDown, PortClass::TorDown] {
            let mean = res.stats.mean_queue_bytes(class).unwrap_or(0.0);
            let max = res.stats.max_queue_bytes(class).unwrap_or(0) as f64;
            rows.entry(class.label()).or_default().push(format!(
                "{:>8}/{:>8}",
                fmt_bytes(mean),
                fmt_bytes(max)
            ));
        }
    }
    for (label, cells) in rows {
        println!("{label:<12} {}", cells.iter().map(|c| format!("{c:>20}")).collect::<String>());
    }
}
