//! `repro` — regenerate every table and figure of the Homa paper.
//!
//! One subcommand per experiment; see `repro help`. By default the
//! experiments run at a reduced scale (fewer hosts/messages) so a full
//! sweep finishes in minutes; pass `--full` for paper-scale runs (144
//! hosts, 8x the messages). Every subcommand prints the familiar text
//! table *and* writes machine-readable `FIG_<n>.json` next to it.
//!
//! `repro compare` is the figure-accuracy gate: it re-runs (or loads,
//! with `--from-dir`) Figures 12–16, joins the measured points against
//! the digitized published curves (`homa_harness::figures`), prints
//! per-point delta tables, writes `COMPARE.json`, and exits nonzero when
//! a gated curve drifts past its tolerance.
//!
//! ```text
//! repro fig12 --workloads W2,W4 --loads 0.8
//! repro table1
//! repro all [--compare]
//! repro compare [--from-dir DIR] [--tolerance-scale F]
//! ```

use homa_bench::figdata::{
    self, compare_tables, measured_points, run_compare_set, write_table, CompareOutcome, ReproOpts,
    COMPARE_FIGURES,
};
use homa_bench::perfjson::{parse_table, FigTable};
use homa_bench::{tracecmd, Protocol};
use homa_harness::ScenarioSpec;
use homa_workloads::Workload;
use std::path::{Path, PathBuf};

/// One-line usage error, exit 2 (satellite fix: bad CLI input must not
/// panic deep in the harness).
fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

struct Cli {
    opts: ReproOpts,
    loads_overridden: bool,
    out_dir: PathBuf,
    from_dir: Option<PathBuf>,
    tol_scale: f64,
    compare_after: bool,
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        opts: ReproOpts::default(),
        loads_overridden: false,
        out_dir: PathBuf::from("."),
        from_dir: None,
        tol_scale: 1.0,
        compare_after: false,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--full" => cli.opts.full = true,
            "--compare" => cli.compare_after = true,
            "--seed" => {
                let v = take(args, &mut i, "--seed");
                cli.opts.seed = v.parse().unwrap_or_else(|_| {
                    die(&format!("--seed takes an unsigned integer, got {v:?}"))
                });
            }
            "--scale" => {
                let v = take(args, &mut i, "--scale");
                let s: f64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--scale takes a number, got {v:?}")));
                if s <= 0.0 || !s.is_finite() {
                    die(&format!("--scale must be a positive number, got {v}"));
                }
                cli.opts.msgs_scale = s;
            }
            "--bins" => {
                let v = take(args, &mut i, "--bins");
                let b: usize = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--bins takes an integer, got {v:?}")));
                if b == 0 {
                    die("--bins must be at least 1");
                }
                cli.opts.bins = b;
            }
            "--workloads" => {
                let v = take(args, &mut i, "--workloads");
                cli.opts.workloads = v
                    .split(',')
                    .map(|s| {
                        Workload::parse(s).unwrap_or_else(|| {
                            die(&format!("unknown workload {s:?} (expected W1..W5)"))
                        })
                    })
                    .collect();
                if cli.opts.workloads.is_empty() {
                    die("--workloads needs at least one workload");
                }
            }
            "--loads" => {
                let v = take(args, &mut i, "--loads");
                cli.opts.loads = v
                    .split(',')
                    .map(|s| {
                        let l: f64 = s
                            .parse()
                            .unwrap_or_else(|_| die(&format!("--loads takes numbers, got {s:?}")));
                        if !(l > 0.0 && l <= 1.0) {
                            die(&format!("load {s} out of range: loads are fractions in (0, 1]"));
                        }
                        l
                    })
                    .collect();
                if cli.opts.loads.is_empty() {
                    die("--loads needs at least one load");
                }
                cli.loads_overridden = true;
            }
            "--out-dir" => cli.out_dir = PathBuf::from(take(args, &mut i, "--out-dir")),
            "--from-dir" => cli.from_dir = Some(PathBuf::from(take(args, &mut i, "--from-dir"))),
            "--tolerance-scale" => {
                let v = take(args, &mut i, "--tolerance-scale");
                let t: f64 = v.parse().unwrap_or_else(|_| {
                    die(&format!("--tolerance-scale takes a number, got {v:?}"))
                });
                if t <= 0.0 || !t.is_finite() {
                    die(&format!("--tolerance-scale must be positive, got {v}"));
                }
                cli.tol_scale = t;
            }
            other => die(&format!("unknown option {other:?} (see 'repro help')")),
        }
        i += 1;
    }
    cli
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        help();
        return;
    }
    let cmd = args[0].clone();
    // `trace` takes a raw spec line whose `key=value` fields are not
    // options; it must dispatch before the shared option parser, which
    // would die on them as unknown flags.
    if cmd == "trace" {
        run_trace(&args[1..]);
        return;
    }
    let mut cli = parse_cli(&args[1..]);
    if cli.from_dir.is_some() && cmd != "compare" {
        die("--from-dir only applies to 'repro compare' (it would silently skip the run)");
    }

    // The reference curves are digitized at 50% and 80% load; compare
    // runs sweep both unless the user narrowed them explicitly.
    if (cmd == "compare" || cli.compare_after) && !cli.loads_overridden {
        cli.opts.loads = vec![0.5, 0.8];
    }

    let opts = &cli.opts;
    let tables: Vec<FigTable> = match cmd.as_str() {
        "fig1" => vec![figdata::fig1(opts)],
        "fig4" => vec![figdata::fig4(opts)],
        // fig8/9 and fig12/13 are two summaries of the same runs; asking
        // for either produces (and writes) both rather than re-simulating.
        "fig8" | "fig9" => {
            let (t8, t9) = figdata::fig8_9(opts);
            vec![t8, t9]
        }
        "fig10" => vec![figdata::fig10(opts)],
        "fig12" | "fig13" => {
            let (t12, t13) = figdata::fig12_13(opts);
            vec![t12, t13]
        }
        "fig14" => vec![figdata::fig14(opts)],
        "fig15" => vec![figdata::fig15(opts)],
        "fig16" => vec![figdata::fig16(opts)],
        "fig17" => vec![figdata::fig17(opts)],
        "fig18" => vec![figdata::fig18(opts)],
        "fig19" => vec![figdata::fig19(opts)],
        "fig20" => vec![figdata::fig20(opts)],
        "fig21" => vec![figdata::fig21(opts)],
        "table1" => vec![figdata::table1(opts)],
        "all" => {
            // Built in figure order so the text output reads like the
            // paper; fig8/9 and fig12/13 share their runs.
            let mut tables = vec![figdata::fig1(opts), figdata::fig4(opts)];
            let (t8, t9) = figdata::fig8_9(opts);
            tables.extend([t8, t9, figdata::fig10(opts)]);
            let (t12, t13) = figdata::fig12_13(opts);
            tables.extend([t12, t13]);
            tables.extend([
                figdata::fig14(opts),
                figdata::fig15(opts),
                figdata::fig16(opts),
                figdata::fig17(opts),
                figdata::fig18(opts),
                figdata::fig19(opts),
                figdata::fig20(opts),
                figdata::fig21(opts),
                figdata::table1(opts),
            ]);
            tables
        }
        "compare" => match &cli.from_dir {
            Some(dir) => load_tables(dir),
            None => run_compare_set(opts),
        },
        "help" | "--help" | "-h" => {
            help();
            return;
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            help();
            std::process::exit(2);
        }
    };

    // Every run emits its machine-readable tables (loaded tables are
    // not re-written).
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        die(&format!("cannot create --out-dir {}: {e}", cli.out_dir.display()));
    }
    if cli.from_dir.is_none() {
        for t in &tables {
            match write_table(&cli.out_dir, t) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => die(&format!(
                    "cannot write {} to {}: {e}",
                    t.file_name(),
                    cli.out_dir.display()
                )),
            }
        }
    }

    if cmd == "compare" || cli.compare_after {
        std::process::exit(run_comparison(&cli, &tables));
    }
}

/// `repro trace <spec-line> [--protocol P] [--cap N] [--out-dir DIR]`:
/// replay a scenario with the flight recorder on, write `TRACE.jsonl`,
/// and print the per-priority utilization and message-lifecycle
/// summaries. The spec line is the harness `key=value` grammar, so a
/// line can be pasted verbatim from a fuzzer artifact, EXPERIMENTS.md,
/// or `ScenarioSpec::to_spec_line`.
fn run_trace(args: &[String]) {
    let mut spec_fields: Vec<String> = Vec::new();
    let mut proto = Protocol::Homa;
    let mut cap: usize = 1 << 20;
    let mut out_dir = PathBuf::from(".");
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--protocol" => {
                let v = take(args, &mut i, "--protocol");
                proto =
                    Protocol::parse(&v).unwrap_or_else(|| die(&format!("unknown protocol {v:?}")));
            }
            "--cap" => {
                let v = take(args, &mut i, "--cap");
                cap =
                    v.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                        die(&format!("--cap takes a positive integer, got {v:?}"))
                    });
            }
            "--out-dir" => out_dir = PathBuf::from(take(args, &mut i, "--out-dir")),
            tok if tok.contains('=') => spec_fields.push(tok.to_string()),
            other => die(&format!("unknown option {other:?} (see 'repro help')")),
        }
        i += 1;
    }
    if spec_fields.is_empty() {
        die("trace needs a spec line (key=value fields, e.g. \
             'name=t fabric=mtor:40 wl=W4 load=0.8 msgs=2000 seed=42')");
    }
    let line = spec_fields.join(" ");
    let spec = ScenarioSpec::parse_spec_line(&line).unwrap_or_else(|e| die(&e));
    let tr = tracecmd::trace_run(proto, &spec, cap);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        die(&format!("cannot create --out-dir {}: {e}", out_dir.display()));
    }
    let path = out_dir.join("TRACE.jsonl");
    if let Err(e) = std::fs::write(&path, &tr.jsonl) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
    eprintln!("wrote {} ({} records, {} dropped)", path.display(), tr.kept, tr.dropped);
    print!("{}", tr.report);
}

/// Load the comparison figures' tables from a directory of previously
/// written `FIG_<n>.json` files. Every comparison figure must be
/// present — a partial directory (an interrupted earlier run) would
/// otherwise skip gated curves and let the gate pass vacuously.
fn load_tables(dir: &Path) -> Vec<FigTable> {
    COMPARE_FIGURES
        .iter()
        .map(|fig| {
            let path = dir.join(FigTable::new(fig, String::new()).file_name());
            let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                die(&format!(
                    "cannot read {}: {e} (the gate needs every comparison figure; \
                     regenerate with 'repro all' or 'repro compare')",
                    path.display()
                ))
            });
            parse_table(&json)
                .unwrap_or_else(|e| die(&format!("cannot parse {}: {e}", path.display())))
        })
        .collect()
}

/// Join measured tables against the reference curves; print the delta
/// report, write `COMPARE.json`, and return the process exit code.
fn run_comparison(cli: &Cli, tables: &[FigTable]) -> i32 {
    let n_points: usize = tables.iter().map(|t| measured_points(t).len()).sum();
    println!("\n=== repro compare: measured vs published Figures 12-16 ===");
    println!(
        "{} measured points from {} tables, tolerance scale {:.2}",
        n_points,
        tables.len(),
        cli.tol_scale
    );
    let CompareOutcome { report, failures, gated_curves_joined, delta_table } =
        compare_tables(tables, cli.tol_scale, format!("repro compare, seed {}", cli.opts.seed));
    print!("{report}");
    match write_table(&cli.out_dir, &delta_table) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => die(&format!("cannot write COMPARE.json: {e}")),
    }
    match failures {
        Err(e) => {
            eprintln!("FAIL: {e}");
            1
        }
        Ok(fails) if !fails.is_empty() => {
            for f in &fails {
                eprintln!("FAIL: {f}");
            }
            eprintln!(
                "figure accuracy drifted on {} curve(s); if the change is an intentional \
                 fidelity improvement, update homa_harness::figures and EXPERIMENTS.md",
                fails.len()
            );
            1
        }
        Ok(_) if gated_curves_joined == 0 => {
            // A verdict with no gated curve joined is vacuous, not a pass
            // (e.g. the run was narrowed to workloads/loads the reference
            // doesn't cover).
            eprintln!(
                "FAIL: no gated reference curve was covered by this run; \
                 use the default workloads/loads so the gate checks something"
            );
            1
        }
        Ok(_) => {
            println!("OK: all {gated_curves_joined} gated curves joined and within tolerance");
            0
        }
    }
}

fn help() {
    println!(
        "repro — regenerate the figures/tables of the Homa paper (SIGCOMM 2018)\n\
         usage: repro <experiment> [options]\n\
         experiments: fig1 fig4 fig8 fig9 fig10 fig12 fig13 fig14 fig15 fig16\n\
         \x20            fig17 fig18 fig19 fig20 fig21 table1 all compare\n\
         options: --full              paper-scale topology and message counts\n\
         \x20        --workloads LIST    e.g. W1,W3,W5 (default W2,W4)\n\
         \x20        --loads LIST        e.g. 0.5,0.8; fractions in (0,1] (default 0.8)\n\
         \x20        --scale F           multiply message budgets by F\n\
         \x20        --seed N            RNG seed (default 1)\n\
         \x20        --bins N            size bins in slowdown tables (default 10)\n\
         \x20        --out-dir DIR       where FIG_<n>.json files go (default .)\n\
         every subcommand writes machine-readable FIG_<n>.json alongside the text\n\
         \n\
         repro compare [--from-dir DIR] [--tolerance-scale F]\n\
         \x20   re-run (or load from DIR) Figures 12-16, diff against the digitized\n\
         \x20   published curves, write COMPARE.json, exit 1 on gated drift\n\
         repro all --compare\n\
         \x20   regenerate everything, then run the comparison on the fresh tables\n\
         repro trace <spec-line> [--protocol P] [--cap N] [--out-dir DIR]\n\
         \x20   replay a scenario spec line with the flight recorder on; writes\n\
         \x20   TRACE.jsonl and prints per-priority utilization and message\n\
         \x20   lifecycle summaries (spec grammar: see homa-harness spec_line)"
    );
}
