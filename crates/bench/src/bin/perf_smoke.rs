//! `perf-smoke` — the CI performance-regression gate.
//!
//! Runs a fixed set of deterministic scenarios (fixed seed, W4 at 80%
//! load, 40- and 100-host multi-TOR fabrics), measures wall-clock and
//! events/sec, and emits a machine-readable JSON report. CI compares the
//! report against the checked-in `BENCH_BASELINE.json` and fails on a
//! >25% regression — so event-engine speed never silently erodes.
//!
//! ```text
//! perf-smoke [--out PATH] [--engine hier|legacy|parallel] [--threads N]
//!            [--quick] [--rss] [--only SUBSTR] [--profile]
//!            [--scaling] [--min-efficiency FRAC]
//!     run the scenarios, print the JSON report, write it to PATH
//!     (default BENCH_PR.json); `--engine parallel` uses
//!     conservative-window dispatch with N worker threads (default:
//!     HOMA_SIM_THREADS or auto); `--rss` samples per-scenario peak
//!     resident set (VmHWM, Linux) into the report's `peak_rss_kb`
//!     column; `--only` keeps just the scenarios whose name contains
//!     SUBSTR; `--profile` (needs the `engine-profile` build feature)
//!     prints the per-phase drain/run/merge wall split and per-batch
//!     event counts after each scenario; `--scaling` runs the
//!     `Hierarchical` engine first on every scenario and records
//!     parallel-vs-hierarchical events/sec in the report's
//!     `scaling_efficiency` column (requires a parallel engine);
//!     `--min-efficiency` fails the run when any measured efficiency
//!     drops below FRAC — gated only when the thread count fits the
//!     machine's cores, warned-and-skipped otherwise
//!
//! perf-smoke --compare BASELINE CURRENT [--tolerance 0.25]
//!     exit nonzero if CURRENT regressed from BASELINE: wall-clock,
//!     events/sec, peak RSS or scaling efficiency off by more than the
//!     tolerance, or a changed deterministic event count (which means
//!     the simulation itself changed — refresh the baseline
//!     deliberately if intended). The RSS and efficiency checks are
//!     skipped when either report lacks the column.
//! ```
//!
//! To refresh the baseline after an intentional change:
//! `cargo run --release -p homa-bench --bin perf-smoke -- --out BENCH_BASELINE.json`

use homa_bench::perfjson::{parse_report, render_report, Report, ScenarioReport};
use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::{OnewayOpts, OnewayResult};
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::{EngineKind, EngineProfile, FaultPlan, HostId, LinkId};
use homa_workloads::{TrafficSpec, Workload};
use std::time::Instant;

/// Fixed seed for every gate scenario: the runs are deterministic, so
/// the baseline's event counts must reproduce exactly — on every engine,
/// including the parallel dispatcher (events counts are engine-invariant
/// by the determinism contract).
const SEED: u64 = 42;

/// One gate scenario plus the minimum delivered fraction it must reach.
/// The uniform scenarios must complete outright; the incast-under-flaps
/// scenario legitimately loses the few one-way messages whose every
/// packet died on the downed link (fire-and-forget), so its floor is
/// lower — and the exact delivered count is still pinned by the
/// baseline comparison.
struct GateScenario {
    spec: ScenarioSpec,
    min_delivered_frac: f64,
}

fn gate_scenarios(engine: EngineKind, quick: bool) -> Vec<GateScenario> {
    let scale = if quick { 4 } else { 1 };
    vec![
        GateScenario {
            spec: ScenarioSpec::new(
                "w4_80_40h",
                FabricSpec::MultiTor { hosts: 40 },
                Workload::W4,
                0.8,
                1_200 / scale,
                SEED,
            )
            .with_engine(engine),
            min_delivered_frac: 0.99,
        },
        GateScenario {
            spec: ScenarioSpec::new(
                "w4_80_100h",
                FabricSpec::MultiTor { hosts: 100 },
                Workload::W4,
                0.8,
                3_000 / scale,
                SEED,
            )
            .with_engine(engine),
            min_delivered_frac: 0.99,
        },
        // The churn scenario the calendar + parallel work targets: the
        // largest multi-TOR fabric the ROADMAP names (160 hosts, 16
        // racks), same W4 @ 80% shape as the smaller rows.
        GateScenario {
            spec: ScenarioSpec::new(
                "w4_80_160h",
                FabricSpec::MultiTor { hosts: 160 },
                Workload::W4,
                0.8,
                4_800 / scale,
                SEED,
            )
            .with_engine(engine),
            min_delivered_frac: 0.99,
        },
        // Pins the scenario subsystem: a 20-wide incast at 80% of the
        // victim's downlink, with that downlink flapping five times
        // during the burst. Event counts, delivered counts and
        // events/sec all gate on this, so neither the TrafficMatrix
        // stream nor the fault dispatch path can drift silently.
        GateScenario {
            spec: ScenarioSpec::new(
                "incast20_flap_40h",
                FabricSpec::MultiTor { hosts: 40 },
                Workload::W4,
                0.8,
                600 / scale,
                SEED,
            )
            .with_engine(engine)
            .with_traffic(TrafficSpec::incast(20))
            .with_faults(FaultPlan::new().link_flaps(
                LinkId::HostDownlink(HostId(0)),
                5_000_000,
                500_000,
                10_000_000,
                5,
            )),
            min_delivered_frac: 0.90,
        },
        // The memory-lean scale target: 1024 hosts on a k=16 fat tree,
        // same W4 @ 80% shape, with a message budget (~30 msgs/host)
        // that makes retained-per-message state visible in peak RSS.
        // Runs with streaming sketches only (no per-message records), so
        // its `peak_rss_kb` column is the arena/sketch regression gate.
        GateScenario {
            spec: ScenarioSpec::new(
                "w4_80_1kh",
                FabricSpec::FatTree { k: 16 },
                Workload::W4,
                0.8,
                30_720 / scale,
                SEED,
            )
            .with_engine(engine),
            min_delivered_frac: 0.99,
        },
    ]
}

/// Peak resident set (VmHWM) of this process in KiB, from
/// `/proc/self/status`; 0 when unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

/// Reset the VmHWM peak to the current RSS (write `5` to
/// `/proc/self/clear_refs`), so each scenario's peak is its own.
/// Best-effort: on kernels/filesystems that refuse the write, peaks
/// accumulate monotonically across scenarios — still a valid upper
/// bound, just a coarser one.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// How one gate invocation runs: which engine, which scenario subset,
/// and which optional measurements ride along.
struct GateCfg {
    engine: EngineKind,
    quick: bool,
    rss: bool,
    /// Keep only scenarios whose name contains this substring.
    only: Option<String>,
    /// Print the per-phase window profile after each scenario.
    profile: bool,
    /// Run a `Hierarchical` reference per scenario and record
    /// parallel/hierarchical events/sec as `scaling_efficiency`.
    scaling: bool,
}

/// Run one scenario, returning the result, wall seconds and peak RSS.
fn run_once(spec: &ScenarioSpec, rss: bool) -> (OnewayResult, f64, u64) {
    if rss {
        reset_peak_rss();
    }
    let start = Instant::now();
    let res = run_protocol_scenario(Protocol::Homa, spec, &OnewayOpts::default(), None);
    let wall = start.elapsed().as_secs_f64();
    let peak_kb = if rss { peak_rss_kb() } else { 0 };
    (res, wall, peak_kb)
}

/// Pretty-print the per-phase window profile for one run. All zeros
/// (and says so) unless the build carries `homa-sim/engine-profile`
/// and the scenario ran on a window engine.
fn print_profile(p: &EngineProfile) {
    if p.samples == 0 && p.dispatch_ns == 0 && p.epoch_sort_ns == 0 {
        eprintln!("  profile: no samples (sequential engine or engine-profile timers idle)");
        return;
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let tot = (p.drain_ns + p.run_ns + p.merge_ns).max(1);
    let pct = |ns: u64| ns as f64 * 100.0 / tot as f64;
    eprintln!(
        "  profile: {} windows — drain {:.1} ms ({:.0}%), run {:.1} ms ({:.0}%), \
         merge {:.1} ms ({:.0}%); dispatch {:.1} ms, epoch-sort {:.1} ms",
        p.samples,
        ms(p.drain_ns),
        pct(p.drain_ns),
        ms(p.run_ns),
        pct(p.run_ns),
        ms(p.merge_ns),
        pct(p.merge_ns),
        ms(p.dispatch_ns),
        ms(p.epoch_sort_ns),
    );
    if p.batches > 0 {
        eprintln!(
            "  profile: {} batches — {:.1} windows/batch, {:.1} events/batch",
            p.batches,
            p.samples as f64 / p.batches as f64,
            p.batch_events as f64 / p.batches as f64,
        );
    }
}

fn run_gate(cfg: &GateCfg) -> Report {
    let mut scenarios = Vec::new();
    for GateScenario { spec, min_delivered_frac } in gate_scenarios(cfg.engine, cfg.quick) {
        if let Some(f) = &cfg.only {
            if !spec.name.contains(f.as_str()) {
                continue;
            }
        }
        // The hierarchical reference runs first so the scaling column
        // compares against a measurement from the same process and
        // machine state, not a stale baseline file.
        let reference = if cfg.scaling {
            eprintln!("running {} (Hierarchical reference) ...", spec.name);
            let href = spec.clone().with_engine(EngineKind::Hierarchical);
            let (hres, hwall, _) = run_once(&href, false);
            let heps = hres.stats.events_processed as f64 / hwall.max(1e-9);
            eprintln!(
                "  {} reference: {:.0} ms, {} events, {:.0} events/s",
                spec.name,
                hwall * 1e3,
                hres.stats.events_processed,
                heps
            );
            Some((hres.stats.events_processed, heps))
        } else {
            None
        };
        eprintln!("running {} ({:?} engine) ...", spec.name, spec.engine);
        let (res, wall, peak_kb) = run_once(&spec, cfg.rss);
        let events = res.stats.events_processed;
        let wall_ms = wall * 1e3;
        let eps = events as f64 / wall.max(1e-9);
        assert!(
            res.delivered as f64 >= res.injected as f64 * min_delivered_frac,
            "{}: only {}/{} delivered — scenario miscalibrated",
            spec.name,
            res.delivered,
            res.injected
        );
        let scaling_efficiency = match reference {
            Some((href_events, heps)) => {
                assert_eq!(
                    events, href_events,
                    "{}: parallel event count diverged from the hierarchical \
                     reference — the engines are no longer bit-identical",
                    spec.name
                );
                eps / heps.max(1e-9)
            }
            None => 0.0,
        };
        scenarios.push(ScenarioReport {
            name: spec.name.clone(),
            hosts: spec.fabric.hosts() as u64,
            messages: res.injected,
            delivered: res.delivered,
            events,
            sim_ns: res.duration.as_nanos(),
            wall_ms,
            events_per_sec: eps,
            peak_rss_kb: peak_kb,
            scaling_efficiency,
        });
        eprintln!(
            "  {}: {:.0} ms, {} events, {:.0} events/s{}{}",
            spec.name,
            wall_ms,
            events,
            eps,
            if peak_kb > 0 { format!(", peak RSS {peak_kb} KiB") } else { String::new() },
            if scaling_efficiency > 0.0 {
                format!(", efficiency {scaling_efficiency:.2}")
            } else {
                String::new()
            }
        );
        if cfg.profile {
            print_profile(&res.engine_profile);
        }
    }
    if scenarios.is_empty() {
        eprintln!("perf-smoke: --only {:?} matched no scenario", cfg.only.as_deref().unwrap_or(""));
        std::process::exit(2);
    }
    Report {
        schema: 1,
        produced_by: format!(
            "perf-smoke (homa-bench), seed {SEED}, engine {:?}{}",
            cfg.engine,
            if cfg.quick { ", quick" } else { "" }
        ),
        scenarios,
    }
}

/// Compare `cur` against `base`; returns human-readable failures.
fn regressions(base: &Report, cur: &Report, tolerance: f64) -> Vec<String> {
    let mut fails = Vec::new();
    for b in &base.scenarios {
        let Some(c) = cur.scenarios.iter().find(|s| s.name == b.name) else {
            fails.push(format!("{}: missing from current report", b.name));
            continue;
        };
        if c.messages != b.messages {
            // Different injection budgets are a comparison mistake (e.g. a
            // --quick report against the full baseline), not a regression.
            fails.push(format!(
                "{}: scenario shapes differ (messages {} -> {}); are you comparing \
                 a --quick report against a full baseline?",
                b.name, b.messages, c.messages
            ));
            continue;
        }
        if c.events != b.events {
            fails.push(format!(
                "{}: deterministic event count changed ({} -> {}); if the simulation \
                 change is intentional, refresh BENCH_BASELINE.json",
                b.name, b.events, c.events
            ));
        }
        if c.delivered != b.delivered {
            fails.push(format!(
                "{}: delivered count changed ({} -> {})",
                b.name, b.delivered, c.delivered
            ));
        }
        if c.wall_ms > b.wall_ms * (1.0 + tolerance) {
            fails.push(format!(
                "{}: wall-clock regressed {:.1} ms -> {:.1} ms (> {:.0}% tolerance)",
                b.name,
                b.wall_ms,
                c.wall_ms,
                tolerance * 100.0
            ));
        }
        if c.events_per_sec < b.events_per_sec / (1.0 + tolerance) {
            fails.push(format!(
                "{}: events/sec regressed {:.0} -> {:.0} (> {:.0}% tolerance)",
                b.name,
                b.events_per_sec,
                c.events_per_sec,
                tolerance * 100.0
            ));
        }
        // Peak-RSS gate: only when both sides actually sampled it (a 0
        // means --rss was off, the platform lacks VmHWM, or the report
        // predates the column).
        if b.peak_rss_kb > 0
            && c.peak_rss_kb > 0
            && c.peak_rss_kb as f64 > b.peak_rss_kb as f64 * (1.0 + tolerance)
        {
            fails.push(format!(
                "{}: peak RSS regressed {} KiB -> {} KiB (> {:.0}% tolerance)",
                b.name,
                b.peak_rss_kb,
                c.peak_rss_kb,
                tolerance * 100.0
            ));
        }
        // Scaling-efficiency gate: like RSS, only when both sides
        // measured it (0 means the run had no hierarchical reference or
        // the report predates the column).
        if b.scaling_efficiency > 0.0
            && c.scaling_efficiency > 0.0
            && c.scaling_efficiency < b.scaling_efficiency / (1.0 + tolerance)
        {
            fails.push(format!(
                "{}: scaling efficiency regressed {:.2} -> {:.2} (> {:.0}% tolerance)",
                b.name,
                b.scaling_efficiency,
                c.scaling_efficiency,
                tolerance * 100.0
            ));
        }
    }
    fails
}

fn compare(base_path: &str, cur_path: &str, tolerance: f64) -> i32 {
    let load = |p: &str| -> Report {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("perf-smoke: cannot read {p}: {e}");
            std::process::exit(2);
        });
        parse_report(&text).unwrap_or_else(|e| {
            eprintln!("perf-smoke: cannot parse {p}: {e}");
            std::process::exit(2);
        })
    };
    let base = load(base_path);
    let cur = load(cur_path);
    println!("perf-smoke comparison (tolerance {:.0}%):", tolerance * 100.0);
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12} {:>9} {:>9}",
        "scenario",
        "base ms",
        "cur ms",
        "base ev/s",
        "cur ev/s",
        "base rss",
        "cur rss",
        "base eff",
        "cur eff"
    );
    let rss_col = |kb: u64| {
        if kb > 0 {
            format!("{:.1} MiB", kb as f64 / 1024.0)
        } else {
            "-".to_string()
        }
    };
    let eff_col = |e: f64| if e > 0.0 { format!("{e:.2}") } else { "-".to_string() };
    for b in &base.scenarios {
        if let Some(c) = cur.scenarios.iter().find(|s| s.name == b.name) {
            println!(
                "{:<14} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>12} {:>12} {:>9} {:>9}",
                b.name,
                b.wall_ms,
                c.wall_ms,
                b.events_per_sec,
                c.events_per_sec,
                rss_col(b.peak_rss_kb),
                rss_col(c.peak_rss_kb),
                eff_col(b.scaling_efficiency),
                eff_col(c.scaling_efficiency)
            );
        }
    }
    let fails = regressions(&base, &cur, tolerance);
    if fails.is_empty() {
        println!("OK: no regression beyond {:.0}%", tolerance * 100.0);
        0
    } else {
        for f in &fails {
            eprintln!("FAIL: {f}");
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_PR.json");
    let mut engine: Option<EngineKind> = None;
    let mut threads_flag: Option<u32> = None;
    let mut batch_flag: Option<u32> = None;
    let mut quick = false;
    let mut rss = false;
    let mut only: Option<String> = None;
    let mut profile = false;
    let mut scaling = false;
    let mut min_efficiency: Option<f64> = None;
    let mut compare_paths: Option<(String, String)> = None;
    let mut tolerance = std::env::var("PERF_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--engine" => {
                i += 1;
                engine = Some(match args.get(i).map(String::as_str) {
                    Some("hier") | Some("hierarchical") => EngineKind::Hierarchical,
                    Some("legacy") => EngineKind::LegacyHeap,
                    Some("parallel") => EngineKind::parallel_from_env(),
                    _ => usage("--engine takes 'hier', 'legacy' or 'parallel'"),
                });
            }
            "--threads" => {
                i += 1;
                let n: u32 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads takes a count (0 = auto)"));
                threads_flag = Some(n);
            }
            "--batch" => {
                i += 1;
                let n: u32 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--batch takes a window count (0 = auto)"));
                batch_flag = Some(n);
            }
            "--quick" => quick = true,
            "--rss" => rss = true,
            "--only" => {
                i += 1;
                only =
                    Some(args.get(i).cloned().unwrap_or_else(|| usage("--only needs a substring")));
            }
            "--profile" => {
                if !cfg!(feature = "engine-profile") {
                    usage(
                        "--profile needs the profiling timers compiled in: \
                         rebuild with --features engine-profile",
                    );
                }
                profile = true;
            }
            "--scaling" => scaling = true,
            "--min-efficiency" => {
                i += 1;
                min_efficiency = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--min-efficiency takes a fraction, e.g. 0.8")),
                );
            }
            "--compare" => {
                let b = args.get(i + 1).cloned().unwrap_or_else(|| usage("--compare BASE CUR"));
                let c = args.get(i + 2).cloned().unwrap_or_else(|| usage("--compare BASE CUR"));
                compare_paths = Some((b, c));
                i += 2;
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--tolerance takes a fraction, e.g. 0.25"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    // Resolve engine selection: --threads implies the parallel engine
    // (and overrides its env/auto count), but combining it with an
    // explicit non-parallel --engine is a labeling mistake, not a run.
    let engine = match (engine, threads_flag) {
        (None, None) => EngineKind::Hierarchical,
        (None, Some(n)) => EngineKind::ParallelHier { threads: n, batch: 0 },
        (Some(EngineKind::ParallelHier { threads, batch }), n) => {
            EngineKind::ParallelHier { threads: n.unwrap_or(threads), batch }
        }
        (Some(e), None) => e,
        (Some(_), Some(_)) => usage("--threads requires --engine parallel"),
    };
    let engine = match (engine, batch_flag) {
        (e, None) => e,
        (EngineKind::ParallelHier { threads, .. }, Some(b)) => {
            EngineKind::ParallelHier { threads, batch: b }
        }
        _ => usage("--batch requires --engine parallel"),
    };

    if let Some((base, cur)) = compare_paths {
        std::process::exit(compare(&base, &cur, tolerance));
    }

    if (scaling || min_efficiency.is_some()) && !matches!(engine, EngineKind::ParallelHier { .. }) {
        usage("--scaling / --min-efficiency need a parallel engine (--engine parallel)");
    }
    if min_efficiency.is_some() && !scaling {
        usage("--min-efficiency needs --scaling (nothing measures efficiency otherwise)");
    }

    let cfg = GateCfg { engine, quick, rss, only, profile, scaling };
    let report = run_gate(&cfg);
    let json = render_report(&report);
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("perf-smoke: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out}");

    if let Some(min_eff) = min_efficiency {
        std::process::exit(gate_efficiency(&report, engine, min_eff));
    }
}

/// Apply the `--min-efficiency` floor. The gate only means something
/// when the parallel run's threads actually fit the machine — on an
/// undersized runner (e.g. 2 threads on a 1-core CI box) the measured
/// "efficiency" is contention, not scaling, so the check downgrades to
/// a warning and the counts-only comparison remains the gate.
fn gate_efficiency(report: &Report, engine: EngineKind, min_eff: f64) -> i32 {
    let threads = match engine {
        EngineKind::ParallelHier { threads, .. } => threads,
        _ => unreachable!("--min-efficiency is rejected for non-parallel engines"),
    };
    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1);
    let effective = if threads == 0 { cores } else { threads };
    if effective > cores {
        eprintln!(
            "perf-smoke: skipping efficiency gate ({effective} threads > {cores} core(s) \
             available — measurement would be contention, not scaling)"
        );
        return 0;
    }
    let mut code = 0;
    for s in &report.scenarios {
        if s.scaling_efficiency > 0.0 && s.scaling_efficiency < min_eff {
            eprintln!(
                "FAIL: {}: scaling efficiency {:.2} below the {:.2} floor",
                s.name, s.scaling_efficiency, min_eff
            );
            code = 1;
        }
    }
    if code == 0 {
        eprintln!(
            "efficiency gate OK (floor {min_eff:.2}, {effective} thread(s), {cores} core(s))"
        );
    }
    code
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("perf-smoke: {err}");
    }
    eprintln!(
        "usage: perf-smoke [--out PATH] [--engine hier|legacy|parallel] [--threads N] [--batch K]\n\
         \x20                 [--quick] [--rss] [--only SUBSTR] [--profile] [--scaling]\n\
         \x20                 [--min-efficiency FRAC]\n\
         \x20      perf-smoke --compare BASELINE CURRENT [--tolerance FRAC]"
    );
    std::process::exit(2);
}
