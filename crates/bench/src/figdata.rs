//! Figure-data builders behind the `repro` binary.
//!
//! Each paper figure/table has a builder that *runs the experiment and
//! returns the data* as a [`FigTable`] (printing the familiar text table
//! as it goes): the `repro` binary is a thin CLI over this module, the
//! golden tests pin the tables' schema and seed-42 numbers, and the
//! `repro compare` figure-accuracy gate joins the tables against the
//! digitized reference curves in [`homa_harness::figures`].
//!
//! Rows destined for the comparison carry the canonical columns
//! (`workload`/`protocol`/`variant`/`load`/`metric`/`x`/`value`, see
//! [`measured_points`]); everything else is free-form per figure.

use crate::perfjson::{render_table, Field, FigRow, FigTable};
use crate::{run_protocol_rpc_scenario, run_protocol_scenario, Protocol};
use homa::HomaConfig;
use homa_baselines::homa_sim::static_map_for_workload;
use homa_baselines::HomaSimTransport;
use homa_harness::capacity::{max_sustainable_load, max_sustainable_load_with, CapacitySearch};
use homa_harness::driver::{IncastOpts, OnewayOpts, RpcOpts};
use homa_harness::figures::{self, MeasuredPoint};
use homa_harness::render::{delta_report, fmt_bps, fmt_bytes, slowdown_table};
use homa_harness::slowdown::SlowdownSummary;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::{PortClass, SimDuration, Topology};
use homa_workloads::Workload;
use std::collections::BTreeMap;

/// Options shared by every `repro` experiment (the binary's CLI flags).
#[derive(Debug, Clone)]
pub struct ReproOpts {
    /// Paper-scale fabric and message counts (`--full`).
    pub full: bool,
    /// Workloads to sweep where a figure allows a choice.
    pub workloads: Vec<Workload>,
    /// Loads to sweep where a figure allows a choice.
    pub loads: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Multiplier on per-workload message budgets (`--scale`).
    pub msgs_scale: f64,
    /// Number of size bins in slowdown tables.
    pub bins: usize,
}

impl Default for ReproOpts {
    fn default() -> Self {
        ReproOpts {
            full: false,
            workloads: vec![Workload::W2, Workload::W4],
            loads: vec![0.8],
            seed: 1,
            msgs_scale: 1.0,
            bins: 10,
        }
    }
}

impl ReproOpts {
    /// Simulation fabric: scaled-down by default, Figure 11's 144 hosts
    /// with `--full`.
    pub fn fabric_spec(&self) -> FabricSpec {
        if self.full {
            FabricSpec::Paper
        } else {
            FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 }
        }
    }

    /// The fabric as a concrete topology (for printing shapes and
    /// computing link capacities).
    pub fn fabric(&self) -> Topology {
        self.fabric_spec().topology()
    }

    /// A one-way [`ScenarioSpec`] on this run's fabric and seed.
    fn spec(&self, name: &str, w: Workload, load: f64, msgs: u64) -> ScenarioSpec {
        ScenarioSpec::new(name, self.fabric_spec(), w, load, msgs, self.seed)
    }

    /// Message budget per workload, chosen so event counts (~bytes) are
    /// comparable across workloads.
    pub fn msgs_for(&self, w: Workload) -> u64 {
        let base = match w {
            Workload::W1 => 40_000,
            Workload::W2 => 25_000,
            Workload::W3 => 12_000,
            Workload::W4 => 3_000,
            Workload::W5 => 500,
        };
        let full_mult = if self.full { 8 } else { 1 };
        ((base * full_mult) as f64 * self.msgs_scale) as u64
    }

    /// Deterministic provenance string for `FIG_<n>.json` (no
    /// timestamps: golden tests pin whole files).
    fn stamp(&self, figure: &str) -> String {
        format!(
            "repro {figure} (homa-bench), seed {}, scale {}, {}",
            self.seed,
            self.msgs_scale,
            if self.full { "paper-scale fabric" } else { "reduced fabric" }
        )
    }
}

/// Tiny builder so row construction reads as a sentence.
struct Row(FigRow);

impl Row {
    fn new() -> Row {
        Row(BTreeMap::new())
    }

    fn s(mut self, k: &str, v: &str) -> Row {
        self.0.insert(k.to_string(), Field::Text(v.to_string()));
        self
    }

    fn n(mut self, k: &str, v: f64) -> Row {
        self.0.insert(k.to_string(), Field::Num(v));
        self
    }

    /// The canonical curve-identity columns (who measured what).
    fn curve(self, workload: &str, protocol: &str, variant: &str, load: f64, metric: &str) -> Row {
        self.s("workload", workload)
            .s("protocol", protocol)
            .s("variant", variant)
            .n("load", load)
            .s("metric", metric)
    }

    /// The canonical data columns (where the point sits).
    fn xy(self, x: f64, value: f64) -> Row {
        self.n("x", x).n("value", value)
    }

    fn push(self, t: &mut FigTable) {
        t.rows.push(self.0);
    }
}

/// Extract the measured points of a table: every row carrying the full
/// set of canonical columns (`variant` defaults to empty). This is the
/// contract between the figure builders and the comparison gate; the
/// golden tests pin it.
pub fn measured_points(t: &FigTable) -> Vec<MeasuredPoint> {
    t.rows
        .iter()
        .filter_map(|row| {
            Some(MeasuredPoint {
                figure: t.figure.clone(),
                workload: row.get("workload")?.as_text()?.to_string(),
                protocol: row.get("protocol")?.as_text()?.to_string(),
                variant: row
                    .get("variant")
                    .and_then(|f| f.as_text())
                    .unwrap_or_default()
                    .to_string(),
                load: row.get("load")?.as_num()?,
                metric: row.get("metric")?.as_text()?.to_string(),
                x: row.get("x")?.as_num()?,
                y: row.get("value")?.as_num()?,
            })
        })
        .collect()
}

/// One canonical row per slowdown bin, x = the bin's cumulative
/// message-count percentile (the x-axis of Figures 8/9/12/13).
fn push_slowdown_bins(
    t: &mut FigTable,
    workload: &str,
    protocol: &str,
    load: f64,
    metric: &str,
    s: &SlowdownSummary,
) {
    let total: usize = s.bins.iter().map(|b| b.count).sum();
    let mut cum = 0usize;
    for b in &s.bins {
        cum += b.count;
        let x = 100.0 * cum as f64 / total.max(1) as f64;
        let value = if metric.starts_with("p50") { b.p50 } else { b.p99 };
        Row::new()
            .curve(workload, protocol, "", load, metric)
            .xy(x, value)
            .n("min_size", b.min_size as f64)
            .n("max_size", b.max_size as f64)
            .n("count", b.count as f64)
            .push(t);
    }
}

/// Figure 1: the workload CDFs (message- and byte-weighted).
pub fn fig1(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig1", opts.stamp("fig1"));
    println!("=== Figure 1: workload message-size CDFs ===");
    for w in Workload::ALL {
        let d = w.dist();
        println!("\n{w} ({}) — mean {:.0} B", w.description(), d.mean());
        println!("{:>6} {:>12} {:>14} {:>14}", "pct", "size", "CDF(msgs)", "CDF(bytes)");
        for (pct, size) in d.decile_points() {
            println!(
                "{:>5.0}% {:>12} {:>13.1}% {:>13.1}%",
                pct,
                size,
                d.cdf(size) * 100.0,
                d.byte_weighted_cdf(size) * 100.0
            );
            Row::new()
                .s("workload", w.name())
                .n("x", pct)
                .n("size", size as f64)
                .n("cdf_msgs", d.cdf(size))
                .n("cdf_bytes", d.byte_weighted_cdf(size))
                .push(&mut t);
        }
    }
    t
}

/// Figure 4: unscheduled priority allocation per workload.
pub fn fig4(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig4", opts.stamp("fig4"));
    println!("\n=== Figure 4: unscheduled priority allocation (8 levels) ===");
    let cfg = HomaConfig::default();
    for w in Workload::ALL {
        let map = static_map_for_workload(&w.dist(), &cfg);
        let d = w.dist();
        let unsched_frac = d.mean_capped(cfg.rtt_bytes) / d.mean();
        print!(
            "{w}: unscheduled bytes {:>4.1}% -> {} unscheduled + {} scheduled levels; cutoffs: ",
            unsched_frac * 100.0,
            map.unsched_levels,
            map.sched_levels()
        );
        let mut cutoff_text = String::new();
        if map.cutoffs.is_empty() {
            println!("(single unscheduled level)");
        } else {
            let mut prev = 1u64;
            let top = map.num_priorities - 1;
            for (i, &c) in map.cutoffs.iter().enumerate() {
                let seg = format!("P{}:{}..{}B ", top - i as u8, prev, c);
                print!("{seg}");
                cutoff_text.push_str(&seg);
                prev = c + 1;
            }
            let last = format!("P{}:{}B+", top - map.cutoffs.len() as u8, prev);
            println!("{last}");
            cutoff_text.push_str(&last);
        }
        Row::new()
            .s("workload", w.name())
            .n("unsched_frac", unsched_frac)
            .n("unsched_levels", map.unsched_levels as f64)
            .n("sched_levels", map.sched_levels() as f64)
            .s("cutoffs", cutoff_text.trim())
            .push(&mut t);
    }
    t
}

/// Figures 8/9: implementation echo-RPC slowdown. Both figures
/// summarize the same runs (p99 vs p50), so they are built together.
pub fn fig8_9(opts: &ReproOpts) -> (FigTable, FigTable) {
    let mut t8 = FigTable::new("fig8", opts.stamp("fig8"));
    let mut t9 = FigTable::new("fig9", opts.stamp("fig9"));
    println!("\n=== Figures 8/9 (p99/p50): echo RPC slowdown, 16-node cluster, 80% load ===");
    let cluster = FabricSpec::SingleSwitch { hosts: 16 };
    let workloads = if opts.workloads == ReproOpts::default().workloads {
        vec![Workload::W3, Workload::W4, Workload::W5]
    } else {
        opts.workloads.clone()
    };
    let protos = [
        Protocol::Homa,
        Protocol::HomaP(4),
        Protocol::HomaP(2),
        Protocol::HomaP(1),
        Protocol::Basic,
    ];
    let push_overall = |t: &mut FigTable,
                        w: Workload,
                        p: Protocol,
                        metric: &str,
                        stat: f64,
                        done: u64,
                        all: u64| {
        Row::new()
            .curve(w.name(), &p.name(), "", 0.8, metric)
            .xy(0.0, stat)
            .n("completed", done as f64)
            .n("issued", all as f64)
            .push(t);
    };
    for w in workloads {
        let n = opts.msgs_for(w);
        let spec = ScenarioSpec::new("fig8_9_rpc", cluster, w, 0.8, n, opts.seed);
        println!("\n--- workload {w}, {n} RPCs ---");
        for p in protos {
            let res = run_protocol_rpc_scenario(p, &spec, &RpcOpts::default());
            let s = SlowdownSummary::from_records(&res.records, opts.bins);
            println!(
                "{:<10} completed {}/{} overall p99 {:>8.2}  p50 {:>8.2}",
                p.name(),
                res.completed,
                res.issued,
                s.overall_p99,
                s.overall_p50
            );
            for b in &s.bins {
                println!(
                    "    {:>10}..{:<10} {:>8.2} {:>8.2}",
                    b.min_size, b.max_size, b.p99, b.p50
                );
            }
            push_slowdown_bins(&mut t8, w.name(), &p.name(), 0.8, "p99_slowdown", &s);
            push_overall(&mut t8, w, p, "overall_p99", s.overall_p99, res.completed, res.issued);
            push_slowdown_bins(&mut t9, w.name(), &p.name(), 0.8, "p50_slowdown", &s);
            push_overall(&mut t9, w, p, "overall_p50", s.overall_p50, res.completed, res.issued);
        }
        // The streaming baseline demonstrates head-of-line blocking
        // (one-way messages; the effect the paper's TCP/InfRC rows show).
        let res = run_protocol_scenario(
            Protocol::Stream,
            &ScenarioSpec::new("fig8_9_stream", cluster, w, 0.8, opts.msgs_for(w), opts.seed),
            &OnewayOpts::default().with_records(),
            None,
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "{:<10} (one-way) delivered {}/{} overall p99 {:>8.2}  p50 {:>8.2}",
            Protocol::Stream.name(),
            res.delivered,
            res.injected,
            s.overall_p99,
            s.overall_p50
        );
        push_overall(
            &mut t8,
            w,
            Protocol::Stream,
            "overall_p99",
            s.overall_p99,
            res.delivered,
            res.injected,
        );
        push_overall(
            &mut t9,
            w,
            Protocol::Stream,
            "overall_p50",
            s.overall_p50,
            res.delivered,
            res.injected,
        );
    }
    (t8, t9)
}

/// Figure 8: echo-RPC p99 slowdown.
pub fn fig8(opts: &ReproOpts) -> FigTable {
    fig8_9(opts).0
}

/// Figure 9: echo-RPC median slowdown.
pub fn fig9(opts: &ReproOpts) -> FigTable {
    fig8_9(opts).1
}

/// Figure 10: incast throughput with/without incast control.
pub fn fig10(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig10", opts.stamp("fig10"));
    println!("\n=== Figure 10: incast (10 KB responses, 15 servers) ===");
    let cluster = FabricSpec::SingleSwitch { hosts: 16 };
    let sweep: Vec<u64> = if opts.full {
        vec![16, 64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        vec![16, 64, 128, 256, 512, 1024]
    };
    println!("{:>12} {:>32} {:>32}", "concurrent", "with control", "without control");
    for &n in &sweep {
        let mut row = Vec::new();
        for enabled in [true, false] {
            let cfg = HomaConfig {
                incast_threshold: if enabled { 32 } else { u32::MAX },
                ..HomaConfig::default()
            };
            let spec = ScenarioSpec::incast("fig10", cluster, n, opts.seed);
            let res = spec.run_incast(
                None,
                |h| HomaSimTransport::new(h, cfg.clone()),
                &IncastOpts {
                    resp_len: 10_000,
                    rounds: 3,
                    per_round_timeout: SimDuration::from_millis(500),
                },
            );
            row.push(format!(
                "{} ({} aborted, {} drops)",
                fmt_bps(res.throughput_bps),
                res.aborted,
                res.drops
            ));
            Row::new()
                .n("concurrent", n as f64)
                .s("variant", if enabled { "control" } else { "no_control" })
                .n("throughput_bps", res.throughput_bps)
                .n("aborted", res.aborted as f64)
                .n("drops", res.drops as f64)
                .push(&mut t);
        }
        println!("{n:>12} {:>32} {:>32}", row[0], row[1]);
    }
    t
}

/// Figures 12/13: simulation slowdown across protocols. Both figures
/// summarize the same runs (p99 vs p50), so they are built together.
pub fn fig12_13(opts: &ReproOpts) -> (FigTable, FigTable) {
    let mut t12 = FigTable::new("fig12", opts.stamp("fig12"));
    let mut t13 = FigTable::new("fig13", opts.stamp("fig13"));
    println!("\n=== Figures 12/13 (p99/p50): one-way slowdown on the leaf-spine fabric ===");
    let topo = opts.fabric();
    println!(
        "fabric: {} hosts ({} racks x {}), {} spines",
        topo.num_hosts(),
        topo.racks,
        topo.hosts_per_rack,
        topo.spines
    );
    for &load in &opts.loads {
        for &w in &opts.workloads {
            let n = opts.msgs_for(w);
            println!("\n--- workload {w}, load {:.0}%, {n} messages ---", load * 100.0);
            let mut protos =
                vec![Protocol::Homa, Protocol::Pfabric, Protocol::Phost, Protocol::Pias];
            if w == Workload::W5 {
                protos.push(Protocol::Ndp); // the paper runs NDP on W5 only
            }
            for p in protos {
                // pHost and NDP cannot sustain 80% (Fig 12 caption): cap
                // their load at the paper's observed limits.
                let eff_load = match p {
                    Protocol::Phost => load.min(0.7),
                    Protocol::Ndp => load.min(0.7),
                    _ => load,
                };
                let res = run_protocol_scenario(
                    p,
                    &opts.spec("fig12_13", w, eff_load, n),
                    &OnewayOpts::default().with_records(),
                    None,
                );
                let s = SlowdownSummary::from_records(&res.records, opts.bins);
                let small_p99 = SlowdownSummary::small_message_p99(&res.records, 0.5);
                println!(
                    "{:<10} load {:>3.0}% delivered {}/{} small-msg p99 {:>7.2}",
                    p.name(),
                    eff_load * 100.0,
                    res.delivered,
                    res.injected,
                    small_p99,
                );
                print!("{}", slowdown_table(&format!("  {} bins:", p.name()), &s));
                push_slowdown_bins(&mut t12, w.name(), &p.name(), eff_load, "p99_slowdown", &s);
                Row::new()
                    .curve(w.name(), &p.name(), "", eff_load, "small_msg_p99")
                    .xy(0.0, small_p99)
                    .n("delivered", res.delivered as f64)
                    .n("injected", res.injected as f64)
                    .push(&mut t12);
                push_slowdown_bins(&mut t13, w.name(), &p.name(), eff_load, "p50_slowdown", &s);
                Row::new()
                    .curve(w.name(), &p.name(), "", eff_load, "overall_p50")
                    .xy(0.0, s.overall_p50)
                    .n("delivered", res.delivered as f64)
                    .n("injected", res.injected as f64)
                    .push(&mut t13);
            }
        }
    }
    (t12, t13)
}

/// Figure 12: p99 one-way slowdown.
pub fn fig12(opts: &ReproOpts) -> FigTable {
    fig12_13(opts).0
}

/// Figure 13: median one-way slowdown.
pub fn fig13(opts: &ReproOpts) -> FigTable {
    fig12_13(opts).1
}

/// Figure 14: sources of tail delay for short messages.
pub fn fig14(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig14", opts.stamp("fig14"));
    println!("\n=== Figure 14: tail-delay attribution for short messages (80% load) ===");
    let workloads = if opts.workloads == ReproOpts::default().workloads {
        Workload::ALL.to_vec()
    } else {
        opts.workloads.clone()
    };
    println!("{:>4} {:>16} {:>16} {:>10}", "wl", "queueing(us)", "preempt-lag(us)", "samples");
    for w in workloads {
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig14", w, 0.8, opts.msgs_for(w)),
            &OnewayOpts { track_delay: true, ..OnewayOpts::default() }.with_records(),
            None,
        );
        // Short messages: smallest 20% (W5: single-packet messages).
        let mut recs = res.records.clone();
        recs.sort_by_key(|r| r.size);
        let cut = match w {
            Workload::W5 => recs.iter().filter(|r| r.size <= 1_400).count().max(1),
            _ => (recs.len() / 5).max(1),
        };
        let short = &recs[..cut.min(recs.len())];
        // Near-p99 selection: slowdowns between p97 and p99.9.
        let mut by_slow = short.to_vec();
        by_slow.sort_by(|a, b| a.slowdown().partial_cmp(&b.slowdown()).expect("no NaN"));
        let lo = (by_slow.len() as f64 * 0.97) as usize;
        let hi = ((by_slow.len() as f64 * 0.999) as usize).max(lo + 1).min(by_slow.len());
        let sel = &by_slow[lo..hi];
        let n = sel.len().max(1) as f64;
        let q: f64 = sel.iter().map(|r| r.delay.queueing.as_micros_f64()).sum::<f64>() / n;
        let l: f64 = sel.iter().map(|r| r.delay.preemption_lag.as_micros_f64()).sum::<f64>() / n;
        println!("{:>4} {q:>16.3} {l:>16.3} {:>10}", w.name(), sel.len());
        Row::new()
            .curve(w.name(), "Homa", "", 0.8, "queueing_us")
            .xy(0.0, q)
            .n("samples", sel.len() as f64)
            .push(&mut t);
        Row::new()
            .curve(w.name(), "Homa", "", 0.8, "preempt_lag_us")
            .xy(0.0, l)
            .n("samples", sel.len() as f64)
            .push(&mut t);
    }
    t
}

/// Figure 15: maximum sustainable network load per protocol.
pub fn fig15(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig15", opts.stamp("fig15"));
    println!("\n=== Figure 15: maximum sustainable load ===");
    let protos = if opts.full {
        vec![Protocol::Homa, Protocol::Pfabric, Protocol::Phost, Protocol::Pias]
    } else {
        vec![Protocol::Homa, Protocol::Phost]
    };
    println!("{:>4} {:<10} {:>10} {:>14}", "wl", "protocol", "max load", "goodput frac");
    for &w in &opts.workloads {
        let dist = w.dist();
        let n = opts.msgs_for(w) / 2;
        // The base spec for this workload; each probe reruns it at the
        // bisection's trial load.
        let base = opts.spec("fig15", w, 0.0, n);
        for &p in &protos {
            let cap = match p {
                Protocol::Homa => {
                    let cfg = HomaConfig::default();
                    let map = static_map_for_workload(&dist, &cfg);
                    max_sustainable_load(
                        &base,
                        None,
                        |h| HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone()),
                        CapacitySearch { lo: 0.5, hi: 0.98, tol: 0.03 },
                    )
                    .0
                }
                _ => {
                    // Generic path: bisection over the dispatcher. A short
                    // drain budget makes the criterion meaningful at
                    // reduced message counts: an over-capacity run cannot
                    // catch up within it.
                    let probe_opts =
                        OnewayOpts { drain: SimDuration::from_millis(20), ..OnewayOpts::default() };
                    max_sustainable_load_with(
                        |load| {
                            let res = run_protocol_scenario(
                                p,
                                &base.clone().with_load(load),
                                &probe_opts,
                                None,
                            );
                            res.delivered as f64 / res.injected.max(1) as f64
                        },
                        CapacitySearch { lo: 0.3, hi: 0.98, tol: 0.03 },
                    )
                    .0
                }
            };
            // Application-goodput fraction at the capacity point.
            let res = run_protocol_scenario(
                p,
                &base.clone().with_load((cap - 0.02).max(0.1)),
                &OnewayOpts::default(),
                None,
            );
            let frac = if res.stats.tor_down_wire_bytes > 0 {
                res.stats.tor_down_goodput_bytes as f64 / res.stats.tor_down_wire_bytes as f64
            } else {
                0.0
            };
            println!(
                "{:>4} {:<10} {:>9.0}% {:>13.0}%",
                w.name(),
                p.name(),
                cap * 100.0,
                cap * frac * 100.0
            );
            Row::new()
                .curve(w.name(), &p.name(), "", 0.0, "max_load")
                .xy(0.0, cap)
                .n("goodput_frac", frac)
                .push(&mut t);
        }
    }
    t
}

/// Figure 16: wasted bandwidth vs load for different overcommitment.
pub fn fig16(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig16", opts.stamp("fig16"));
    println!("\n=== Figure 16: wasted bandwidth vs load (W4) ===");
    let scheds: Vec<u8> = if opts.full { vec![1, 2, 3, 4, 5, 7] } else { vec![1, 3, 7] };
    let loads: Vec<f64> =
        if opts.full { vec![0.5, 0.6, 0.7, 0.8, 0.85, 0.9] } else { vec![0.5, 0.7, 0.85] };
    let n = opts.msgs_for(Workload::W4);
    println!("{:>12} {:>8} {:>16} {:>16}", "sched prios", "load", "wasted bw", "delivered");
    for &s in &scheds {
        for &load in &loads {
            let cfg = HomaConfig {
                num_priorities: s + 1,
                unsched_levels_override: Some(1),
                ..HomaConfig::default()
            };
            let res = run_protocol_scenario(
                Protocol::Homa,
                &opts.spec("fig16", Workload::W4, load, n),
                &OnewayOpts { sample_wasted: true, ..OnewayOpts::default() },
                Some(cfg),
            );
            println!(
                "{s:>12} {:>7.0}% {:>15.1}% {:>11}/{}",
                load * 100.0,
                res.wasted_fraction * 100.0,
                res.delivered,
                res.injected
            );
            // Per the reference encoding, the canonical `load` is 0 and
            // the network load rides the x axis (XAxis::Load).
            Row::new()
                .curve("W4", "Homa", &format!("sched={s}"), 0.0, "wasted_frac")
                .xy(load, res.wasted_fraction)
                .n("net_load", load)
                .n("delivered", res.delivered as f64)
                .n("injected", res.injected as f64)
                .push(&mut t);
        }
    }
    t
}

/// Figure 17: number of unscheduled priority levels (W1).
pub fn fig17(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig17", opts.stamp("fig17"));
    println!("\n=== Figure 17: unscheduled priority levels (W1, 80% load, 1 sched) ===");
    let n = opts.msgs_for(Workload::W1);
    for u in [1u8, 2, 3, 7] {
        let cfg = HomaConfig {
            num_priorities: u + 1,
            unsched_levels_override: Some(u),
            ..HomaConfig::default()
        };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig17", Workload::W1, 0.8, n),
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        let small = SlowdownSummary::small_message_p99(&res.records, 0.5);
        println!(
            "unsched={u}: overall p99 {:>7.2}  small-msg p99 {:>7.2}  delivered {}/{}",
            s.overall_p99, small, res.delivered, res.injected
        );
        Row::new()
            .curve("W1", "Homa", &format!("unsched={u}"), 0.8, "overall_p99")
            .xy(0.0, s.overall_p99)
            .n("small_msg_p99", small)
            .n("delivered", res.delivered as f64)
            .n("injected", res.injected as f64)
            .push(&mut t);
    }
    t
}

/// Figure 18: cutoff point between two unscheduled priorities (W3).
pub fn fig18(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig18", opts.stamp("fig18"));
    println!("\n=== Figure 18: unscheduled cutoff sweep (W3, 80% load, 2 unsched) ===");
    let dist = Workload::W3.dist();
    let n = opts.msgs_for(Workload::W3);
    // Homa's own equal-bytes choice, for reference.
    let auto = static_map_for_workload(
        &dist,
        &HomaConfig { unsched_levels_override: Some(2), ..HomaConfig::default() },
    );
    println!("Homa's equal-bytes algorithm picks cutoff {:?}", auto.cutoffs);
    for cutoff in [100u64, 400, 1_000, 2_000, 4_000] {
        let cfg = HomaConfig {
            unsched_levels_override: Some(2),
            cutoff_override: Some(vec![cutoff]),
            ..HomaConfig::default()
        };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig18", Workload::W3, 0.8, n),
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        let small = SlowdownSummary::small_message_p99(&res.records, 0.5);
        println!(
            "cutoff={cutoff:>5}B: overall p99 {:>7.2}  small-msg p99 {:>7.2}",
            s.overall_p99, small
        );
        Row::new()
            .curve("W3", "Homa", &format!("cutoff={cutoff}"), 0.8, "overall_p99")
            .xy(0.0, s.overall_p99)
            .n("small_msg_p99", small)
            .push(&mut t);
    }
    t
}

/// Figure 19: number of scheduled priority levels (W4).
pub fn fig19(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig19", opts.stamp("fig19"));
    println!("\n=== Figure 19: scheduled priority levels (W4, 80% load, 1 unsched) ===");
    let n = opts.msgs_for(Workload::W4);
    for s in [4u8, 7] {
        let cfg = HomaConfig {
            num_priorities: s + 1,
            unsched_levels_override: Some(1),
            ..HomaConfig::default()
        };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig19", Workload::W4, 0.8, n),
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        let sm = SlowdownSummary::from_records(&res.records, opts.bins);
        println!(
            "sched={s}: overall p99 {:>7.2}  delivered {}/{}",
            sm.overall_p99, res.delivered, res.injected
        );
        Row::new()
            .curve("W4", "Homa", &format!("sched={s}"), 0.8, "overall_p99")
            .xy(0.0, sm.overall_p99)
            .n("delivered", res.delivered as f64)
            .n("injected", res.injected as f64)
            .push(&mut t);
    }
    t
}

/// Figure 20: unscheduled-bytes limit (W4).
pub fn fig20(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig20", opts.stamp("fig20"));
    println!("\n=== Figure 20: unscheduled byte limit (W4, 80% load) ===");
    let n = opts.msgs_for(Workload::W4);
    let rtt = HomaConfig::default().rtt_bytes;
    for (label, limit) in
        [("1B", 1u64), ("500B", 500), ("1000B", 1_000), ("RTTbytes", rtt), ("2xRTTbytes", 2 * rtt)]
    {
        let cfg = HomaConfig { unsched_limit: limit, ..HomaConfig::default() };
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig20", Workload::W4, 0.8, n),
            &OnewayOpts::default().with_records(),
            Some(cfg),
        );
        let s = SlowdownSummary::from_records(&res.records, opts.bins);
        let small = SlowdownSummary::small_message_p99(&res.records, 0.5);
        println!(
            "unsched_limit={label:>10}: overall p99 {:>7.2}  small-msg p99 {:>7.2}",
            s.overall_p99, small
        );
        Row::new()
            .curve("W4", "Homa", &format!("unsched_limit={label}"), 0.8, "overall_p99")
            .xy(0.0, s.overall_p99)
            .n("small_msg_p99", small)
            .n("unsched_limit_bytes", limit as f64)
            .push(&mut t);
    }
    t
}

/// Figure 21: traffic per priority level vs load (W3).
pub fn fig21(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("fig21", opts.stamp("fig21"));
    println!("\n=== Figure 21: priority level usage (W3) ===");
    let topo = opts.fabric();
    let n = opts.msgs_for(Workload::W3);
    println!(
        "{:>6} {}",
        "load",
        (0..8).map(|i| format!("{:>8}", format!("P{i}"))).collect::<String>()
    );
    for load in [0.5, 0.8, 0.9] {
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("fig21", Workload::W3, load, n),
            &OnewayOpts::default(),
            None,
        );
        // Fraction of total available uplink bandwidth per priority.
        let capacity_bytes =
            topo.num_hosts() as f64 * topo.host_link_bps as f64 / 8.0 * res.duration.as_secs_f64();
        let row: String = res
            .prio_bytes
            .iter()
            .map(|&b| format!("{:>7.1}%", b as f64 / capacity_bytes * 100.0))
            .collect();
        println!("{:>5.0}% {row}", load * 100.0);
        for (i, &b) in res.prio_bytes.iter().enumerate() {
            Row::new()
                .curve("W3", "Homa", &format!("P{i}"), 0.0, "prio_frac")
                .xy(load, b as f64 / capacity_bytes)
                .push(&mut t);
        }
    }
    t
}

/// Table 1: queue lengths at the three fabric levels.
pub fn table1(opts: &ReproOpts) -> FigTable {
    let mut t = FigTable::new("table1", opts.stamp("table1"));
    println!("\n=== Table 1: switch queue lengths at 80% load (mean/max) ===");
    let workloads = if opts.workloads == ReproOpts::default().workloads {
        Workload::ALL.to_vec()
    } else {
        opts.workloads.clone()
    };
    println!(
        "{:<12} {}",
        "queue",
        workloads.iter().map(|w| format!("{:>20}", w.name())).collect::<String>()
    );
    let mut rows: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for &w in &workloads {
        let res = run_protocol_scenario(
            Protocol::Homa,
            &opts.spec("table1", w, 0.8, opts.msgs_for(w)),
            &OnewayOpts::default(),
            None,
        );
        for class in [PortClass::TorUp, PortClass::SpineDown, PortClass::TorDown] {
            let mean = res.stats.mean_queue_bytes(class).unwrap_or(0.0);
            let max = res.stats.max_queue_bytes(class).unwrap_or(0) as f64;
            rows.entry(class.label()).or_default().push(format!(
                "{:>8}/{:>8}",
                fmt_bytes(mean),
                fmt_bytes(max)
            ));
            Row::new()
                .s("workload", w.name())
                .s("queue", class.label())
                .n("mean_bytes", mean)
                .n("max_bytes", max)
                .push(&mut t);
        }
    }
    for (label, cells) in rows {
        println!("{label:<12} {}", cells.iter().map(|c| format!("{c:>20}")).collect::<String>());
    }
    t
}

/// The figures `repro compare` checks against [`figures::REFERENCE`]:
/// 12/13 (slowdown curves), 14 (delay attribution, report-only),
/// 15 (capacity), 16 (wasted bandwidth).
pub const COMPARE_FIGURES: &[&str] = &["fig12", "fig13", "fig14", "fig15", "fig16"];

/// Run the comparison set of figures and return their tables.
pub fn run_compare_set(opts: &ReproOpts) -> Vec<FigTable> {
    let (t12, t13) = fig12_13(opts);
    vec![t12, t13, fig14(opts), fig15(opts), fig16(opts)]
}

/// The outcome of a figure-accuracy comparison.
pub struct CompareOutcome {
    /// The rendered per-point/per-curve delta report.
    pub report: String,
    /// Gate verdict: failing curve keys, or a join-failure error.
    pub failures: Result<Vec<String>, String>,
    /// How many *gated* reference curves joined at least one measured
    /// point. A clean gate verdict means nothing if this is zero (all
    /// the gated curves were skipped); callers must not report success
    /// on it.
    pub gated_curves_joined: usize,
    /// The deltas as a machine-readable table (`COMPARE.json`).
    pub delta_table: FigTable,
}

/// Join measured figure tables against the digitized reference curves.
pub fn compare_tables(tables: &[FigTable], tol_scale: f64, produced_by: String) -> CompareOutcome {
    let measured: Vec<MeasuredPoint> = tables.iter().flat_map(measured_points).collect();
    let deltas = figures::compare_curves(&measured);
    let report = delta_report(&deltas, tol_scale);
    let failures = figures::gate_failures(&deltas, tol_scale);
    let gated_curves_joined =
        deltas.iter().filter(|d| d.curve.gate && !d.points.is_empty()).count();
    let mut delta_table = FigTable::new("compare", produced_by);
    for d in &deltas {
        for p in &d.points {
            let mut row = Row::new()
                .s("figure", d.curve.figure)
                .curve(
                    d.curve.workload,
                    d.curve.protocol,
                    d.curve.variant,
                    d.curve.load,
                    d.curve.metric,
                )
                .xy(p.x, p.measured)
                .n("reference", p.reference)
                .n("abs_delta", p.abs_delta())
                .n("rel_delta", p.rel_delta());
            // Percentile axes get the concrete size at that percentile,
            // so the delta tables read in bytes as well as percentiles.
            if d.curve.x_axis == figures::XAxis::MsgPercentile {
                if let Some(w) = Workload::parse(d.curve.workload) {
                    let decile = ((p.x / 10.0).round() as usize).clamp(1, 10) - 1;
                    row = row.n("approx_size", w.decile_sizes()[decile] as f64);
                }
            }
            row.push(&mut delta_table);
        }
        if !d.points.is_empty() {
            Row::new()
                .s("figure", d.curve.figure)
                .s("curve", &d.curve.key())
                .s("metric", "curve_summary")
                .n("rms_rel", d.rms_rel())
                .n("worst_rel", d.worst().map(|w| w.rel_delta()).unwrap_or(0.0))
                .n("tolerance", d.curve.rel_tolerance * tol_scale)
                .n("missing_points", d.missing.len() as f64)
                .s(
                    "verdict",
                    if !d.curve.gate {
                        "report-only"
                    } else if d.within_tolerance(tol_scale) {
                        "pass"
                    } else {
                        "fail"
                    },
                )
                .push(&mut delta_table);
        }
    }
    CompareOutcome { report, failures, gated_curves_joined, delta_table }
}

/// Write a table to `dir/FIG_<n>.json`, returning the path.
pub fn write_table(dir: &std::path::Path, t: &FigTable) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(t.file_name());
    std::fs::write(&path, render_table(t))?;
    Ok(path)
}
