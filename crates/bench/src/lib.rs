//! # homa-bench — shared experiment dispatch for the `repro` binary and
//! the criterion benches.
//!
//! The paper compares seven transports. [`Protocol`] names them and
//! [`run_protocol_oneway`] / [`run_protocol_rpc`] dispatch a harness
//! experiment to the right transport/fabric combination (each protocol
//! needs its own queue discipline in the switches, per its original
//! design).
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`Protocol`] dispatch | §5.1–§5.2 transport comparison |
//! | [`figdata`] | every §5 figure/table as data (+ the Figures 12–16 accuracy gate) |
//! | [`perfjson`] | machine-readable results (`BENCH_*.json`, `FIG_*.json`) |
//! | `bin/repro` | the §5 evaluation, regenerated |
//! | `bin/perf-smoke` | CI performance-regression gate (not in the paper) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figdata;
pub mod perfjson;

use homa::HomaConfig;
use homa_baselines::{
    homa_sim::{basic_config, homa_px_config, static_map_for_workload},
    ndp, pfabric, pias, HomaSimTransport, NdpConfig, NdpTransport, PfabricConfig, PfabricTransport,
    PhostConfig, PhostTransport, PiasConfig, PiasTransport, StreamConfig, StreamTransport,
};
use homa_harness::driver::{
    run_oneway, run_rpc_echo, OnewayOpts, OnewayResult, RpcOpts, RpcResult,
};
use homa_harness::ScenarioSpec;
use homa_sim::{NetworkConfig, QueueDiscipline, Topology};
use homa_workloads::MessageSizeDist;

/// The transports evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Homa with the full 8 priority levels and workload-derived cutoffs.
    Homa,
    /// Homa restricted to `n` priority levels (Figures 8/9's HomaPx).
    HomaP(u8),
    /// RAMCloud Basic: receiver-driven, no priorities, unlimited
    /// overcommitment.
    Basic,
    /// TCP-like single stream per destination.
    Stream,
    /// pFabric.
    Pfabric,
    /// pHost.
    Phost,
    /// PIAS.
    Pias,
    /// NDP.
    Ndp,
}

impl Protocol {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Protocol::Homa => "Homa".into(),
            Protocol::HomaP(n) => format!("HomaP{n}"),
            Protocol::Basic => "Basic".into(),
            Protocol::Stream => "Stream(TCP-like)".into(),
            Protocol::Pfabric => "pFabric".into(),
            Protocol::Phost => "pHost".into(),
            Protocol::Pias => "PIAS".into(),
            Protocol::Ndp => "NDP".into(),
        }
    }

    /// Parse a protocol name (case-insensitive; `homap4` style for
    /// priority-restricted Homa).
    pub fn parse(s: &str) -> Option<Protocol> {
        let l = s.to_ascii_lowercase();
        match l.as_str() {
            "homa" => Some(Protocol::Homa),
            "basic" => Some(Protocol::Basic),
            "stream" | "tcp" => Some(Protocol::Stream),
            "pfabric" => Some(Protocol::Pfabric),
            "phost" => Some(Protocol::Phost),
            "pias" => Some(Protocol::Pias),
            "ndp" => Some(Protocol::Ndp),
            _ => l.strip_prefix("homap").and_then(|n| n.parse::<u8>().ok()).map(Protocol::HomaP),
        }
    }
}

/// The Homa configuration used for a protocol variant, with cutoffs
/// derived from `dist` (the paper's §4 precomputed-priorities setup).
pub fn homa_config_for(p: Protocol) -> HomaConfig {
    match p {
        Protocol::Homa => HomaConfig::default(),
        Protocol::HomaP(n) => homa_px_config(n),
        Protocol::Basic => basic_config(),
        _ => HomaConfig::default(),
    }
}

/// The switch queue discipline a protocol requires, or `None` for the
/// default strict-priority fabric. pFabric needs priority-drop queues,
/// NDP trimming queues, PIAS ECN marking; everything else runs on
/// commodity strict priorities.
pub fn fabric_queues_for(p: Protocol, dist: &MessageSizeDist) -> Option<QueueDiscipline> {
    match p {
        Protocol::Pfabric => Some(pfabric::fabric_queues(&PfabricConfig::default())),
        Protocol::Pias => {
            let thresholds = PiasConfig::thresholds_for(dist, 8);
            Some(pias::fabric_queues(&PiasConfig { thresholds, ..PiasConfig::default() }))
        }
        Protocol::Ndp => Some(ndp::fabric_queues(&NdpConfig::default())),
        _ => None,
    }
}

/// Seeded fabric configuration, optionally with a protocol-specific
/// queue discipline on every port class.
fn netcfg(seed: u64, queues: Option<QueueDiscipline>) -> NetworkConfig {
    match queues {
        Some(q) => NetworkConfig::uniform(seed, q),
        None => NetworkConfig { seed, ..NetworkConfig::default() },
    }
}

/// Run a one-way-message experiment for any protocol. The fabric's queue
/// discipline is chosen per protocol (see [`fabric_queues_for`]).
#[allow(clippy::too_many_arguments)]
pub fn run_protocol_oneway(
    p: Protocol,
    topo: &Topology,
    dist: &MessageSizeDist,
    load: f64,
    n_msgs: u64,
    seed: u64,
    opts: &OnewayOpts,
    homa_override: Option<HomaConfig>,
) -> OnewayResult {
    let net = netcfg(seed, fabric_queues_for(p, dist));
    run_protocol_oneway_on(p, topo, dist, load, n_msgs, seed, net, opts, homa_override)
}

/// Run the one-way experiment a [`ScenarioSpec`] describes for any
/// protocol, honoring the spec's fabric, workload, load, seed and event
/// engine. This is the entry point the `perf-smoke` gate and the
/// determinism tests use.
pub fn run_protocol_scenario(
    p: Protocol,
    spec: &ScenarioSpec,
    opts: &OnewayOpts,
    homa_override: Option<HomaConfig>,
) -> OnewayResult {
    let dist = spec.workload.dist();
    let net = spec.netcfg_with(fabric_queues_for(p, &dist));
    // The spec's traffic pattern and fault schedule override the base
    // options, exactly as in the harness's scenario wrappers.
    run_protocol_oneway_on(
        p,
        &spec.topology(),
        &dist,
        spec.load,
        spec.messages,
        spec.seed,
        net,
        &spec.oneway_opts(opts),
        homa_override,
    )
}

/// Shared dispatch: one experiment, explicit fabric configuration.
#[allow(clippy::too_many_arguments)]
fn run_protocol_oneway_on(
    p: Protocol,
    topo: &Topology,
    dist: &MessageSizeDist,
    load: f64,
    n_msgs: u64,
    seed: u64,
    net: NetworkConfig,
    opts: &OnewayOpts,
    homa_override: Option<HomaConfig>,
) -> OnewayResult {
    let link = topo.host_link_bps;
    match p {
        Protocol::Homa | Protocol::HomaP(_) | Protocol::Basic => {
            let cfg = homa_override.unwrap_or_else(|| homa_config_for(p));
            let map = static_map_for_workload(dist, &cfg);
            run_oneway(
                topo,
                net,
                |h| {
                    let t = HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone());
                    if opts.track_delay {
                        t.with_delay_tracking()
                    } else {
                        t
                    }
                },
                dist,
                load,
                n_msgs,
                seed,
                opts,
            )
        }
        Protocol::Stream => run_oneway(
            topo,
            net,
            |h| StreamTransport::new(h, StreamConfig::default()),
            dist,
            load,
            n_msgs,
            seed,
            opts,
        ),
        Protocol::Pfabric => run_oneway(
            topo,
            net,
            |h| PfabricTransport::new(h, PfabricConfig::default()),
            dist,
            load,
            n_msgs,
            seed,
            opts,
        ),
        Protocol::Phost => run_oneway(
            topo,
            net,
            move |h| {
                PhostTransport::new(h, PhostConfig { link_bps: link, ..PhostConfig::default() })
            },
            dist,
            load,
            n_msgs,
            seed,
            opts,
        ),
        Protocol::Pias => {
            let thresholds = PiasConfig::thresholds_for(dist, 8);
            let pcfg = PiasConfig { thresholds, ..PiasConfig::default() };
            run_oneway(
                topo,
                net,
                move |h| PiasTransport::new(h, pcfg.clone()),
                dist,
                load,
                n_msgs,
                seed,
                opts,
            )
        }
        Protocol::Ndp => run_oneway(
            topo,
            net,
            move |h| NdpTransport::new(h, NdpConfig { link_bps: link, ..NdpConfig::default() }),
            dist,
            load,
            n_msgs,
            seed,
            opts,
        ),
    }
}

/// Run the §5.1 echo-RPC experiment (Figures 8/9). Only the
/// RAMCloud-comparable transports support RPCs.
pub fn run_protocol_rpc(
    p: Protocol,
    topo: &Topology,
    dist: &MessageSizeDist,
    load: f64,
    n_rpcs: u64,
    seed: u64,
    opts: &RpcOpts,
) -> RpcResult {
    match p {
        Protocol::Homa | Protocol::HomaP(_) | Protocol::Basic => {
            let cfg = homa_config_for(p);
            let map = static_map_for_workload(dist, &cfg);
            run_rpc_echo(
                topo,
                netcfg(seed, None),
                |h| HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone()),
                dist,
                load,
                n_rpcs,
                seed,
                opts,
            )
        }
        other => panic!("{} does not support the RPC echo benchmark", other.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_workloads::Workload;

    #[test]
    fn protocol_parse_round_trip() {
        for p in [
            Protocol::Homa,
            Protocol::HomaP(4),
            Protocol::Basic,
            Protocol::Pfabric,
            Protocol::Phost,
            Protocol::Pias,
            Protocol::Ndp,
        ] {
            assert_eq!(Protocol::parse(&p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(Protocol::parse("tcp"), Some(Protocol::Stream));
        assert_eq!(Protocol::parse("nope"), None);
    }

    #[test]
    fn every_protocol_completes_a_tiny_run() {
        let topo = Topology::single_switch(6);
        let dist = Workload::W2.dist();
        for p in [
            Protocol::Homa,
            Protocol::Basic,
            Protocol::Stream,
            Protocol::Pfabric,
            Protocol::Phost,
            Protocol::Pias,
            Protocol::Ndp,
        ] {
            let res =
                run_protocol_oneway(p, &topo, &dist, 0.4, 150, 5, &OnewayOpts::default(), None);
            assert_eq!(res.injected, 150, "{}", p.name());
            assert!(res.delivered >= 148, "{} delivered only {}/150", p.name(), res.delivered);
        }
    }
}
