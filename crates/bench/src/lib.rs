//! # homa-bench — shared experiment dispatch for the `repro` binary and
//! the criterion benches.
//!
//! The paper compares seven transports. [`Protocol`] names them and
//! [`run_protocol_scenario`] / [`run_protocol_rpc_scenario`] dispatch a
//! harness [`ScenarioSpec`] to the right transport/fabric combination
//! (each protocol needs its own queue discipline in the switches, per
//! its original design).
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`Protocol`] dispatch | §5.1–§5.2 transport comparison |
//! | [`figdata`] | every §5 figure/table as data (+ the Figures 12–16 accuracy gate) |
//! | [`perfjson`] | machine-readable results (`BENCH_*.json`, `FIG_*.json`) |
//! | [`tracecmd`] | flight-recorder trace export + summaries (`repro trace`) |
//! | `bin/repro` | the §5 evaluation, regenerated |
//! | `bin/perf-smoke` | CI performance-regression gate (not in the paper) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figdata;
pub mod perfjson;
pub mod tracecmd;

use homa::HomaConfig;
use homa_baselines::{
    homa_sim::{basic_config, homa_px_config, static_map_for_workload},
    ndp, pfabric, pias, HomaSimTransport, NdpConfig, NdpTransport, PfabricConfig, PfabricTransport,
    PhostConfig, PhostTransport, PiasConfig, PiasTransport, StreamConfig, StreamTransport,
};
use homa_harness::driver::{OnewayOpts, OnewayResult, RpcOpts, RpcResult};
use homa_harness::ScenarioSpec;
use homa_sim::QueueDiscipline;
use homa_workloads::MessageSizeDist;

/// The transports evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Homa with the full 8 priority levels and workload-derived cutoffs.
    Homa,
    /// Homa restricted to `n` priority levels (Figures 8/9's HomaPx).
    HomaP(u8),
    /// RAMCloud Basic: receiver-driven, no priorities, unlimited
    /// overcommitment.
    Basic,
    /// TCP-like single stream per destination.
    Stream,
    /// pFabric.
    Pfabric,
    /// pHost.
    Phost,
    /// PIAS.
    Pias,
    /// NDP.
    Ndp,
}

impl Protocol {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Protocol::Homa => "Homa".into(),
            Protocol::HomaP(n) => format!("HomaP{n}"),
            Protocol::Basic => "Basic".into(),
            Protocol::Stream => "Stream(TCP-like)".into(),
            Protocol::Pfabric => "pFabric".into(),
            Protocol::Phost => "pHost".into(),
            Protocol::Pias => "PIAS".into(),
            Protocol::Ndp => "NDP".into(),
        }
    }

    /// Parse a protocol name (case-insensitive; `homap4` style for
    /// priority-restricted Homa).
    pub fn parse(s: &str) -> Option<Protocol> {
        let l = s.to_ascii_lowercase();
        match l.as_str() {
            "homa" => Some(Protocol::Homa),
            "basic" => Some(Protocol::Basic),
            "stream" | "tcp" => Some(Protocol::Stream),
            "pfabric" => Some(Protocol::Pfabric),
            "phost" => Some(Protocol::Phost),
            "pias" => Some(Protocol::Pias),
            "ndp" => Some(Protocol::Ndp),
            _ => l.strip_prefix("homap").and_then(|n| n.parse::<u8>().ok()).map(Protocol::HomaP),
        }
    }
}

/// The Homa configuration used for a protocol variant, with cutoffs
/// derived from `dist` (the paper's §4 precomputed-priorities setup).
pub fn homa_config_for(p: Protocol) -> HomaConfig {
    match p {
        Protocol::Homa => HomaConfig::default(),
        Protocol::HomaP(n) => homa_px_config(n),
        Protocol::Basic => basic_config(),
        _ => HomaConfig::default(),
    }
}

/// The switch queue discipline a protocol requires, or `None` for the
/// default strict-priority fabric. pFabric needs priority-drop queues,
/// NDP trimming queues, PIAS ECN marking; everything else runs on
/// commodity strict priorities.
pub fn fabric_queues_for(p: Protocol, dist: &MessageSizeDist) -> Option<QueueDiscipline> {
    match p {
        Protocol::Pfabric => Some(pfabric::fabric_queues(&PfabricConfig::default())),
        Protocol::Pias => {
            let thresholds = PiasConfig::thresholds_for(dist, 8);
            Some(pias::fabric_queues(&PiasConfig { thresholds, ..PiasConfig::default() }))
        }
        Protocol::Ndp => Some(ndp::fabric_queues(&NdpConfig::default())),
        _ => None,
    }
}

/// Run the one-way experiment a [`ScenarioSpec`] describes for any
/// protocol, honoring the spec's fabric, workload, load, seed, event
/// engine, traffic pattern and fault schedule. This is the entry point
/// the `perf-smoke` gate, the determinism tests and the fuzz suites use.
pub fn run_protocol_scenario(
    p: Protocol,
    spec: &ScenarioSpec,
    opts: &OnewayOpts,
    homa_override: Option<HomaConfig>,
) -> OnewayResult {
    let dist = spec.workload.dist();
    let queues = fabric_queues_for(p, &dist);
    let link = spec.topology().host_link_bps;
    match p {
        Protocol::Homa | Protocol::HomaP(_) | Protocol::Basic => {
            let cfg = homa_override.unwrap_or_else(|| homa_config_for(p));
            let map = static_map_for_workload(&dist, &cfg);
            spec.run_oneway(
                queues,
                |h| {
                    let t = HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone());
                    if opts.track_delay {
                        t.with_delay_tracking()
                    } else {
                        t
                    }
                },
                opts,
            )
        }
        Protocol::Stream => {
            spec.run_oneway(queues, |h| StreamTransport::new(h, StreamConfig::default()), opts)
        }
        Protocol::Pfabric => {
            spec.run_oneway(queues, |h| PfabricTransport::new(h, PfabricConfig::default()), opts)
        }
        Protocol::Phost => spec.run_oneway(
            queues,
            move |h| {
                PhostTransport::new(h, PhostConfig { link_bps: link, ..PhostConfig::default() })
            },
            opts,
        ),
        Protocol::Pias => {
            let thresholds = PiasConfig::thresholds_for(&dist, 8);
            let pcfg = PiasConfig { thresholds, ..PiasConfig::default() };
            spec.run_oneway(queues, move |h| PiasTransport::new(h, pcfg.clone()), opts)
        }
        Protocol::Ndp => spec.run_oneway(
            queues,
            move |h| NdpTransport::new(h, NdpConfig { link_bps: link, ..NdpConfig::default() }),
            opts,
        ),
    }
}

/// Run the §5.1 echo-RPC experiment (Figures 8/9) a [`ScenarioSpec`]
/// describes. Only the RAMCloud-comparable transports support RPCs.
pub fn run_protocol_rpc_scenario(p: Protocol, spec: &ScenarioSpec, opts: &RpcOpts) -> RpcResult {
    match p {
        Protocol::Homa | Protocol::HomaP(_) | Protocol::Basic => {
            let cfg = homa_config_for(p);
            let map = static_map_for_workload(&spec.workload.dist(), &cfg);
            spec.run_rpc_echo(
                None,
                |h| HomaSimTransport::new(h, cfg.clone()).with_static_map(map.clone()),
                opts,
            )
        }
        other => panic!("{} does not support the RPC echo benchmark", other.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_harness::FabricSpec;
    use homa_workloads::Workload;

    #[test]
    fn protocol_parse_round_trip() {
        for p in [
            Protocol::Homa,
            Protocol::HomaP(4),
            Protocol::Basic,
            Protocol::Pfabric,
            Protocol::Phost,
            Protocol::Pias,
            Protocol::Ndp,
        ] {
            assert_eq!(Protocol::parse(&p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(Protocol::parse("tcp"), Some(Protocol::Stream));
        assert_eq!(Protocol::parse("nope"), None);
    }

    #[test]
    fn every_protocol_completes_a_tiny_run() {
        let spec = ScenarioSpec::new(
            "tiny_w2_6h",
            FabricSpec::SingleSwitch { hosts: 6 },
            Workload::W2,
            0.4,
            150,
            5,
        );
        for p in [
            Protocol::Homa,
            Protocol::Basic,
            Protocol::Stream,
            Protocol::Pfabric,
            Protocol::Phost,
            Protocol::Pias,
            Protocol::Ndp,
        ] {
            let res = run_protocol_scenario(p, &spec, &OnewayOpts::default(), None);
            assert_eq!(res.injected, 150, "{}", p.name());
            assert!(res.delivered >= 148, "{} delivered only {}/150", p.name(), res.delivered);
        }
    }

    #[test]
    fn rpc_scenario_dispatch_runs_homa_family() {
        let spec = ScenarioSpec::new(
            "rpc_w1_6h",
            FabricSpec::SingleSwitch { hosts: 6 },
            Workload::W1,
            0.3,
            120,
            3,
        );
        let opts = RpcOpts { clients: 3, ..RpcOpts::default() };
        let res = run_protocol_rpc_scenario(Protocol::Homa, &spec, &opts);
        assert_eq!(res.issued, 120);
        assert!(res.completed >= 118, "only {}/120 RPCs completed", res.completed);
    }
}
