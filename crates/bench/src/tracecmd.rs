//! The `repro trace` subcommand: replay a scenario spec line with the
//! flight recorder enabled and summarize what the fabric did.
//!
//! Three artifacts per run:
//!
//! * `TRACE.jsonl` — the raw trace, one JSON object per line in global
//!   `(time, seq)` order (byte-identical across event engines).
//! * A per-priority TOR-downlink utilization table — the receiver-side
//!   view the paper's Figures 9/21 reason about: scheduled traffic
//!   concentrates on the low priority levels, unscheduled on the high
//!   ones.
//! * A message-lifecycle summary: where delivered messages spent their
//!   time (switch queueing vs serialization) and how much grant/resend
//!   traffic drove them — the trace-level analogue of Figure 10's
//!   queueing breakdown.
//!
//! Everything here is a pure fold over the recorded trace; nothing feeds
//! back into the simulation, so a traced run delivers the same messages
//! at the same times as an untraced one.

use crate::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::ScenarioSpec;
use homa_sim::trace::{render_jsonl, summarize_messages};
use homa_sim::{MsgLifecycle, NodeId, SimDuration, Timeline};
use std::fmt::Write as _;

/// Output of one traced run.
pub struct TraceRun {
    /// Canonical JSONL trace, one record per line.
    pub jsonl: String,
    /// Records in the trace (post-eviction).
    pub kept: usize,
    /// Oldest records evicted by the ring (0 = complete trace).
    pub dropped: u64,
    /// Human-readable utilization + lifecycle report.
    pub report: String,
}

/// Fixed bucket width for the utilization timeline.
const BUCKET: SimDuration = SimDuration::from_micros(10);

/// How many of the slowest lifecycles the report lists individually.
const SLOWEST: usize = 5;

/// Run `spec` for protocol `p` with the flight recorder capped at `cap`
/// records, and fold the trace into the run's artifacts.
pub fn trace_run(p: Protocol, spec: &ScenarioSpec, cap: usize) -> TraceRun {
    let mut opts = OnewayOpts::default().with_trace();
    opts.trace_cap = cap;
    let res = run_protocol_scenario(p, spec, &opts, None);

    let jsonl = render_jsonl(&res.trace);
    let mut rep = String::new();
    let _ = writeln!(rep, "=== trace: {} ===", spec.to_spec_line());
    let _ = writeln!(
        rep,
        "protocol {}; injected {}, delivered {}; trace records {} ({} dropped)",
        p.name(),
        res.injected,
        res.delivered,
        res.trace.len(),
        res.trace_dropped,
    );
    let g = &res.stats.grants;
    let _ = writeln!(
        rep,
        "grants: {} issued, {} bytes credit; resends requested: {}",
        g.grants_issued, g.granted_bytes, g.resends_requested
    );

    // Per-priority utilization over TOR→host downlinks (ports
    // 0..hosts_per_rack on every TOR are the host-facing ones).
    let hpr = spec.topology().hosts_per_rack;
    let tl = Timeline::from_records(&res.trace, BUCKET, res.duration, |node, port| {
        matches!(node, NodeId::Tor(_)) && port < hpr
    });
    let util = tl.utilization_by_prio();
    rep.push('\n');
    let _ = writeln!(
        rep,
        "TOR-downlink utilization by priority ({}us buckets over {:.3}ms, {} active ports)",
        BUCKET.as_nanos() / 1_000,
        res.duration.as_nanos() as f64 / 1e6,
        tl.ports,
    );
    let _ = writeln!(rep, "  prio  util");
    for (prio, u) in util.iter().enumerate() {
        let _ = writeln!(rep, "  P{prio}    {u:.4}");
    }
    let _ = writeln!(rep, "  all   {:.4}", util.iter().sum::<f64>());

    // Message lifecycles: only messages that completed inside the trace
    // contribute to the time breakdowns.
    let lifecycles = summarize_messages(&res.trace);
    let done: Vec<&MsgLifecycle> = lifecycles.iter().filter(|l| l.delivered.is_some()).collect();
    rep.push('\n');
    let _ = writeln!(
        rep,
        "message lifecycles ({} started, {} delivered in-trace)",
        lifecycles.len(),
        done.len()
    );
    if !done.is_empty() {
        let n = done.len() as f64;
        let lat: Vec<u64> =
            done.iter().map(|l| l.latency().map(|d| d.as_nanos()).unwrap_or(0)).collect();
        let mean = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / n / 1_000.0;
        let max = |xs: &[u64]| xs.iter().copied().max().unwrap_or(0) as f64 / 1_000.0;
        let queued: Vec<u64> = done.iter().map(|l| l.queued_ns).collect();
        let tx: Vec<u64> = done.iter().map(|l| l.tx_ns).collect();
        let _ = writeln!(rep, "  latency:  mean {:9.2}us  max {:9.2}us", mean(&lat), max(&lat));
        let _ =
            writeln!(rep, "  queueing: mean {:9.2}us  max {:9.2}us", mean(&queued), max(&queued));
        let _ = writeln!(rep, "  tx:       mean {:9.2}us  max {:9.2}us", mean(&tx), max(&tx));
        let _ = writeln!(
            rep,
            "  grants/msg: mean {:.2}   resends/msg: mean {:.2}",
            done.iter().map(|l| l.grants as u64).sum::<u64>() as f64 / n,
            done.iter().map(|l| l.resends as u64).sum::<u64>() as f64 / n,
        );
        let mut slowest = done.clone();
        slowest.sort_by_key(|l| std::cmp::Reverse(l.latency().map(|d| d.as_nanos()).unwrap_or(0)));
        let _ = writeln!(rep, "  slowest {} by latency:", SLOWEST.min(slowest.len()));
        let _ =
            writeln!(rep, "    src    dst    len        latency     queued      tx        grants");
        for l in slowest.iter().take(SLOWEST) {
            let _ = writeln!(
                rep,
                "    h{:<5} h{:<5} {:<10} {:>9.2}us {:>9.2}us {:>9.2}us {:>4}",
                l.src.0,
                l.dst.0,
                l.len,
                l.latency().map(|d| d.as_nanos()).unwrap_or(0) as f64 / 1_000.0,
                l.queued_ns as f64 / 1_000.0,
                l.tx_ns as f64 / 1_000.0,
                l.grants,
            );
        }
    }

    TraceRun { jsonl, kept: res.trace.len(), dropped: res.trace_dropped, report: rep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_harness::FabricSpec;
    use homa_workloads::Workload;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            "trace_tiny",
            FabricSpec::MultiTor { hosts: 16 },
            Workload::W2,
            0.5,
            60,
            42,
        )
    }

    #[test]
    fn traced_run_produces_jsonl_and_report() {
        let tr = trace_run(Protocol::Homa, &tiny_spec(), 1 << 20);
        assert_eq!(tr.dropped, 0, "tiny run must fit the ring");
        assert!(tr.kept > 0, "trace must not be empty");
        assert_eq!(tr.jsonl.lines().count(), tr.kept);
        // Every line is a flat JSON object with a time and an event tag.
        for line in tr.jsonl.lines().take(50) {
            assert!(line.starts_with("{\"t\":"), "bad line {line:?}");
            assert!(line.contains("\"ev\":"), "bad line {line:?}");
            assert!(line.ends_with('}'), "bad line {line:?}");
        }
        assert!(tr.report.contains("TOR-downlink utilization by priority"));
        assert!(tr.report.contains("message lifecycles"));
        assert!(tr.report.contains("delivered in-trace"));
    }

    #[test]
    fn tracing_does_not_change_the_run() {
        // The flight recorder must be observation-only: same spec, traced
        // and untraced, delivers the same messages over the same fabric
        // trajectory (event count is the fingerprint).
        let spec = tiny_spec();
        let traced =
            run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default().with_trace(), None);
        let plain = run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default(), None);
        assert_eq!(traced.delivered, plain.delivered);
        assert_eq!(traced.stats.events_processed, plain.stats.events_processed);
        assert_eq!(traced.duration, plain.duration);
        assert!(!traced.trace.is_empty());
        assert!(plain.trace.is_empty());
    }
}
