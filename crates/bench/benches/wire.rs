//! Micro-benchmarks for the binary wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use homa::packets::{DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId};

fn data_packet(payload: u32) -> (HomaPacket, Vec<u8>) {
    (
        HomaPacket::Data(DataHeader {
            key: MsgKey { origin: PeerId(3), seq: 77, dir: Dir::Request },
            msg_len: 1_000_000,
            offset: 42_000,
            payload,
            prio: 5,
            unscheduled: false,
            retransmit: false,
            incast_mark: false,
            tag: 9,
        }),
        vec![0xAB; payload as usize],
    )
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let (pkt, payload) = data_packet(1_400);
    g.throughput(Throughput::Bytes(1_400 + 46));
    g.bench_function("encode_data_1400", |b| {
        b.iter(|| homa_wire::encode(std::hint::black_box(&pkt), std::hint::black_box(&payload)))
    });
    let encoded = homa_wire::encode(&pkt, &payload);
    g.bench_function("decode_data_1400", |b| {
        b.iter(|| homa_wire::decode(std::hint::black_box(&encoded)).expect("valid"))
    });
    let grant = HomaPacket::Grant(GrantHeader {
        key: MsgKey { origin: PeerId(1), seq: 2, dir: Dir::Oneway },
        offset: 123,
        prio: 3,
        cutoffs: None,
    });
    g.bench_function("encode_grant", |b| {
        b.iter(|| homa_wire::encode(std::hint::black_box(&grant), &[]))
    });
    let eg = homa_wire::encode(&grant, &[]);
    g.bench_function("decode_grant", |b| {
        b.iter(|| homa_wire::decode(std::hint::black_box(&eg)).expect("valid"))
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
