//! End-to-end simulation throughput: how many simulated messages per
//! wall-clock second the full stack sustains, for Homa and each baseline.
//! (Criterion companion to the `repro` binary's figure runs.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_workloads::Workload;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let spec = ScenarioSpec::new(
        "bench_oneway_w2",
        FabricSpec::SingleSwitch { hosts: 8 },
        Workload::W2,
        0.6,
        500,
        1,
    );
    for p in [Protocol::Homa, Protocol::Basic, Protocol::Pfabric, Protocol::Phost, Protocol::Pias] {
        g.bench_with_input(BenchmarkId::new("oneway_500msgs_w2", p.name()), &p, |b, &p| {
            b.iter(|| {
                let res = run_protocol_scenario(p, &spec, &OnewayOpts::default(), None);
                assert!(res.delivered >= 495);
                res.delivered
            })
        });
    }
    g.finish();
}

fn bench_fabric_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (label, fabric) in [
        ("single16", FabricSpec::SingleSwitch { hosts: 16 }),
        ("fabric24", FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 }),
    ] {
        let spec = ScenarioSpec::new("bench_w1_1k", fabric, Workload::W1, 0.8, 1_000, 2);
        g.bench_function(format!("homa_w1_1k_{label}"), |b| {
            b.iter(|| {
                let res =
                    run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default(), None);
                assert_eq!(res.delivered, 1_000);
            })
        });
    }
    g.finish();
}

/// The perf-smoke shape as a criterion bench: W4 at 80% on the 100-host
/// multi-TOR fabric, on each event engine.
fn bench_100host_engines(c: &mut Criterion) {
    use homa_harness::{FabricSpec, ScenarioSpec};
    use homa_sim::EngineKind;
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (label, engine) in [("hier", EngineKind::Hierarchical), ("legacy", EngineKind::LegacyHeap)]
    {
        let spec = ScenarioSpec::new(
            "bench_100h",
            FabricSpec::MultiTor { hosts: 100 },
            Workload::W4,
            0.8,
            500,
            2,
        )
        .with_engine(engine);
        g.bench_function(format!("homa_w4_100host_{label}"), |b| {
            b.iter(|| {
                let res =
                    run_protocol_scenario(Protocol::Homa, &spec, &OnewayOpts::default(), None);
                assert!(res.delivered >= 495);
                res.stats.events_processed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols, bench_fabric_scale, bench_100host_engines);
criterion_main!(benches);
