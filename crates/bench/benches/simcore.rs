//! Micro-benchmarks for the simulation kernel: event queue and priority
//! queues.

use criterion::{criterion_group, criterion_main, Criterion};
use homa_sim::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                // Pseudo-random times to exercise heap reordering.
                let t = (i.wrapping_mul(2654435761)) % 100_000;
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_port_queue(c: &mut Criterion) {
    use homa_sim::queues::PortQueue;
    use homa_sim::{Packet, PacketMeta, QueueDiscipline};

    #[derive(Debug, Clone)]
    struct M(u32, u8);
    impl PacketMeta for M {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
        fn priority(&self) -> u8 {
            self.1
        }
        fn is_control(&self) -> bool {
            false
        }
        fn goodput_bytes(&self) -> u32 {
            self.0
        }
    }

    let mut g = c.benchmark_group("simcore");
    g.bench_function("strict_priority_enqueue_dequeue_256", |b| {
        b.iter(|| {
            let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline::strict8(1 << 20));
            for i in 0..256u32 {
                let pkt =
                    Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), M(1_460, (i % 8) as u8));
                q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
            }
            let mut n = 0;
            while q.dequeue(SimTime::from_nanos(1_000)).is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_port_queue);
criterion_main!(benches);
