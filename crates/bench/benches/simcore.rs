//! Micro-benchmarks for the simulation kernel: event queues (flat and
//! hierarchical), sustained churn at 100-host scale, and priority queues.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use homa_sim::{EngineKind, EventEngine, EventQueue, LaneId, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore");
    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                // Pseudo-random times to exercise heap reordering.
                let t = (i.wrapping_mul(2654435761)) % 100_000;
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

/// The operation sequence of a sustained churn benchmark: near-monotone
/// per-lane times (the TxDone / SwitchArrive pattern — each lane's next
/// event is almost always later than its last), with ~3% of arrivals
/// slightly out of order. Pre-generated — absolute times included — so
/// every engine replays identical operations and the timed loop contains
/// nothing but engine work.
fn churn_ops(lanes: u32, n: usize) -> Vec<(u32, u64)> {
    let mut lcg = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg >> 33
    };
    let mut lane_clock = vec![0i64; lanes as usize];
    (0..n)
        .map(|_| {
            let lane = (next() % lanes as u64) as u32;
            let r = next();
            let delta = if r % 33 == 0 { -((r % 500) as i64) } else { (r % 2_000) as i64 };
            let t = (lane_clock[lane as usize] + delta).max(0);
            lane_clock[lane as usize] = t.max(lane_clock[lane as usize]);
            (lane, t as u64)
        })
        .collect()
}

/// Sustained event churn shaped like the multi-TOR fabrics the perf gate
/// runs (40 hosts → 47 lanes, 100 → 113, 160 → 179): a deep steady
/// state, then one pop + one push per step. Run on both engines over the
/// *identical* operation sequence — this pair is the ROADMAP's "2x churn"
/// measurement (see EXPERIMENTS.md).
fn bench_engine_churn(c: &mut Criterion) {
    const STEADY: usize = 20_000;
    const STEPS: usize = 100_000;

    // (host count, lanes = hosts + TORs + spines) per Topology::multi_tor.
    for (hosts, lanes) in [(40u32, 47u32), (100, 113), (160, 179)] {
        let ops = churn_ops(lanes, STEADY + STEPS);
        let run = |kind: EngineKind| {
            let mut q: EventEngine<u64> = EventEngine::new(kind, lanes);
            for (i, &(lane, t)) in ops[..STEADY].iter().enumerate() {
                q.schedule(LaneId(lane), SimTime::from_nanos(t), i as u64);
            }
            let mut acc = 0u64;
            for (i, &(lane, t)) in ops[STEADY..].iter().enumerate() {
                let (_, v) = q.pop().expect("steady state");
                acc = acc.wrapping_add(v);
                q.schedule(LaneId(lane), SimTime::from_nanos(t), i as u64);
            }
            acc
        };
        let mut g = c.benchmark_group("simcore");
        g.sample_size(10);
        g.bench_function(format!("engine_churn_{hosts}host_hier"), |b| {
            b.iter(|| black_box(run(EngineKind::Hierarchical)))
        });
        g.bench_function(format!("engine_churn_{hosts}host_flat"), |b| {
            b.iter(|| black_box(run(EngineKind::LegacyHeap)))
        });
        g.finish();
    }

    // The `event_queue_push_pop_1k` pattern at 100-host scale: fill 100k
    // events across the fabric's lanes, then drain completely.
    let ops = churn_ops(113, 100_000);
    let fill_drain = move |kind: EngineKind| {
        let mut q: EventEngine<u64> = EventEngine::new(kind, 113);
        for (i, &(lane, t)) in ops.iter().enumerate() {
            q.schedule(LaneId(lane), SimTime::from_nanos(t), i as u64);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    };
    let mut g = c.benchmark_group("simcore");
    g.sample_size(10);
    g.bench_function("event_queue_push_pop_100k_hier", |b| {
        b.iter(|| black_box(fill_drain(EngineKind::Hierarchical)))
    });
    g.bench_function("event_queue_push_pop_100k_flat", |b| {
        b.iter(|| black_box(fill_drain(EngineKind::LegacyHeap)))
    });
    g.finish();
}

fn bench_port_queue(c: &mut Criterion) {
    use homa_sim::queues::PortQueue;
    use homa_sim::{Packet, PacketMeta, QueueDiscipline};

    #[derive(Debug, Clone)]
    struct M(u32, u8);
    impl PacketMeta for M {
        fn wire_bytes(&self) -> u32 {
            self.0
        }
        fn priority(&self) -> u8 {
            self.1
        }
        fn is_control(&self) -> bool {
            false
        }
        fn goodput_bytes(&self) -> u32 {
            self.0
        }
    }

    let mut g = c.benchmark_group("simcore");
    g.bench_function("strict_priority_enqueue_dequeue_256", |b| {
        b.iter(|| {
            let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline::strict8(1 << 20));
            for i in 0..256u32 {
                let pkt =
                    Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), M(1_460, (i % 8) as u8));
                q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
            }
            let mut n = 0;
            while q.dequeue(SimTime::from_nanos(1_000)).is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine_churn, bench_port_queue);
criterion_main!(benches);
