//! Micro-benchmarks for the Homa protocol state machines: how fast can a
//! sender/receiver pair push a message through the endpoint logic
//! (no fabric, zero-latency shuttle)?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use homa::packets::PeerId;
use homa::{HomaConfig, HomaEndpoint};

fn shuttle_message(len: u64) -> u64 {
    let mut a = HomaEndpoint::new(PeerId(0), HomaConfig::default());
    let mut b = HomaEndpoint::new(PeerId(1), HomaConfig::default());
    a.send_message(0, PeerId(1), len, 1);
    let mut packets = 0u64;
    loop {
        let mut moved = false;
        while let Some((_, pkt)) = a.poll_transmit(0) {
            packets += 1;
            b.on_packet(0, PeerId(0), pkt);
            moved = true;
        }
        while let Some((_, pkt)) = b.poll_transmit(0) {
            packets += 1;
            a.on_packet(0, PeerId(1), pkt);
            moved = true;
        }
        if !moved {
            break;
        }
    }
    assert_eq!(b.delivered_msgs(), 1);
    packets
}

fn bench_endpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("endpoint");
    for len in [100u64, 10_000, 1_000_000] {
        g.throughput(Throughput::Bytes(len));
        g.bench_function(format!("message_{len}B"), |b| {
            b.iter(|| shuttle_message(std::hint::black_box(len)))
        });
    }
    g.bench_function("rpc_echo_1KB", |b| {
        b.iter(|| {
            let mut a = HomaEndpoint::new(PeerId(0), HomaConfig::default());
            let mut sv = HomaEndpoint::new(PeerId(1), HomaConfig::default());
            a.begin_rpc(0, PeerId(1), 1_000, 7);
            for _ in 0..8 {
                while let Some((_, pkt)) = a.poll_transmit(0) {
                    sv.on_packet(0, PeerId(0), pkt);
                }
                for ev in sv.take_events() {
                    if let homa::HomaEvent::RequestArrived { client, rpc_seq, len, .. } = ev {
                        sv.send_response(0, client, rpc_seq, len, 0);
                    }
                }
                while let Some((_, pkt)) = sv.poll_transmit(0) {
                    a.on_packet(0, PeerId(1), pkt);
                }
            }
            assert!(a
                .take_events()
                .iter()
                .any(|e| matches!(e, homa::HomaEvent::RpcCompleted { .. })));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_endpoint);
criterion_main!(benches);
