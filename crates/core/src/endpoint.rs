//! The top-level Homa endpoint: one per host.
//!
//! [`HomaEndpoint`] composes the sender and receiver state machines with
//! the RPC layer (§3.1), incast control (§3.6), loss recovery (§3.7),
//! at-least-once re-execution (§3.8) and cutoff dissemination (§3.4).
//! It is a pure state machine: feed it packets and clock ticks, pull
//! packets out of it. Both the simulator adapter and the UDP driver are
//! thin shells around this type.

use crate::config::HomaConfig;
use crate::packets::{
    BusyHeader, CutoffsUpdate, DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId,
    ResendHeader,
};
use crate::receiver::{InboundAbort, ReceiverState};
use crate::sender::{ResendReaction, SenderState};
use crate::unsched::{PriorityMap, TrafficTracker};
use crate::Nanos;
use std::collections::{HashMap, VecDeque};

/// Application-visible events produced by the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomaEvent {
    /// A one-way message arrived in full.
    MessageDelivered {
        /// Sender of the message.
        src: PeerId,
        /// Sender-assigned message sequence number (with `src`, uniquely
        /// identifies the message; payload-carrying drivers key their
        /// reassembly buffers on it).
        seq: u64,
        /// Message length in bytes.
        len: u64,
        /// Application tag from the sender.
        tag: u64,
    },
    /// An RPC request arrived; the application should eventually call
    /// [`HomaEndpoint::send_response`] with the given sequence number.
    RequestArrived {
        /// The client that issued the RPC.
        client: PeerId,
        /// RPC sequence number (pass back to `send_response`).
        rpc_seq: u64,
        /// Request length in bytes.
        len: u64,
        /// Application tag.
        tag: u64,
    },
    /// An RPC we issued completed: its response arrived in full.
    RpcCompleted {
        /// The server.
        server: PeerId,
        /// The RPC sequence returned by `begin_rpc`.
        rpc_seq: u64,
        /// The tag passed to `begin_rpc`.
        tag: u64,
        /// Response length in bytes.
        resp_len: u64,
    },
    /// An RPC we issued was aborted after repeated unanswered RESENDs.
    RpcAborted {
        /// The server that stopped responding.
        server: PeerId,
        /// The tag passed to `begin_rpc`.
        tag: u64,
    },
    /// An inbound message was abandoned (its sender went silent).
    InboundAborted {
        /// The message that was abandoned mid-receive.
        key: MsgKey,
        /// The sender that went silent.
        src: PeerId,
    },
    /// An outbound message was abandoned because its receiver went
    /// silent: a one-way the receiver never granted despite repeated
    /// first-packet retransmissions, or a response whose client stopped
    /// granting (it completed or aborted the RPC on its side).
    OutboundAborted {
        /// The unreachable receiver.
        dst: PeerId,
        /// Tag of the abandoned message.
        tag: u64,
    },
}

/// Client-side state for an outstanding RPC.
#[derive(Debug)]
struct ClientRpc {
    server: PeerId,
    tag: u64,
    /// True until the first response packet arrives (after which the
    /// receiver's own gap-chasing takes over loss recovery).
    awaiting_first_response: bool,
    last_activity: Nanos,
    resends: u32,
}

/// Server-side record of a delivered request awaiting its response.
#[derive(Debug)]
struct ServerRpc {
    client: PeerId,
    incast_mark: bool,
}

/// A complete Homa protocol endpoint.
#[derive(Debug)]
pub struct HomaEndpoint {
    me: PeerId,
    cfg: HomaConfig,
    sender: SenderState,
    receiver: ReceiverState,
    /// Our downlink's priority allocation (receiver role), disseminated
    /// to peers.
    local_map: PriorityMap,
    /// Allocation to use when sending to a peer we have not heard from.
    default_peer_map: PriorityMap,
    /// Allocations learned from peers (sender role).
    peer_maps: HashMap<PeerId, PriorityMap>,
    /// `local_map.version` most recently sent to each peer.
    version_sent: HashMap<PeerId, u64>,
    tracker: TrafficTracker,
    tracker_last_recompute: u64,
    ctrl: VecDeque<(PeerId, HomaPacket)>,
    events: Vec<HomaEvent>,
    /// Every RESEND this endpoint has queued for the wire: receiver-side
    /// gap chasing, client-side response chasing, and server-side request
    /// re-requests (§3.7).
    resends_sent: u64,
    next_seq: u64,
    client_rpcs: HashMap<u64, ClientRpc>,
    server_rpcs: HashMap<MsgKey, ServerRpc>,
}

impl HomaEndpoint {
    /// A new endpoint for peer `me`.
    pub fn new(me: PeerId, cfg: HomaConfig) -> Self {
        cfg.validate();
        let map = PriorityMap::default_for(&cfg);
        HomaEndpoint {
            me,
            sender: SenderState::new(cfg.clone()),
            receiver: ReceiverState::new(cfg.clone()),
            local_map: map.clone(),
            default_peer_map: map,
            peer_maps: HashMap::new(),
            version_sent: HashMap::new(),
            tracker: TrafficTracker::new(),
            tracker_last_recompute: 0,
            ctrl: VecDeque::new(),
            events: Vec::new(),
            resends_sent: 0,
            next_seq: 1,
            client_rpcs: HashMap::new(),
            server_rpcs: HashMap::new(),
            cfg,
        }
    }

    /// This endpoint's peer id.
    pub fn peer_id(&self) -> PeerId {
        self.me
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HomaConfig {
        &self.cfg
    }

    /// Install a precomputed priority allocation, used both for our own
    /// downlink and as the assumed allocation of every peer. This models
    /// the paper's implementation, where cutoffs were "precomputed based
    /// on knowledge of the benchmark workload" (§4).
    pub fn set_static_priority_map(&mut self, map: PriorityMap) {
        self.local_map = map.clone();
        self.default_peer_map = map;
        self.peer_maps.clear();
    }

    /// The current local (receiver-role) priority allocation.
    pub fn priority_map(&self) -> &PriorityMap {
        &self.local_map
    }

    /// Begin a one-way message; returns its sequence number.
    pub fn send_message(&mut self, now: Nanos, dst: PeerId, len: u64, tag: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = MsgKey { origin: self.me, seq, dir: Dir::Oneway };
        let map = self.peer_maps.get(&dst).unwrap_or(&self.default_peer_map);
        self.sender.start_message(now, key, dst, len, tag, false, map);
        seq
    }

    /// Begin an RPC; returns its sequence number. The response is
    /// reported via [`HomaEvent::RpcCompleted`] carrying `tag`.
    pub fn begin_rpc(&mut self, now: Nanos, server: PeerId, req_len: u64, tag: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Incast control (§3.6): mark requests issued while many RPCs are
        // already outstanding, so the server clamps the response's blind
        // prefix.
        let incast_mark = self.client_rpcs.len() as u32 >= self.cfg.incast_threshold;
        let key = MsgKey { origin: self.me, seq, dir: Dir::Request };
        let map = self.peer_maps.get(&server).unwrap_or(&self.default_peer_map);
        self.sender.start_message(now, key, server, req_len, tag, incast_mark, map);
        self.client_rpcs.insert(
            seq,
            ClientRpc {
                server,
                tag,
                awaiting_first_response: true,
                last_activity: now,
                resends: 0,
            },
        );
        seq
    }

    /// Send the response for a previously-delivered request (identified by
    /// the client peer and RPC sequence from [`HomaEvent::RequestArrived`]).
    pub fn send_response(
        &mut self,
        now: Nanos,
        client: PeerId,
        rpc_seq: u64,
        resp_len: u64,
        tag: u64,
    ) {
        let req_key = MsgKey { origin: client, seq: rpc_seq, dir: Dir::Request };
        let incast_mark = self
            .server_rpcs
            .remove(&req_key)
            .map(|s| {
                debug_assert_eq!(s.client, client);
                s.incast_mark
            })
            .unwrap_or(false);
        let key = req_key.flipped();
        let map = self.peer_maps.get(&client).unwrap_or(&self.default_peer_map);
        self.sender.start_message(now, key, client, resp_len, tag, incast_mark, map);
    }

    /// Number of RPCs this endpoint has outstanding as a client.
    pub fn outstanding_rpcs(&self) -> usize {
        self.client_rpcs.len()
    }

    /// Process an incoming packet from `from`.
    pub fn on_packet(&mut self, now: Nanos, from: PeerId, pkt: HomaPacket) {
        match pkt {
            HomaPacket::Data(hdr) => self.on_data(now, from, hdr),
            HomaPacket::Grant(g) => {
                if let Some(c) = &g.cutoffs {
                    self.apply_cutoffs(from, c);
                }
                self.sender.on_grant(now, g.key, g.offset, g.prio);
            }
            HomaPacket::Resend(r) => self.on_resend(now, from, r),
            HomaPacket::Busy(b) => {
                self.receiver.on_busy(now, b.key);
                // A BUSY about a response also reassures the waiting
                // client RPC.
                if b.key.dir == Dir::Response && b.key.origin == self.me {
                    if let Some(rpc) = self.client_rpcs.get_mut(&b.key.seq) {
                        rpc.last_activity = now;
                        rpc.resends = 0;
                    }
                }
            }
            HomaPacket::Cutoffs(c) => self.apply_cutoffs(from, &c),
        }
    }

    fn apply_cutoffs(&mut self, from: PeerId, c: &CutoffsUpdate) {
        let entry = self.peer_maps.entry(from).or_insert_with(|| self.default_peer_map.clone());
        entry.apply_update(c);
    }

    fn on_data(&mut self, now: Nanos, from: PeerId, hdr: DataHeader) {
        // Traffic measurement for dynamic cutoffs: account each message
        // once, on its first packet.
        if self.cfg.dynamic_cutoffs && hdr.offset == 0 && !hdr.retransmit {
            self.tracker.record(hdr.msg_len, self.cfg.unsched_limit);
        }

        // Response packets reassure the client RPC immediately.
        if hdr.key.dir == Dir::Response && hdr.key.origin == self.me {
            match self.client_rpcs.get_mut(&hdr.key.seq) {
                Some(rpc) => {
                    rpc.awaiting_first_response = false;
                    rpc.last_activity = now;
                    rpc.resends = 0;
                }
                // Stray packet for an RPC that already completed or
                // aborted (a duplicate from re-execution, or a
                // retransmission that crossed the completing packet).
                // Discard it: resurrecting receiver state for it would
                // create a "ghost" inbound message with no live sender,
                // which would squat on an overcommitment slot.
                None => return,
            }
        }

        let mut grants: Vec<(PeerId, GrantHeader)> = Vec::new();
        let delivered =
            self.receiver.on_data(now, from, &hdr, &self.local_map.clone(), &mut grants);
        for (dst, mut g) in grants {
            // Piggyback our cutoff allocation on grants to peers that have
            // not seen the current version (§3.4 dissemination).
            let sent = self.version_sent.entry(dst).or_insert(u64::MAX);
            if *sent != self.local_map.version {
                g.cutoffs = Some(self.local_map.to_update());
                *sent = self.local_map.version;
            }
            self.ctrl.push_back((dst, HomaPacket::Grant(g)));
        }

        if let Some(d) = delivered {
            match d.key.dir {
                Dir::Oneway => self.events.push(HomaEvent::MessageDelivered {
                    src: d.src,
                    seq: d.key.seq,
                    len: d.len,
                    tag: d.tag,
                }),
                Dir::Request => {
                    self.server_rpcs
                        .insert(d.key, ServerRpc { client: d.src, incast_mark: d.incast_mark });
                    self.events.push(HomaEvent::RequestArrived {
                        client: d.src,
                        rpc_seq: d.key.seq,
                        len: d.len,
                        tag: d.tag,
                    });
                }
                Dir::Response => {
                    if d.key.origin == self.me {
                        if let Some(rpc) = self.client_rpcs.remove(&d.key.seq) {
                            // The response acknowledges the request: drop
                            // the request's sender state (§3.1 — "the
                            // response serves as an acknowledgment").
                            self.sender.remove(d.key.flipped());
                            self.events.push(HomaEvent::RpcCompleted {
                                server: rpc.server,
                                rpc_seq: d.key.seq,
                                tag: rpc.tag,
                                resp_len: d.len,
                            });
                        }
                        // Duplicate responses (re-execution) are dropped
                        // here: the RPC entry is already gone.
                    }
                }
            }
        }
    }

    fn on_resend(&mut self, now: Nanos, from: PeerId, r: ResendHeader) {
        match self.sender.on_resend(r.key, r.offset, r.length, r.prio) {
            ResendReaction::Queued => {}
            ResendReaction::QueuedButBusy(b) => {
                self.ctrl.push_back((from, HomaPacket::Busy(b)));
            }
            ResendReaction::Unknown => {
                match r.key.dir {
                    // A RESEND for a response we know nothing about: the
                    // paper's server-side recovery (§3.7) — assume the
                    // request was lost and ask for its first RTTbytes,
                    // which leads to re-execution (§3.8). If the request
                    // is in fact still arriving or still executing, send
                    // BUSY instead so the client keeps waiting.
                    Dir::Response => {
                        let req_key = r.key.flipped();
                        let request_in_progress = self.receiver.get(req_key).is_some()
                            || self.server_rpcs.contains_key(&req_key);
                        if request_in_progress {
                            self.ctrl
                                .push_back((from, HomaPacket::Busy(BusyHeader { key: r.key })));
                            self.receiver.on_busy(now, req_key);
                        } else {
                            self.resends_sent += 1;
                            self.ctrl.push_back((
                                from,
                                HomaPacket::Resend(ResendHeader {
                                    key: req_key,
                                    offset: 0,
                                    length: self.cfg.rtt_bytes,
                                    prio: self
                                        .local_map
                                        .sched_prio(self.local_map.max_sched_prio()),
                                }),
                            ));
                        }
                    }
                    // A RESEND for a request or one-way whose state we
                    // discarded: nothing useful to do (the RPC completed,
                    // aborted, or never existed).
                    Dir::Request | Dir::Oneway => {}
                }
            }
        }
    }

    /// Periodic housekeeping: loss-detection sweeps, client RPC timeouts,
    /// lingering-state expiry, and (optionally) dynamic cutoff refresh.
    /// Call every few hundred microseconds.
    pub fn timer_tick(&mut self, now: Nanos) {
        // Receiver-side gap chasing.
        let mut resends: Vec<(PeerId, ResendHeader)> = Vec::new();
        let mut aborts: Vec<InboundAbort> = Vec::new();
        let mut grants: Vec<(PeerId, GrantHeader)> = Vec::new();
        self.receiver.timer_tick(
            now,
            &self.local_map.clone(),
            &mut resends,
            &mut aborts,
            &mut grants,
        );
        for (dst, r) in resends {
            self.resends_sent += 1;
            self.ctrl.push_back((dst, HomaPacket::Resend(r)));
        }
        for (dst, g) in grants {
            self.ctrl.push_back((dst, HomaPacket::Grant(g)));
        }
        for a in aborts {
            // An abandoned inbound *response* is the death of one of our
            // own RPCs: once its first packet arrived the client sweep
            // below stops chasing it (`awaiting_first_response` is
            // false), so if we dropped only the receiver state here the
            // RPC entry — and the retained request sender state that is
            // only released by the response (§3.1) — would leak forever.
            // Abort the RPC instead of reporting a generic inbound abort.
            if a.key.dir == Dir::Response && a.key.origin == self.me {
                if let Some(rpc) = self.client_rpcs.remove(&a.key.seq) {
                    self.sender.remove(a.key.flipped());
                    self.events.push(HomaEvent::RpcAborted { server: rpc.server, tag: rpc.tag });
                    continue;
                }
            }
            self.events.push(HomaEvent::InboundAborted { key: a.key, src: a.src });
        }

        // Client-side response timeouts (§3.7): chase responses that have
        // not produced a single packet yet — sent "even if the request has
        // not been fully transmitted".
        let mut dead: Vec<u64> = Vec::new();
        let mut chase: Vec<(PeerId, u64)> = Vec::new();
        // Sorted order: the chase RESENDs go on the wire in this order,
        // and HashMap iteration order is not run-to-run deterministic.
        let mut seqs: Vec<u64> = self.client_rpcs.keys().copied().collect();
        seqs.sort_unstable();
        for seq in seqs {
            let rpc = self.client_rpcs.get_mut(&seq).expect("seq just collected");
            if !rpc.awaiting_first_response {
                continue;
            }
            if now.saturating_sub(rpc.last_activity) < self.cfg.resend_interval_ns {
                continue;
            }
            if rpc.resends >= self.cfg.abort_after_resends {
                dead.push(seq);
                continue;
            }
            rpc.resends += 1;
            rpc.last_activity = now;
            chase.push((rpc.server, seq));
        }
        for (server, seq) in chase {
            let key = MsgKey { origin: self.me, seq, dir: Dir::Response };
            self.resends_sent += 1;
            self.ctrl.push_back((
                server,
                HomaPacket::Resend(ResendHeader {
                    key,
                    offset: 0,
                    length: self.cfg.rtt_bytes,
                    prio: self.local_map.sched_prio(self.local_map.max_sched_prio()),
                }),
            ));
        }
        for seq in dead {
            let rpc = self.client_rpcs.remove(&seq).expect("dead rpc exists");
            self.sender.remove(MsgKey { origin: self.me, seq, dir: Dir::Request });
            self.events.push(HomaEvent::RpcAborted { server: rpc.server, tag: rpc.tag });
        }

        self.sender.expire_lingering(now);

        // Sender-side stall recovery: one-way messages whose entire
        // blind prefix was lost (the receiver cannot chase what it never
        // learned about) and responses whose client has gone silent.
        for (dst, tag) in self.sender.poke_stalled(now) {
            self.events.push(HomaEvent::OutboundAborted { dst, tag });
        }
        if self.sender.has_transmittable() && self.ctrl.is_empty() {
            // A poke queued a retransmission; surfaced via has_pending_tx.
        }

        // Dynamic cutoff refresh (§3.4): recompute from observed traffic
        // and push the new allocation to peers we are receiving from.
        if self.cfg.dynamic_cutoffs
            && self.tracker.messages_seen()
                >= self.tracker_last_recompute + self.cfg.cutoff_refresh_msgs
        {
            self.tracker_last_recompute = self.tracker.messages_seen();
            let new_map = self.tracker.recompute(&self.cfg, self.local_map.version + 1);
            if new_map.cutoffs != self.local_map.cutoffs
                || new_map.unsched_levels != self.local_map.unsched_levels
            {
                self.local_map = new_map;
            }
        }
    }

    /// Pull the next packet for the wire: control packets first (they
    /// travel at the highest priority and unblock peers), then SRPT data.
    pub fn poll_transmit(&mut self, now: Nanos) -> Option<(PeerId, HomaPacket)> {
        if let Some(p) = self.ctrl.pop_front() {
            return Some(p);
        }
        self.sender.next_data_packet(now).map(|(dst, hdr)| (dst, HomaPacket::Data(hdr)))
    }

    /// Whether a call to [`poll_transmit`](Self::poll_transmit) would
    /// currently yield a packet.
    pub fn has_pending_tx(&self) -> bool {
        !self.ctrl.is_empty() || self.sender.has_transmittable()
    }

    /// Drain application events.
    pub fn take_events(&mut self) -> Vec<HomaEvent> {
        std::mem::take(&mut self.events)
    }

    /// The Figure 16 probe: is this receiver withholding grants because of
    /// the overcommitment limit?
    pub fn withholding_grants(&self) -> bool {
        self.receiver.withholding()
    }

    /// Application bytes delivered to this endpoint.
    pub fn delivered_bytes(&self) -> u64 {
        self.receiver.delivered_bytes()
    }

    /// Messages delivered to this endpoint.
    pub fn delivered_msgs(&self) -> u64 {
        self.receiver.delivered_msgs()
    }

    /// Incomplete inbound messages (diagnostics).
    pub fn inbound_count(&self) -> usize {
        self.receiver.inbound_count()
    }

    /// Grant packets this endpoint's receiver role has issued.
    pub fn grants_issued(&self) -> u64 {
        self.receiver.grants_issued()
    }

    /// Bytes of new credit the receiver role has extended via grants
    /// (unscheduled data's implicit credit excluded).
    pub fn granted_bytes(&self) -> u64 {
        self.receiver.granted_bytes()
    }

    /// RESEND packets this endpoint has queued for the wire, in any role.
    pub fn resends_sent(&self) -> u64 {
        self.resends_sent
    }

    /// Outbound messages with retained state (diagnostics).
    pub fn outbound_count(&self) -> usize {
        self.sender.active_messages()
    }

    /// Whether the sender still holds state for `key`. Drivers that
    /// store payloads outside the endpoint (e.g. the UDP node) use this
    /// to garbage-collect buffers: once the sender has dropped a
    /// message, no retransmission can ever ask for its bytes again.
    pub fn outbound_contains(&self, key: MsgKey) -> bool {
        self.sender.contains(key)
    }

    /// Snapshot of incomplete inbound messages (diagnostics); see
    /// [`crate::receiver::ReceiverState::inbound_snapshot`].
    pub fn inbound_snapshot(&self) -> Vec<(MsgKey, u64, u64, u64, u32)> {
        self.receiver.inbound_snapshot()
    }

    /// Snapshot of outbound messages (diagnostics); see
    /// [`crate::sender::SenderState::outbound_snapshot`].
    pub fn outbound_snapshot(&self) -> Vec<(MsgKey, u64, u64, u64, usize)> {
        self.sender.outbound_snapshot()
    }

    /// Delivered requests still waiting for the application to call
    /// [`send_response`](Self::send_response) (diagnostics; the stateful
    /// fuzzer's model uses this to drive its quiescence drain).
    pub fn server_rpcs_pending(&self) -> usize {
        self.server_rpcs.len()
    }

    /// Sequence numbers of outstanding client RPCs, sorted (diagnostics).
    pub fn client_rpc_seqs(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = self.client_rpcs.keys().copied().collect();
        seqs.sort_unstable();
        seqs
    }

    /// Control packets queued but not yet pulled by
    /// [`poll_transmit`](Self::poll_transmit) (diagnostics).
    pub fn pending_ctrl(&self) -> usize {
        self.ctrl.len()
    }
}

/// Drive packets between two endpoints until both go quiet — a test
/// helper that models a lossless, zero-latency wire (loss is injected by
/// the `drop` filter returning true).
#[cfg(test)]
pub(crate) fn shuttle(
    a: &mut HomaEndpoint,
    b: &mut HomaEndpoint,
    now: Nanos,
    mut drop: impl FnMut(&HomaPacket) -> bool,
) {
    loop {
        let mut progressed = false;
        while let Some((dst, pkt)) = a.poll_transmit(now) {
            progressed = true;
            assert_eq!(dst, b.peer_id(), "test shuttle only supports two peers");
            if !drop(&pkt) {
                b.on_packet(now, a.peer_id(), pkt);
            }
        }
        while let Some((dst, pkt)) = b.poll_transmit(now) {
            progressed = true;
            assert_eq!(dst, a.peer_id(), "test shuttle only supports two peers");
            if !drop(&pkt) {
                a.on_packet(now, b.peer_id(), pkt);
            }
        }
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (HomaEndpoint, HomaEndpoint) {
        (
            HomaEndpoint::new(PeerId(0), HomaConfig::default()),
            HomaEndpoint::new(PeerId(1), HomaConfig::default()),
        )
    }

    #[test]
    fn oneway_message_end_to_end() {
        let (mut a, mut b) = pair();
        a.send_message(0, PeerId(1), 50_000, 42);
        shuttle(&mut a, &mut b, 0, |_| false);
        let evs = b.take_events();
        assert_eq!(
            evs,
            vec![HomaEvent::MessageDelivered { src: PeerId(0), seq: 1, len: 50_000, tag: 42 }]
        );
        assert_eq!(b.delivered_bytes(), 50_000);
        assert_eq!(b.inbound_count(), 0);
    }

    #[test]
    fn rpc_end_to_end() {
        let (mut a, mut b) = pair();
        a.begin_rpc(0, PeerId(1), 300, 7);
        shuttle(&mut a, &mut b, 0, |_| false);
        let evs = b.take_events();
        let (client, rpc_seq) = match &evs[..] {
            [HomaEvent::RequestArrived { client, rpc_seq, len: 300, tag: 7 }] => {
                (*client, *rpc_seq)
            }
            other => panic!("unexpected events {other:?}"),
        };
        assert_eq!(client, PeerId(0));
        assert_eq!(a.outstanding_rpcs(), 1);
        b.send_response(0, client, rpc_seq, 12_345, 7);
        shuttle(&mut a, &mut b, 0, |_| false);
        let evs = a.take_events();
        assert_eq!(
            evs,
            vec![HomaEvent::RpcCompleted {
                server: PeerId(1),
                rpc_seq: 1,
                tag: 7,
                resp_len: 12_345
            }]
        );
        assert_eq!(a.outstanding_rpcs(), 0);
        // No state leaks: both sides clean.
        assert_eq!(a.inbound_count(), 0);
        assert_eq!(b.inbound_count(), 0);
        assert_eq!(b.outbound_count(), 0, "server kept no RPC state (§3.8)");
    }

    #[test]
    fn lost_data_recovered_by_resend() {
        let (mut a, mut b) = pair();
        a.send_message(0, PeerId(1), 20_000, 1);
        // Drop the third data packet once.
        let mut count = 0;
        shuttle(&mut a, &mut b, 0, |p| {
            if matches!(p, HomaPacket::Data(_)) {
                count += 1;
                count == 3
            } else {
                false
            }
        });
        assert!(b.take_events().is_empty(), "message incomplete after loss");
        // The receiver's loss sweep requests the gap; recovery completes.
        b.timer_tick(3_000_000);
        shuttle(&mut a, &mut b, 3_000_000, |_| false);
        let evs = b.take_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], HomaEvent::MessageDelivered { len: 20_000, .. }));
    }

    #[test]
    fn lost_response_triggers_reexecution() {
        // §3.7/§3.8: the server discards RPC state once the response is
        // sent. If the entire response is lost, the client RESENDs the
        // response; the server treats it as unknown and RESENDs the
        // request; the request retransmission re-executes the RPC.
        let (mut a, mut b) = pair();
        a.begin_rpc(0, PeerId(1), 200, 9);
        shuttle(&mut a, &mut b, 0, |_| false);
        let evs = b.take_events();
        let (client, rpc_seq) = match &evs[..] {
            [HomaEvent::RequestArrived { client, rpc_seq, .. }] => (*client, *rpc_seq),
            other => panic!("unexpected {other:?}"),
        };
        // Server responds but the whole response is lost.
        b.send_response(0, client, rpc_seq, 500, 9);
        shuttle(
            &mut a,
            &mut b,
            0,
            |p| matches!(p, HomaPacket::Data(h) if h.key.dir == Dir::Response),
        );
        assert!(a.take_events().is_empty());
        // Client times out and chases the response; the server re-requests
        // the request; client retransmits it; server re-executes
        // (RequestArrived fires again).
        a.timer_tick(3_000_000);
        shuttle(&mut a, &mut b, 3_000_000, |_| false);
        let evs = b.take_events();
        assert!(
            evs.iter().any(
                |e| matches!(e, HomaEvent::RequestArrived { rpc_seq: s, .. } if *s == rpc_seq)
            ),
            "request re-executed, got {evs:?}"
        );
        // Second execution's response completes the RPC.
        b.send_response(3_000_000, client, rpc_seq, 500, 9);
        shuttle(&mut a, &mut b, 3_000_000, |_| false);
        let evs = a.take_events();
        assert_eq!(
            evs,
            vec![HomaEvent::RpcCompleted { server: PeerId(1), rpc_seq, tag: 9, resp_len: 500 }]
        );
    }

    #[test]
    fn unresponsive_server_aborts_rpc() {
        let (mut a, _b) = pair();
        a.begin_rpc(0, PeerId(1), 100, 3);
        // Nothing ever comes back; tick through the retry budget.
        let mut t = 0;
        let mut aborted = false;
        for _ in 0..20 {
            t += 2_500_000;
            a.timer_tick(t);
            for e in a.take_events() {
                if matches!(e, HomaEvent::RpcAborted { tag: 3, .. }) {
                    aborted = true;
                }
            }
        }
        assert!(aborted, "client rpc aborted after retries");
        assert_eq!(a.outstanding_rpcs(), 0);
        assert_eq!(a.outbound_count(), 0);
    }

    #[test]
    fn incast_marked_requests_clamp_response_prefix() {
        let cfg = HomaConfig { incast_threshold: 2, ..HomaConfig::default() };
        let mut a = HomaEndpoint::new(PeerId(0), cfg.clone());
        let mut b = HomaEndpoint::new(PeerId(1), cfg);
        // Two outstanding RPCs below threshold, third gets marked.
        a.begin_rpc(0, PeerId(1), 10, 1);
        a.begin_rpc(0, PeerId(1), 10, 2);
        a.begin_rpc(0, PeerId(1), 10, 3);
        shuttle(&mut a, &mut b, 0, |_| false);
        let reqs: Vec<_> = b.take_events();
        assert_eq!(reqs.len(), 3);
        for e in &reqs {
            if let HomaEvent::RequestArrived { client, rpc_seq, .. } = e {
                b.send_response(0, *client, *rpc_seq, 50_000, 0);
            }
        }
        // Count blind (unscheduled) response bytes per message.
        let mut unsched: HashMap<u64, u64> = HashMap::new();
        while let Some((_, pkt)) = b.poll_transmit(0) {
            if let HomaPacket::Data(h) = &pkt {
                if h.unscheduled {
                    *unsched.entry(h.key.seq).or_default() += h.payload as u64;
                }
            }
            a.on_packet(0, PeerId(1), pkt);
            // Drain grants generated by `a` so `b` keeps sending.
            while let Some((_, back)) = a.poll_transmit(0) {
                b.on_packet(0, PeerId(0), back);
            }
        }
        let mut counts: Vec<u64> = unsched.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts[0], 400, "marked RPC's response clamped to incast limit");
        assert_eq!(counts[1], 9_700);
        assert_eq!(counts[2], 9_700);
    }

    #[test]
    fn cutoffs_disseminate_via_grants() {
        let cfg =
            HomaConfig { dynamic_cutoffs: true, cutoff_refresh_msgs: 10, ..HomaConfig::default() };
        let mut a = HomaEndpoint::new(PeerId(0), cfg.clone());
        let mut b = HomaEndpoint::new(PeerId(1), cfg);
        // Send enough small messages to trigger a recompute at b...
        for i in 0..20 {
            a.send_message(0, PeerId(1), 200, i);
            shuttle(&mut a, &mut b, 0, |_| false);
        }
        b.timer_tick(1_000_000);
        assert!(b.priority_map().version > 0, "b recomputed cutoffs");
        // ...then a large message so b issues grants carrying the update.
        a.send_message(1_000_000, PeerId(1), 100_000, 99);
        shuttle(&mut a, &mut b, 1_000_000, |_| false);
        let learned = a.peer_maps.get(&PeerId(1)).expect("a learned b's map");
        assert_eq!(learned.version, b.priority_map().version);
        assert_eq!(learned.unsched_levels, b.priority_map().unsched_levels);
    }

    #[test]
    fn many_concurrent_messages_all_complete() {
        let (mut a, mut b) = pair();
        for i in 0..50 {
            a.send_message(0, PeerId(1), 1_000 + i * 997, i);
        }
        shuttle(&mut a, &mut b, 0, |_| false);
        let evs = b.take_events();
        assert_eq!(evs.len(), 50);
        let total: u64 = (0..50).map(|i| 1_000 + i * 997).sum();
        assert_eq!(b.delivered_bytes(), total);
        assert_eq!(a.outbound_count(), 50, "one-way state lingers until expiry");
        a.timer_tick(100_000_000);
        assert_eq!(a.outbound_count(), 0);
    }

    /// Regression (found by the stateful model fuzzer): once the first
    /// response packet arrives, the client sweep stops chasing the RPC
    /// (`awaiting_first_response` is false) — loss recovery belongs to
    /// the receiver's gap chasing. If the receiver then gives up on the
    /// partially-received response, the endpoint used to report only a
    /// generic `InboundAborted` and leave the client RPC entry (plus the
    /// retained request sender state) leaked forever: never completed,
    /// never aborted. The inbound-response abort must abort the RPC.
    #[test]
    fn abandoned_partial_response_aborts_the_rpc() {
        let (mut a, mut b) = pair();
        a.begin_rpc(0, PeerId(1), 200, 11);
        shuttle(&mut a, &mut b, 0, |_| false);
        let (client, rpc_seq) = match &b.take_events()[..] {
            [HomaEvent::RequestArrived { client, rpc_seq, .. }] => (*client, *rpc_seq),
            other => panic!("unexpected {other:?}"),
        };
        // The server responds, but only the first response packet ever
        // reaches the client; the server then goes silent for good.
        b.send_response(0, client, rpc_seq, 50_000, 11);
        let mut first_resp = None;
        while let Some((_, pkt)) = b.poll_transmit(0) {
            if matches!(&pkt, HomaPacket::Data(h) if h.key.dir == Dir::Response)
                && first_resp.is_none()
            {
                first_resp = Some(pkt);
            }
        }
        a.on_packet(0, PeerId(1), first_resp.expect("server sent a response packet"));
        assert_eq!(a.inbound_count(), 1, "partial response state exists");
        // Tick through the receiver's chase budget; every RESEND it emits
        // goes unanswered.
        let mut t = 0;
        let mut aborted = false;
        for _ in 0..20 {
            t += 2_500_000;
            a.timer_tick(t);
            while a.poll_transmit(t).is_some() {}
            for e in a.take_events() {
                assert!(
                    !matches!(e, HomaEvent::InboundAborted { .. }),
                    "response abort must surface as RpcAborted, not InboundAborted"
                );
                if matches!(e, HomaEvent::RpcAborted { server: PeerId(1), tag: 11 }) {
                    aborted = true;
                }
            }
        }
        assert!(aborted, "abandoned response must abort the RPC");
        assert_eq!(a.outstanding_rpcs(), 0, "client RPC entry leaked");
        assert_eq!(a.inbound_count(), 0, "partial response state leaked");
        assert_eq!(a.outbound_count(), 0, "request sender state leaked");
    }

    /// Regression (found by the stateful model fuzzer): a response whose
    /// client stopped granting — because the client aborted the RPC after
    /// receiving only a prefix — used to sit in the server's sender state
    /// forever. The stall sweep must age it out.
    #[test]
    fn stalled_response_state_ages_out_when_client_goes_silent() {
        let (mut a, mut b) = pair();
        a.begin_rpc(0, PeerId(1), 200, 13);
        shuttle(&mut a, &mut b, 0, |_| false);
        let (client, rpc_seq) = match &b.take_events()[..] {
            [HomaEvent::RequestArrived { client, rpc_seq, .. }] => (*client, *rpc_seq),
            other => panic!("unexpected {other:?}"),
        };
        // The response needs grants beyond the blind prefix, but the
        // client never sends another packet.
        b.send_response(0, client, rpc_seq, 50_000, 13);
        while b.poll_transmit(0).is_some() {}
        assert_eq!(b.outbound_count(), 1, "response awaiting grants");
        let mut t = 0;
        let mut abandoned = false;
        for _ in 0..20 {
            t += 2_500_000;
            b.timer_tick(t);
            while b.poll_transmit(t).is_some() {}
            for e in b.take_events() {
                if matches!(e, HomaEvent::OutboundAborted { dst, tag: 13 } if dst == client) {
                    abandoned = true;
                }
            }
        }
        assert!(abandoned, "silent client must abandon the response");
        assert_eq!(b.outbound_count(), 0, "response sender state leaked");
    }

    /// Pinned edge case: DATA arriving again after full delivery. The
    /// receiver keeps no completed-message state (§3.8), so a duplicated
    /// single-packet message is re-delivered whole (at-least-once at the
    /// transport level — deduplication belongs to the application), and a
    /// duplicated *fragment* creates a ghost inbound message with no live
    /// sender that must be swept out by the abort timer, not squat on an
    /// overcommitment slot forever.
    #[test]
    fn duplicate_data_after_delivery_is_bounded() {
        let (mut a, mut b) = pair();
        // Single-packet message: duplicate re-delivers.
        a.send_message(0, PeerId(1), 400, 1);
        let (_, pkt) = a.poll_transmit(0).expect("blind packet");
        b.on_packet(0, PeerId(0), pkt.clone());
        assert_eq!(b.delivered_msgs(), 1);
        b.on_packet(0, PeerId(0), pkt);
        assert_eq!(b.delivered_msgs(), 2, "duplicate full message re-delivers (§3.8)");
        assert_eq!(b.inbound_count(), 0, "no ghost state from a complete duplicate");

        // Multi-packet message: a duplicated fragment after delivery
        // creates a ghost that the sweep must abort.
        a.send_message(0, PeerId(1), 20_000, 2);
        let mut first_frag = None;
        shuttle(&mut a, &mut b, 0, |p| {
            if let HomaPacket::Data(h) = p {
                if h.key.seq == 2 && h.offset == 0 && first_frag.is_none() {
                    first_frag = Some(p.clone());
                }
            }
            false
        });
        assert_eq!(b.delivered_msgs(), 3);
        b.on_packet(0, PeerId(0), first_frag.expect("captured first fragment"));
        assert_eq!(b.inbound_count(), 1, "ghost fragment state exists");
        let mut t = 0;
        for _ in 0..20 {
            t += 2_500_000;
            b.timer_tick(t);
            while b.poll_transmit(t).is_some() {}
        }
        assert_eq!(b.inbound_count(), 0, "ghost must be swept, not squat forever");
        assert!(
            b.take_events().iter().any(|e| matches!(e, HomaEvent::InboundAborted { .. })),
            "ghost sweep surfaces as an inbound abort"
        );
    }

    /// Pinned edge case: RESEND for a `MsgKey` the sender knows nothing
    /// about. For one-ways and requests the state was discarded on
    /// purpose (completed, aborted, or never existed) and the RESEND must
    /// be ignored without creating state; for responses it is the §3.7
    /// server-side recovery signal — re-request the request's blind
    /// prefix so the RPC re-executes (§3.8).
    #[test]
    fn resend_for_unknown_msgkey() {
        let (_, mut b) = pair();
        let prio = 0;
        for dir in [Dir::Oneway, Dir::Request] {
            let key = MsgKey { origin: PeerId(1), seq: 77, dir };
            b.on_packet(
                0,
                PeerId(0),
                HomaPacket::Resend(ResendHeader { key, offset: 0, length: 9_700, prio }),
            );
            assert!(!b.has_pending_tx(), "unknown {dir:?} RESEND must be ignored");
            assert_eq!(b.outbound_count(), 0);
            assert_eq!(b.inbound_count(), 0);
        }
        // Unknown response key, no request in progress: the server asks
        // for the request again instead.
        let resp_key = MsgKey { origin: PeerId(0), seq: 78, dir: Dir::Response };
        b.on_packet(
            0,
            PeerId(0),
            HomaPacket::Resend(ResendHeader { key: resp_key, offset: 0, length: 9_700, prio }),
        );
        match b.poll_transmit(0) {
            Some((dst, HomaPacket::Resend(r))) => {
                assert_eq!(dst, PeerId(0));
                assert_eq!(r.key, resp_key.flipped(), "server re-requests the request");
                assert_eq!(r.offset, 0);
            }
            other => panic!("expected a request re-request, got {other:?}"),
        }
        assert_eq!(b.resends_sent(), 1);
    }

    #[test]
    fn withholding_probe_reflects_overcommit() {
        let cfg = HomaConfig { overcommit_override: Some(1), ..HomaConfig::default() };
        let mut a = HomaEndpoint::new(PeerId(0), cfg.clone());
        let mut b = HomaEndpoint::new(PeerId(1), cfg);
        a.send_message(0, PeerId(1), 1_000_000, 1);
        a.send_message(0, PeerId(1), 2_000_000, 2);
        // Push only the blind prefixes across (no grants back), so both
        // messages are incomplete at b.
        for _ in 0..14 {
            if let Some((_, pkt)) = a.poll_transmit(0) {
                b.on_packet(0, PeerId(0), pkt);
            }
        }
        assert!(b.withholding_grants(), "one of two messages must be withheld");
    }
}
