//! Per-message state: outbound transmission progress and inbound
//! reassembly.
//!
//! Homa messages are byte ranges delivered in DATA packets that may arrive
//! in any order (per-packet spraying reorders them in the core, §3.3).
//! [`InboundMessage`] tracks received ranges and exposes the first gap for
//! RESEND requests; [`OutboundMessage`] tracks how far the sender has
//! transmitted, how far the receiver has granted, and any retransmission
//! ranges queued by RESENDs.

use crate::packets::{MsgKey, PeerId};
use crate::Nanos;

/// State of a message being transmitted.
#[derive(Debug, Clone)]
pub struct OutboundMessage {
    /// Message identity.
    pub key: MsgKey,
    /// Destination peer.
    pub dst: PeerId,
    /// Total length in bytes.
    pub len: u64,
    /// Next fresh byte to transmit (bytes below this are sent, modulo
    /// retransmissions).
    pub sent: u64,
    /// Bytes the receiver has authorized (initialized to the blind
    /// prefix; raised by GRANTs).
    pub granted: u64,
    /// End of the blind (unscheduled) prefix for this message.
    pub unsched_limit: u64,
    /// Priority for scheduled packets, from the latest GRANT.
    pub sched_prio: u8,
    /// Priority for unscheduled packets (from the receiver's disseminated
    /// cutoffs, stamped at message creation).
    pub unsched_prio: u8,
    /// Pending retransmission ranges (offset, length) requested via
    /// RESEND, served before fresh data.
    pub retx: Vec<(u64, u64)>,
    /// Incast-control mark to stamp on this message's packets.
    pub incast_mark: bool,
    /// Application tag (travels in the first packet).
    pub tag: u64,
    /// When the message was submitted (for diagnostics).
    pub created_at: Nanos,
    /// Last time the receiver showed signs of life for this message
    /// (grant or resend); drives the sender-side stall poke for one-way
    /// messages whose blind prefix was lost entirely.
    pub last_peer_activity: Nanos,
    /// Number of stall pokes sent without any grant progress.
    pub stall_pokes: u32,
}

impl OutboundMessage {
    /// Bytes not yet transmitted (the sender-side SRPT rank; retransmit
    /// ranges count as remaining work).
    pub fn remaining(&self) -> u64 {
        let fresh = self.len - self.sent;
        let retx: u64 = self.retx.iter().map(|&(_, l)| l).sum();
        fresh + retx
    }

    /// Whether the sender currently has bytes it is allowed to put on the
    /// wire.
    pub fn transmittable(&self) -> bool {
        !self.retx.is_empty() || (self.sent < self.granted.min(self.len))
    }

    /// Whether every byte (including retransmissions) has been sent.
    pub fn fully_sent(&self) -> bool {
        self.sent >= self.len && self.retx.is_empty()
    }

    /// Queue a retransmission range, clipped to the message and merged
    /// with pending ranges.
    pub fn queue_retx(&mut self, offset: u64, length: u64) {
        let end = (offset + length).min(self.len).min(self.sent);
        if offset >= end {
            return;
        }
        self.retx.push((offset, end - offset));
        // Merge overlaps to keep the list tiny.
        self.retx.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.retx.len());
        for &(o, l) in self.retx.iter() {
            if let Some(last) = merged.last_mut() {
                if o <= last.0 + last.1 {
                    let new_end = (o + l).max(last.0 + last.1);
                    last.1 = new_end - last.0;
                    continue;
                }
            }
            merged.push((o, l));
        }
        self.retx = merged;
    }

    /// Take the next chunk to transmit, up to `max_payload` bytes:
    /// retransmissions first, then fresh granted bytes. Returns
    /// `(offset, len, is_retransmit)`. Fresh chunks never span the
    /// unscheduled/scheduled boundary, since the two sides carry
    /// different priorities.
    pub fn next_chunk(&mut self, max_payload: u32) -> Option<(u64, u32, bool)> {
        if let Some((o, l)) = self.retx.first_mut() {
            let take = (*l).min(max_payload as u64) as u32;
            let off = *o;
            *o += take as u64;
            *l -= take as u64;
            if *l == 0 {
                self.retx.remove(0);
            }
            return Some((off, take, true));
        }
        let limit = self.granted.min(self.len);
        if self.sent < limit {
            let mut take = (limit - self.sent).min(max_payload as u64);
            if self.sent < self.unsched_limit {
                take = take.min(self.unsched_limit - self.sent);
            }
            let take = take as u32;
            let off = self.sent;
            self.sent += take as u64;
            return Some((off, take, false));
        }
        None
    }
}

/// State of a message being received.
#[derive(Debug, Clone)]
pub struct InboundMessage {
    /// Message identity.
    pub key: MsgKey,
    /// Sending peer.
    pub src: PeerId,
    /// Total length (learned from the first DATA packet).
    pub len: u64,
    /// Received byte ranges, sorted and disjoint.
    ranges: Vec<(u64, u64)>,
    /// Total distinct bytes received.
    received: u64,
    /// Highest grant offset this receiver has issued for the message.
    pub granted: u64,
    /// Scheduled priority currently assigned to the message (meaningful
    /// only while the message is active).
    pub sched_prio: u8,
    /// Last time any packet (DATA or BUSY) arrived for this message.
    pub last_activity: Nanos,
    /// Consecutive RESENDs sent without progress.
    pub resends_outstanding: u32,
    /// Application tag from the first packet.
    pub tag: u64,
    /// Whether the first packet carried the incast mark (relevant for
    /// requests: clamps the response's blind prefix).
    pub incast_mark: bool,
    /// When the first packet arrived (for latency accounting).
    pub first_arrival: Nanos,
}

impl InboundMessage {
    /// Fresh inbound state for a message of `len` bytes from `src`.
    pub fn new(key: MsgKey, src: PeerId, len: u64, now: Nanos) -> Self {
        InboundMessage {
            key,
            src,
            len,
            ranges: Vec::new(),
            received: 0,
            granted: 0,
            sched_prio: 0,
            last_activity: now,
            resends_outstanding: 0,
            tag: 0,
            incast_mark: false,
            first_arrival: now,
        }
    }

    /// Record a received range. Returns the number of *new* bytes.
    pub fn record(&mut self, offset: u64, length: u64) -> u64 {
        let end = (offset + length).min(self.len);
        if offset >= end {
            return 0;
        }
        let before = self.received;
        self.ranges.push((offset, end - offset));
        self.ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ranges.len());
        for &(o, l) in self.ranges.iter() {
            if let Some(last) = merged.last_mut() {
                if o <= last.0 + last.1 {
                    let new_end = (o + l).max(last.0 + last.1);
                    last.1 = new_end - last.0;
                    continue;
                }
            }
            merged.push((o, l));
        }
        self.ranges = merged;
        self.received = self.ranges.iter().map(|&(_, l)| l).sum();
        self.received - before
    }

    /// Total distinct bytes received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Bytes still missing.
    pub fn remaining(&self) -> u64 {
        self.len - self.received
    }

    /// Whether the whole message has arrived.
    pub fn complete(&self) -> bool {
        self.received >= self.len
    }

    /// The first missing byte range `(offset, length)`, for RESEND.
    pub fn first_gap(&self) -> Option<(u64, u64)> {
        if self.complete() {
            return None;
        }
        match self.ranges.first() {
            None => Some((0, self.len)),
            Some(&(o, l)) => {
                if o > 0 {
                    Some((0, o))
                } else {
                    let end = o + l;
                    let next_start = self.ranges.get(1).map(|&(o2, _)| o2).unwrap_or(self.len);
                    Some((end, next_start - end))
                }
            }
        }
    }

    /// Contiguously received prefix length.
    pub fn contiguous(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, l)) => l,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::Dir;

    fn key() -> MsgKey {
        MsgKey { origin: PeerId(1), seq: 7, dir: Dir::Oneway }
    }

    fn outbound(len: u64, granted: u64) -> OutboundMessage {
        OutboundMessage {
            key: key(),
            dst: PeerId(2),
            len,
            sent: 0,
            granted,
            unsched_limit: granted,
            sched_prio: 0,
            unsched_prio: 7,
            retx: Vec::new(),
            incast_mark: false,
            tag: 0,
            created_at: 0,
            last_peer_activity: 0,
            stall_pokes: 0,
        }
    }

    #[test]
    fn outbound_chunks_respect_grant() {
        let mut m = outbound(10_000, 3_000);
        let mut sent = 0;
        while let Some((off, l, retx)) = m.next_chunk(1_400) {
            assert!(!retx);
            assert_eq!(off, sent);
            sent += l as u64;
        }
        assert_eq!(sent, 3_000);
        assert!(!m.transmittable());
        // A grant extends transmission.
        m.granted = 10_000;
        assert!(m.transmittable());
        let (off, l, _) = m.next_chunk(1_400).unwrap();
        assert_eq!(off, 3_000);
        assert_eq!(l, 1_400);
    }

    #[test]
    fn outbound_remaining_counts_retx() {
        let mut m = outbound(10_000, 10_000);
        while m.next_chunk(1_400).is_some() {}
        assert_eq!(m.remaining(), 0);
        assert!(m.fully_sent());
        m.queue_retx(0, 2_000);
        assert_eq!(m.remaining(), 2_000);
        assert!(!m.fully_sent());
        let (off, l, retx) = m.next_chunk(1_400).unwrap();
        assert!(retx);
        assert_eq!((off, l), (0, 1_400));
        let (off, l, retx) = m.next_chunk(1_400).unwrap();
        assert!(retx);
        assert_eq!((off, l), (1_400, 600));
        assert!(m.fully_sent());
    }

    #[test]
    fn retx_merges_overlaps_and_clips_to_sent() {
        let mut m = outbound(10_000, 10_000);
        m.sent = 5_000;
        m.queue_retx(1_000, 1_000);
        m.queue_retx(1_500, 1_000);
        assert_eq!(m.retx, vec![(1_000, 1_500)]);
        // Beyond `sent` is clipped: those bytes were never transmitted.
        m.queue_retx(4_500, 2_000);
        assert_eq!(m.retx, vec![(1_000, 1_500), (4_500, 500)]);
        // Entirely beyond sent: ignored.
        m.queue_retx(6_000, 100);
        assert_eq!(m.retx.len(), 2);
    }

    #[test]
    fn inbound_reassembles_out_of_order() {
        let mut m = InboundMessage::new(key(), PeerId(1), 4_200, 0);
        assert_eq!(m.record(1_400, 1_400), 1_400);
        assert!(!m.complete());
        assert_eq!(m.first_gap(), Some((0, 1_400)));
        assert_eq!(m.record(0, 1_400), 1_400);
        assert_eq!(m.contiguous(), 2_800);
        assert_eq!(m.first_gap(), Some((2_800, 1_400)));
        assert_eq!(m.record(2_800, 1_400), 1_400);
        assert!(m.complete());
        assert_eq!(m.first_gap(), None);
    }

    #[test]
    fn inbound_duplicates_count_once() {
        let mut m = InboundMessage::new(key(), PeerId(1), 2_000, 0);
        assert_eq!(m.record(0, 1_000), 1_000);
        assert_eq!(m.record(0, 1_000), 0);
        assert_eq!(m.record(500, 1_000), 500);
        assert_eq!(m.received(), 1_500);
        assert_eq!(m.remaining(), 500);
    }

    #[test]
    fn inbound_clips_ranges_beyond_len() {
        let mut m = InboundMessage::new(key(), PeerId(1), 1_000, 0);
        assert_eq!(m.record(500, 10_000), 500);
        assert_eq!(m.record(2_000, 100), 0);
        assert_eq!(m.first_gap(), Some((0, 500)));
    }

    #[test]
    fn gap_in_middle_reported_after_prefix() {
        let mut m = InboundMessage::new(key(), PeerId(1), 5_000, 0);
        m.record(0, 1_000);
        m.record(3_000, 1_000);
        assert_eq!(m.first_gap(), Some((1_000, 2_000)));
        m.record(1_000, 2_000);
        assert_eq!(m.first_gap(), Some((4_000, 1_000)));
    }
}
