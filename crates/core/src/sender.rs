//! Sender-side protocol state (§3.2, §4).
//!
//! The sender keeps an [`OutboundMessage`] per message in flight and
//! implements SRPT across them: whenever the NIC asks for a packet, the
//! transmittable message with the fewest remaining bytes wins. Grants
//! raise per-message transmission limits; RESENDs queue retransmission
//! ranges (answered with BUSY when the sender is occupied with
//! higher-priority messages, so the peer doesn't time out).
//!
//! State lifecycle follows §3.8: response messages are discarded the
//! moment their last byte is handed to the NIC (servers keep no state for
//! completed RPCs); one-way messages linger briefly for retransmission;
//! request messages are owned by the RPC layer and removed when the
//! response arrives.

use crate::config::HomaConfig;
use crate::messages::OutboundMessage;
use crate::packets::{BusyHeader, DataHeader, Dir, MsgKey, PeerId};
use crate::unsched::PriorityMap;
use crate::Nanos;
use std::collections::HashMap;

/// How the sender reacted to an incoming RESEND.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResendReaction {
    /// Retransmission queued; data will flow shortly.
    Queued,
    /// Sender is busy with shorter messages; a BUSY notification should be
    /// sent so the peer does not time out (the retransmission is queued
    /// regardless and will be served in SRPT order).
    QueuedButBusy(BusyHeader),
    /// The message is unknown (state already discarded, or never existed).
    Unknown,
}

/// Sender half of a Homa endpoint.
#[derive(Debug)]
pub struct SenderState {
    cfg: HomaConfig,
    msgs: HashMap<MsgKey, OutboundMessage>,
    /// Fully-sent one-way messages kept around until `expire_at` so that
    /// late RESENDs can still be answered.
    linger: Vec<(MsgKey, Nanos)>,
}

impl SenderState {
    /// New sender state.
    pub fn new(cfg: HomaConfig) -> Self {
        SenderState { cfg, msgs: HashMap::new(), linger: Vec::new() }
    }

    /// Number of messages with state held.
    pub fn active_messages(&self) -> usize {
        self.msgs.len()
    }

    /// Begin transmitting a message. `peer_map` supplies the receiver's
    /// unscheduled priority cutoffs (disseminated or statically
    /// configured).
    #[allow(clippy::too_many_arguments)]
    pub fn start_message(
        &mut self,
        now: Nanos,
        key: MsgKey,
        dst: PeerId,
        len: u64,
        tag: u64,
        incast_mark: bool,
        peer_map: &PriorityMap,
    ) {
        let unsched_limit = self.cfg.unsched_limit_for(incast_mark).min(len.max(1));
        let msg = OutboundMessage {
            key,
            dst,
            len,
            sent: 0,
            granted: unsched_limit,
            unsched_limit,
            sched_prio: 0,
            unsched_prio: peer_map.unsched_prio(len),
            retx: Vec::new(),
            incast_mark,
            tag,
            created_at: now,
            last_peer_activity: now,
            stall_pokes: 0,
        };
        self.msgs.insert(key, msg);
    }

    /// Handle a GRANT: raise the transmission limit and adopt the
    /// receiver-assigned scheduled priority.
    pub fn on_grant(&mut self, now: Nanos, key: MsgKey, offset: u64, prio: u8) -> bool {
        match self.msgs.get_mut(&key) {
            Some(m) => {
                if offset > m.granted {
                    m.granted = offset.min(m.len);
                }
                m.sched_prio = prio;
                m.last_peer_activity = now;
                m.stall_pokes = 0;
                true
            }
            None => false,
        }
    }

    /// Sender-side stall recovery for messages whose receiver has gone
    /// silent (no grants for a resend interval). For one-way messages the
    /// entire blind prefix may have been lost — the receiver does not even
    /// know the message exists — so retransmit the first packet to
    /// re-create receiver state. For *responses* the client's own chasing
    /// (RESENDs while `awaiting_first_response`, receiver gap chasing
    /// after) covers every loss pattern, so a silent client means the RPC
    /// is dead on its side; just age the state out without retransmitting
    /// (found by the stateful model fuzzer: stalled response state used
    /// to leak forever once the client aborted the RPC). Requests are
    /// skipped: the client RPC sweep owns their whole lifecycle. Gives up
    /// after the abort budget and returns the abandoned `(dst, tag)`s.
    pub fn poke_stalled(&mut self, now: Nanos) -> Vec<(PeerId, u64)> {
        let interval = self.cfg.resend_interval_ns;
        let limit = self.cfg.abort_after_resends;
        let payload = self.cfg.max_payload as u64;
        let mut abandoned = Vec::new();
        let mut dead = Vec::new();
        // Sorted key order so retransmit state changes (and the abandoned
        // list) are independent of HashMap iteration order.
        let mut keys: Vec<MsgKey> = self.msgs.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let m = self.msgs.get_mut(&key).expect("key just collected");
            if m.key.dir == Dir::Request || m.fully_sent() || m.transmittable() {
                continue;
            }
            if now.saturating_sub(m.last_peer_activity) < interval {
                continue;
            }
            if m.stall_pokes >= limit {
                dead.push(m.key);
                abandoned.push((m.dst, m.tag));
                continue;
            }
            m.stall_pokes += 1;
            m.last_peer_activity = now;
            if m.key.dir == Dir::Oneway {
                m.queue_retx(0, payload.min(m.len));
            }
        }
        for k in dead {
            self.msgs.remove(&k);
        }
        abandoned
    }

    /// Handle a RESEND for one of our outbound messages.
    pub fn on_resend(&mut self, key: MsgKey, offset: u64, length: u64, prio: u8) -> ResendReaction {
        let shortest_other = self
            .msgs
            .values()
            .filter(|m| m.key != key && m.transmittable())
            .map(|m| m.remaining())
            .min();
        match self.msgs.get_mut(&key) {
            Some(m) => {
                // Also treat the RESEND as an implicit grant: the receiver
                // must have been expecting these bytes.
                if offset + length > m.granted {
                    m.granted = (offset + length).min(m.len);
                }
                m.sched_prio = prio;
                m.queue_retx(offset, length);
                match shortest_other {
                    Some(r) if r < m.remaining() => {
                        ResendReaction::QueuedButBusy(BusyHeader { key })
                    }
                    _ => ResendReaction::Queued,
                }
            }
            None => ResendReaction::Unknown,
        }
    }

    /// SRPT packet selection: produce the next DATA packet for the wire,
    /// or `None` when nothing is transmittable.
    pub fn next_data_packet(&mut self, now: Nanos) -> Option<(PeerId, DataHeader)> {
        let key = self
            .msgs
            .values()
            .filter(|m| m.transmittable())
            .min_by_key(|m| (m.remaining(), m.created_at, m.key))?
            .key;
        let max_payload = self.cfg.max_payload;
        let m = self.msgs.get_mut(&key).expect("selected message exists");
        let (offset, payload, retransmit) = m.next_chunk(max_payload).expect("transmittable");
        let unscheduled = offset < m.unsched_limit && !retransmit;
        let hdr = DataHeader {
            key,
            msg_len: m.len,
            offset,
            payload,
            prio: if unscheduled { m.unsched_prio } else { m.sched_prio },
            unscheduled,
            retransmit,
            incast_mark: m.incast_mark,
            tag: m.tag,
        };
        let dst = m.dst;
        if m.fully_sent() {
            self.on_fully_sent(now, key);
        }
        Some((dst, hdr))
    }

    /// Apply the state-retention policy when a message's last byte goes
    /// out (§3.8).
    fn on_fully_sent(&mut self, now: Nanos, key: MsgKey) {
        match key.dir {
            // Servers discard all RPC state as soon as the response is
            // fully transmitted; a later RESEND for it is treated as an
            // unknown message (and triggers re-execution upstream).
            Dir::Response => {
                self.msgs.remove(&key);
            }
            // One-way messages linger for late retransmissions, bounded
            // by a few resend intervals.
            Dir::Oneway => {
                let expire = now + 4 * self.cfg.resend_interval_ns;
                self.linger.push((key, expire));
            }
            // Requests are retained until the RPC completes (the response
            // acknowledges them); the RPC layer removes them.
            Dir::Request => {}
        }
    }

    /// Remove a message (used by the RPC layer when a response arrives,
    /// or on abort).
    pub fn remove(&mut self, key: MsgKey) {
        self.msgs.remove(&key);
    }

    /// Whether the sender holds state for `key`.
    pub fn contains(&self, key: MsgKey) -> bool {
        self.msgs.contains_key(&key)
    }

    /// Read access to a message (diagnostics/tests).
    pub fn get(&self, key: MsgKey) -> Option<&OutboundMessage> {
        self.msgs.get(&key)
    }

    /// Whether any message currently has transmittable bytes.
    pub fn has_transmittable(&self) -> bool {
        self.msgs.values().any(|m| m.transmittable())
    }

    /// Snapshot of outbound messages:
    /// `(key, len, sent, granted, retx_ranges)`. Diagnostics only.
    pub fn outbound_snapshot(&self) -> Vec<(MsgKey, u64, u64, u64, usize)> {
        self.msgs.values().map(|m| (m.key, m.len, m.sent, m.granted, m.retx.len())).collect()
    }

    /// Garbage-collect lingering one-way state.
    pub fn expire_lingering(&mut self, now: Nanos) {
        let mut i = 0;
        while i < self.linger.len() {
            let (key, at) = self.linger[i];
            if at <= now {
                // Only drop if no retransmission was queued meanwhile.
                if self.msgs.get(&key).is_none_or(|m| m.fully_sent()) {
                    self.msgs.remove(&key);
                }
                self.linger.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seq: u64) -> MsgKey {
        MsgKey { origin: PeerId(0), seq, dir: Dir::Oneway }
    }

    fn sender() -> SenderState {
        SenderState::new(HomaConfig::default())
    }

    fn map() -> PriorityMap {
        PriorityMap {
            num_priorities: 8,
            unsched_levels: 4,
            cutoffs: vec![280, 1_000, 4_000],
            version: 1,
        }
    }

    #[test]
    fn small_message_single_unscheduled_packet() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 100, 9, false, &map());
        let (dst, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(dst, PeerId(1));
        assert_eq!(hdr.offset, 0);
        assert_eq!(hdr.payload, 100);
        assert!(hdr.unscheduled);
        assert_eq!(hdr.prio, 7, "tiny message goes at top priority");
        assert_eq!(hdr.tag, 9);
        assert!(s.next_data_packet(0).is_none());
    }

    #[test]
    fn unsched_prefix_then_waits_for_grant() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 100_000, 0, false, &map());
        let mut sent = 0u64;
        while let Some((_, hdr)) = s.next_data_packet(0) {
            assert!(hdr.unscheduled);
            assert_eq!(hdr.prio, 4, "large message lowest unsched level");
            sent += hdr.payload as u64;
        }
        assert_eq!(sent, 9_700, "exactly RTTbytes sent blindly");
        // A grant opens more of the message at a scheduled priority.
        assert!(s.on_grant(0, key(1), 12_000, 2));
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert!(!hdr.unscheduled);
        assert_eq!(hdr.prio, 2);
        assert_eq!(hdr.offset, 9_700);
    }

    #[test]
    fn srpt_prefers_fewest_remaining() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 8_000, 0, false, &map());
        s.start_message(0, key(2), PeerId(2), 300, 0, false, &map());
        // The 300-byte message wins even though it arrived second.
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(hdr.key, key(2));
        // Then the big one.
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(hdr.key, key(1));
    }

    #[test]
    fn srpt_switches_to_shorter_message_mid_stream() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 9_000, 0, false, &map());
        let _ = s.next_data_packet(0).unwrap(); // 1400 of msg 1
        s.start_message(0, key(2), PeerId(2), 500, 0, false, &map());
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(hdr.key, key(2), "new shorter message preempts");
    }

    #[test]
    fn grant_monotone_and_clamped() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 5_000, 0, false, &map());
        assert!(s.on_grant(0, key(1), 1_000_000, 0));
        assert_eq!(s.get(key(1)).unwrap().granted, 5_000);
        // Stale (smaller) grant does not shrink the window.
        assert!(s.on_grant(0, key(1), 10, 0));
        assert_eq!(s.get(key(1)).unwrap().granted, 5_000);
        assert!(!s.on_grant(0, key(99), 10, 0));
    }

    #[test]
    fn resend_queues_retransmission() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 3_000, 0, false, &map());
        while s.next_data_packet(0).is_some() {}
        let r = s.on_resend(key(1), 0, 1_400, 5);
        assert_eq!(r, ResendReaction::Queued);
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert!(hdr.retransmit);
        assert_eq!(hdr.offset, 0);
        assert_eq!(hdr.payload, 1_400);
        assert_eq!(hdr.prio, 5, "retransmission uses RESEND's priority");
    }

    #[test]
    fn resend_while_busy_with_shorter_message_yields_busy() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 50_000, 0, false, &map());
        while s.next_data_packet(0).is_some() {}
        s.start_message(0, key(2), PeerId(2), 200, 0, false, &map());
        // msg2 (200B) outranks the retransmission of msg1.
        match s.on_resend(key(1), 0, 1_400, 3) {
            ResendReaction::QueuedButBusy(b) => assert_eq!(b.key, key(1)),
            other => panic!("expected busy, got {other:?}"),
        }
        // SRPT still sends msg2 first.
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(hdr.key, key(2));
    }

    #[test]
    fn resend_unknown_message() {
        let mut s = sender();
        assert_eq!(s.on_resend(key(1), 0, 100, 0), ResendReaction::Unknown);
    }

    #[test]
    fn response_state_discarded_after_last_byte() {
        let mut s = sender();
        let rk = MsgKey { origin: PeerId(9), seq: 1, dir: Dir::Response };
        s.start_message(0, rk, PeerId(9), 1_000, 0, false, &map());
        let _ = s.next_data_packet(0).unwrap();
        assert!(!s.contains(rk), "response state dropped at full send (§3.8)");
        assert_eq!(s.on_resend(rk, 0, 100, 0), ResendReaction::Unknown);
    }

    #[test]
    fn oneway_lingers_then_expires() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 500, 0, false, &map());
        let _ = s.next_data_packet(0).unwrap();
        assert!(s.contains(key(1)), "one-way lingers for late RESENDs");
        assert_eq!(s.on_resend(key(1), 0, 500, 7), ResendReaction::Queued);
        let _ = s.next_data_packet(0).unwrap();
        // Expire after the linger window.
        s.expire_lingering(1_000_000_000);
        assert!(!s.contains(key(1)));
    }

    #[test]
    fn incast_mark_limits_blind_prefix() {
        let mut s = sender();
        s.start_message(0, key(1), PeerId(1), 50_000, 0, true, &map());
        let mut sent = 0u64;
        while let Some((_, hdr)) = s.next_data_packet(0) {
            assert!(hdr.incast_mark);
            sent += hdr.payload as u64;
        }
        assert_eq!(sent, 400, "incast-marked message sends only a few hundred blind bytes");
    }

    #[test]
    fn deterministic_tie_break_on_equal_remaining() {
        let mut s = sender();
        s.start_message(0, key(2), PeerId(1), 1_000, 0, false, &map());
        s.start_message(0, key(1), PeerId(1), 1_000, 0, false, &map());
        // Equal remaining and equal creation time: lower key wins.
        let (_, hdr) = s.next_data_packet(0).unwrap();
        assert_eq!(hdr.key, key(1));
    }
}
