//! Protocol packet types (Figure 3 of the paper).
//!
//! Homa uses four packet types. DATA flows sender→receiver; GRANT and
//! RESEND flow receiver→sender; BUSY flows sender→receiver. All types
//! except DATA travel at the highest network priority. A fifth type,
//! CUTOFFS, carries the receiver's unscheduled priority allocation to
//! senders — the paper piggybacks this on other packets; we piggyback on
//! GRANTs and additionally send it standalone when no grant is pending
//! (the Linux HomaModule does the same).
//!
//! These are *protocol-level* representations. `homa-wire` provides the
//! binary encoding used on real networks; the simulator carries these
//! structs directly.

use serde::{Deserialize, Serialize};

/// A transport-level peer address. In the simulator this is the host id;
/// over UDP it indexes a socket-address table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Direction of a message within an RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir {
    /// Client → server request.
    Request,
    /// Server → client response.
    Response,
    /// A one-way message outside any RPC (used by the paper's simulation
    /// workloads; equivalent to an RPC whose response is implicit).
    Oneway,
}

/// Globally-unique message identifier: the originating client's peer id,
/// the client-assigned RPC sequence number, and the direction. Request and
/// response of one RPC share `(origin, seq)` and differ in `dir`; this is
/// the paper's "RPCid is included in all packets associated with the RPC".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgKey {
    /// The client that generated the RPC id (for one-way messages, the
    /// sender).
    pub origin: PeerId,
    /// Client-assigned sequence number, unique per origin.
    pub seq: u64,
    /// Which message of the RPC this is.
    pub dir: Dir,
}

impl MsgKey {
    /// The key of this RPC's message in the opposite direction.
    pub fn flipped(self) -> MsgKey {
        let dir = match self.dir {
            Dir::Request => Dir::Response,
            Dir::Response => Dir::Request,
            Dir::Oneway => Dir::Oneway,
        };
        MsgKey { dir, ..self }
    }
}

/// DATA: a range of bytes within a message (§3, Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataHeader {
    /// Message this packet belongs to.
    pub key: MsgKey,
    /// Total message length in bytes ("Also indicates total message
    /// length" — lets the receiver plan grants from the first packet).
    pub msg_len: u64,
    /// Offset of this packet's first byte within the message.
    pub offset: u64,
    /// Number of payload bytes in this packet.
    pub payload: u32,
    /// Network priority the sender stamped on the packet (receiver-chosen:
    /// via cutoffs for unscheduled, via GRANT for scheduled packets).
    pub prio: u8,
    /// True for packets within the blind prefix.
    pub unscheduled: bool,
    /// True when this packet is a retransmission (excluded from goodput).
    pub retransmit: bool,
    /// Incast-control mark (§3.6): set on requests issued while the client
    /// had many outstanding RPCs; tells the server to clamp the response's
    /// blind prefix.
    pub incast_mark: bool,
    /// Application tag carried in the message's first packet (offset 0).
    /// This stands in for application framing; the experiment harness uses
    /// it to correlate injections with deliveries.
    pub tag: u64,
}

/// GRANT: permission to transmit up to `offset`, at `prio` (§3.3–3.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantHeader {
    /// Message being granted.
    pub key: MsgKey,
    /// The sender may now transmit all bytes below this offset.
    pub offset: u64,
    /// Priority the sender must stamp on the granted packets.
    pub prio: u8,
    /// Piggybacked unscheduled-priority allocation of the granting
    /// receiver (version, cutoffs), if it changed recently.
    pub cutoffs: Option<CutoffsUpdate>,
}

/// RESEND: receiver-driven retransmission request (§3.7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResendHeader {
    /// Message with missing bytes.
    pub key: MsgKey,
    /// First missing byte.
    pub offset: u64,
    /// Length of the missing range.
    pub length: u64,
    /// Priority to use for the retransmitted data.
    pub prio: u8,
}

/// BUSY: "my response to your RESEND will be delayed" (§3.7); prevents the
/// peer from timing out while the sender works on higher-priority traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyHeader {
    /// Message the BUSY refers to.
    pub key: MsgKey,
}

/// A receiver's unscheduled-priority allocation, disseminated to senders
/// (§3.4, Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutoffsUpdate {
    /// Monotonic version so senders keep only the newest allocation.
    pub version: u64,
    /// Number of priority levels reserved for unscheduled packets (the
    /// top `unsched_levels` of the priority space).
    pub unsched_levels: u8,
    /// Ascending message-size boundaries between unscheduled levels;
    /// `cutoffs.len() == unsched_levels - 1`. A message of size `s` uses
    /// the highest level if `s <= cutoffs[0]`, and so on downward.
    pub cutoffs: Vec<u64>,
}

/// Any Homa packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HomaPacket {
    /// Data segment.
    Data(DataHeader),
    /// Transmission grant.
    Grant(GrantHeader),
    /// Retransmission request.
    Resend(ResendHeader),
    /// Busy notification.
    Busy(BusyHeader),
    /// Standalone cutoffs dissemination.
    Cutoffs(CutoffsUpdate),
}

impl HomaPacket {
    /// The message this packet pertains to, if any.
    pub fn key(&self) -> Option<MsgKey> {
        match self {
            HomaPacket::Data(h) => Some(h.key),
            HomaPacket::Grant(h) => Some(h.key),
            HomaPacket::Resend(h) => Some(h.key),
            HomaPacket::Busy(h) => Some(h.key),
            HomaPacket::Cutoffs(_) => None,
        }
    }

    /// Whether this is a control packet (everything except DATA).
    pub fn is_control(&self) -> bool {
        !matches!(self, HomaPacket::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MsgKey {
        MsgKey { origin: PeerId(3), seq: 42, dir: Dir::Request }
    }

    #[test]
    fn flipped_swaps_direction() {
        let k = key();
        assert_eq!(k.flipped().dir, Dir::Response);
        assert_eq!(k.flipped().flipped(), k);
        let ow = MsgKey { dir: Dir::Oneway, ..k };
        assert_eq!(ow.flipped(), ow);
    }

    #[test]
    fn control_classification() {
        let d = HomaPacket::Data(DataHeader {
            key: key(),
            msg_len: 100,
            offset: 0,
            payload: 100,
            prio: 7,
            unscheduled: true,
            retransmit: false,
            incast_mark: false,
            tag: 0,
        });
        assert!(!d.is_control());
        assert_eq!(d.key(), Some(key()));
        let g = HomaPacket::Grant(GrantHeader { key: key(), offset: 10, prio: 0, cutoffs: None });
        assert!(g.is_control());
        let c = HomaPacket::Cutoffs(CutoffsUpdate {
            version: 1,
            unsched_levels: 4,
            cutoffs: vec![100, 200, 300],
        });
        assert!(c.is_control());
        assert_eq!(c.key(), None);
    }
}
