//! Receiver-side protocol state (§3.3–§3.5, §3.7).
//!
//! The receiver is where Homa's intelligence lives:
//!
//! * **Grant scheduling** (§3.3): for every active inbound message, keep
//!   `RTTbytes` of granted-but-not-received data outstanding, one grant
//!   per arriving data packet.
//! * **Controlled overcommitment** (§3.5): at most `K` messages are
//!   *active* (receiving grants) at once, `K` defaulting to the number of
//!   scheduled priority levels; the rest are paused. If there are more
//!   incomplete messages than `K`, only those with the fewest remaining
//!   bytes are granted (SRPT).
//! * **Scheduled priorities** (§3.4): each active message gets its own
//!   priority level, fewest-remaining-bytes highest — but allocated from
//!   the *lowest* levels up, so that a newly arriving shorter message can
//!   be granted a *higher* level than the packets already buffered in the
//!   TOR (avoiding preemption lag, Figure 5).
//! * **Loss detection** (§3.7): Homa has no acks; if an expected message
//!   stalls for a resend interval, the receiver asks for the first missing
//!   range with RESEND. BUSY resets the clock.

use crate::config::HomaConfig;
use crate::messages::InboundMessage;
use crate::packets::{DataHeader, GrantHeader, MsgKey, PeerId, ResendHeader};
use crate::unsched::PriorityMap;
use crate::Nanos;
use std::collections::HashMap;

/// A fully-received message handed up by the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredMessage {
    /// Message identity.
    pub key: MsgKey,
    /// Sender.
    pub src: PeerId,
    /// Length in bytes.
    pub len: u64,
    /// Application tag from the first packet.
    pub tag: u64,
    /// Whether the request carried the incast mark.
    pub incast_mark: bool,
    /// When the first packet of the message arrived.
    pub first_arrival: Nanos,
}

/// An abort notification: a peer stopped responding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InboundAbort {
    /// The abandoned message.
    pub key: MsgKey,
    /// Its sender.
    pub src: PeerId,
}

/// Receiver half of a Homa endpoint.
#[derive(Debug)]
pub struct ReceiverState {
    cfg: HomaConfig,
    msgs: HashMap<MsgKey, InboundMessage>,
    /// Bytes of goodput delivered to the application.
    delivered_bytes: u64,
    /// Messages delivered to the application.
    delivered_msgs: u64,
    /// True when the last scheduling pass had incomplete messages beyond
    /// the overcommitment limit (the Figure 16 "withholding" probe).
    withholding: bool,
    /// Sum over time-sampled checks used by tests.
    grants_issued: u64,
    /// Total new credit extended via grants, in bytes (excludes the
    /// implicit credit of unscheduled data).
    granted_bytes: u64,
    /// RESEND requests emitted by the loss-detection sweep.
    resends_requested: u64,
}

impl ReceiverState {
    /// New receiver state.
    pub fn new(cfg: HomaConfig) -> Self {
        ReceiverState {
            cfg,
            msgs: HashMap::new(),
            delivered_bytes: 0,
            delivered_msgs: 0,
            withholding: false,
            grants_issued: 0,
            granted_bytes: 0,
            resends_requested: 0,
        }
    }

    /// The configured degree of overcommitment: how many messages may be
    /// granted to simultaneously (§3.5 — defaults to the number of
    /// scheduled priority levels).
    pub fn overcommit_degree(&self, map: &PriorityMap) -> usize {
        match self.cfg.overcommit_override {
            Some(k) => k.max(1) as usize,
            None => map.sched_levels() as usize,
        }
    }

    /// Handle an arriving DATA packet. Returns the completed message, if
    /// this packet finished one; grants produced by the scheduling pass
    /// are appended to `grants`.
    pub fn on_data(
        &mut self,
        now: Nanos,
        from: PeerId,
        hdr: &DataHeader,
        map: &PriorityMap,
        grants: &mut Vec<(PeerId, GrantHeader)>,
    ) -> Option<DeliveredMessage> {
        let m = self
            .msgs
            .entry(hdr.key)
            .or_insert_with(|| InboundMessage::new(hdr.key, from, hdr.msg_len, now));
        m.last_activity = now;
        m.resends_outstanding = 0;
        if hdr.offset == 0 {
            m.tag = hdr.tag;
            m.incast_mark = hdr.incast_mark;
        }
        m.record(hdr.offset, hdr.payload as u64);
        // Unscheduled bytes are implicitly granted: keep our grant
        // bookkeeping ahead of what the sender already sent blindly.
        if hdr.unscheduled {
            let blind_end = (hdr.offset + hdr.payload as u64).min(m.len);
            if blind_end > m.granted {
                m.granted = blind_end;
            } else if blind_end < m.granted && !m.complete() {
                // Blind data below our grant high-water: the sender has
                // restarted from scratch (at-least-once re-execution of an
                // RPC rebuilds its response with fresh state, §3.8). Our
                // grant bookkeeping is ahead of what the new sender
                // incarnation knows, so re-issue the current grant or it
                // will wait forever.
                self.grants_issued += 1;
                grants.push((
                    m.src,
                    GrantHeader {
                        key: m.key,
                        offset: m.granted,
                        prio: m.sched_prio,
                        cutoffs: None,
                    },
                ));
            }
        }

        let done = if m.complete() {
            let d = DeliveredMessage {
                key: m.key,
                src: m.src,
                len: m.len,
                tag: m.tag,
                incast_mark: m.incast_mark,
                first_arrival: m.first_arrival,
            };
            self.delivered_bytes += d.len;
            self.delivered_msgs += 1;
            self.msgs.remove(&hdr.key);
            Some(d)
        } else {
            None
        };

        self.reschedule(map, grants);
        done
    }

    /// A BUSY packet: the sender is alive but occupied — reset the loss
    /// timer for the message.
    pub fn on_busy(&mut self, now: Nanos, key: MsgKey) {
        if let Some(m) = self.msgs.get_mut(&key) {
            m.last_activity = now;
            m.resends_outstanding = 0;
        }
    }

    /// The grant scheduling pass (§3.4–3.5). Ranks incomplete messages by
    /// remaining bytes (SRPT), grants to the top `K`, assigns each active
    /// message a distinct scheduled priority from the lowest level upward,
    /// and records whether any message is being withheld.
    pub fn reschedule(&mut self, map: &PriorityMap, grants: &mut Vec<(PeerId, GrantHeader)>) {
        let k = self.overcommit_degree(map);
        // Candidates: every incomplete message. A message that is fully
        // granted but not yet fully received still *occupies* one of the
        // K overcommitment slots — only when its data actually arrives
        // (completing it) may a withheld message start receiving grants
        // (§3.3: "Once a grant has been sent for the last bytes of a
        // message, data packets for that message may result in grants to
        // other messages"). Without this, grants cascade to every inbound
        // message and the TOR buffer grows unboundedly under incast.
        let mut cands: Vec<(u64, MsgKey)> =
            self.msgs.values().filter(|m| !m.complete()).map(|m| (m.remaining(), m.key)).collect();
        cands.sort_unstable();
        self.withholding = cands.len() > k
            && cands[k..].iter().any(|&(_, key)| {
                let m = &self.msgs[&key];
                m.granted < m.len
            });

        let active_count = cands.len().min(k);
        for (rank, &(_, key)) in cands.iter().take(active_count).enumerate() {
            // Fewest-remaining (rank 0) gets the *highest* level among the
            // ones in use, but levels are filled from the bottom of the
            // scheduled band: with A active messages, ranks map to levels
            // A-1, A-2, ..., 0 (clamped to the scheduled band). This is
            // the paper's lowest-available-priority rule that eliminates
            // preemption lag (Figure 5).
            let level = (active_count - 1 - rank) as u8;
            let prio = map.sched_prio(level);
            let m = self.msgs.get_mut(&key).expect("candidate exists");
            let prio_changed = m.sched_prio != prio;
            m.sched_prio = prio;
            let target = (m.received() + self.cfg.rtt_bytes).min(m.len);
            if target > m.granted || (prio_changed && m.granted < m.len) {
                if target > m.granted {
                    self.granted_bytes += target - m.granted;
                    m.granted = target;
                }
                self.grants_issued += 1;
                grants.push((
                    m.src,
                    GrantHeader { key: m.key, offset: m.granted, prio, cutoffs: None },
                ));
            }
        }
    }

    /// Periodic loss-detection sweep (§3.7): emit a RESEND for any message
    /// that expects data but has been silent for a resend interval; abort
    /// peers that stay silent through `abort_after_resends` attempts.
    /// Aborting frees overcommitment slots, so the grant scheduler reruns
    /// and `grants` may be produced for previously-withheld messages.
    pub fn timer_tick(
        &mut self,
        now: Nanos,
        map: &PriorityMap,
        resends: &mut Vec<(PeerId, ResendHeader)>,
        aborts: &mut Vec<InboundAbort>,
        grants: &mut Vec<(PeerId, GrantHeader)>,
    ) {
        let interval = self.cfg.resend_interval_ns;
        let limit = self.cfg.abort_after_resends;
        let mut dead: Vec<MsgKey> = Vec::new();
        // Sorted key order: the emitted RESENDs go on the wire in this
        // order, and HashMap iteration order is not deterministic across
        // runs (it would break bit-for-bit reproducibility).
        let mut keys: Vec<MsgKey> = self.msgs.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let m = self.msgs.get_mut(&key).expect("key just collected");
            // Only chase messages from which we expect bytes: either
            // granted-but-undelivered data, or a gap in what has arrived.
            let expecting =
                m.granted > m.received() || m.first_gap().is_some_and(|(o, _)| o < m.granted);
            if !expecting {
                continue;
            }
            if now.saturating_sub(m.last_activity) < interval {
                continue;
            }
            if m.resends_outstanding >= limit {
                dead.push(m.key);
                continue;
            }
            let (offset, length) = m.first_gap().expect("incomplete message has a gap");
            m.resends_outstanding += 1;
            m.last_activity = now;
            self.resends_requested += 1;
            resends.push((
                m.src,
                ResendHeader {
                    key: m.key,
                    offset,
                    length: length.min(self.cfg.rtt_bytes),
                    prio: map.sched_prio(map.max_sched_prio()),
                },
            ));
        }
        let mut removed_any = false;
        for key in dead {
            let m = self.msgs.remove(&key).expect("dead message exists");
            aborts.push(InboundAbort { key, src: m.src });
            removed_any = true;
        }
        if removed_any {
            // Freed slots must go to withheld messages immediately — no
            // data packet may ever arrive to trigger the next pass.
            self.reschedule(map, grants);
        }
    }

    /// Whether the receiver is withholding grants from at least one
    /// incomplete message because of the overcommitment limit.
    pub fn withholding(&self) -> bool {
        self.withholding
    }

    /// Total application bytes delivered.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Total messages delivered.
    pub fn delivered_msgs(&self) -> u64 {
        self.delivered_msgs
    }

    /// Number of incomplete inbound messages.
    pub fn inbound_count(&self) -> usize {
        self.msgs.len()
    }

    /// Total grants issued (diagnostics).
    pub fn grants_issued(&self) -> u64 {
        self.grants_issued
    }

    /// Total new credit extended via grants, in bytes. Unscheduled data is
    /// implicitly granted and is *not* counted here — this is the credit
    /// the grant scheduler (§3.3/§3.5) chose to put on the wire.
    pub fn granted_bytes(&self) -> u64 {
        self.granted_bytes
    }

    /// RESEND requests this receiver's loss sweep (§3.7) has emitted.
    pub fn resends_requested(&self) -> u64 {
        self.resends_requested
    }

    /// Read access to an inbound message (tests).
    pub fn get(&self, key: MsgKey) -> Option<&InboundMessage> {
        self.msgs.get(&key)
    }

    /// Snapshot of all incomplete inbound messages:
    /// `(key, len, received, granted, resends_outstanding)` sorted by
    /// remaining bytes. Diagnostics only.
    pub fn inbound_snapshot(&self) -> Vec<(MsgKey, u64, u64, u64, u32)> {
        let mut v: Vec<_> = self
            .msgs
            .values()
            .map(|m| (m.key, m.len, m.received(), m.granted, m.resends_outstanding))
            .collect();
        v.sort_by_key(|&(_, len, recv, _, _)| len - recv);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::Dir;

    fn key(seq: u64) -> MsgKey {
        MsgKey { origin: PeerId(5), seq, dir: Dir::Oneway }
    }

    fn data(seq: u64, msg_len: u64, offset: u64, payload: u32, unsched: bool) -> DataHeader {
        DataHeader {
            key: key(seq),
            msg_len,
            offset,
            payload,
            prio: 0,
            unscheduled: unsched,
            retransmit: false,
            incast_mark: false,
            tag: seq * 10,
        }
    }

    fn map() -> PriorityMap {
        PriorityMap { num_priorities: 8, unsched_levels: 1, cutoffs: vec![], version: 0 }
    }

    fn rx() -> ReceiverState {
        ReceiverState::new(HomaConfig::default())
    }

    #[test]
    fn single_packet_message_delivered_no_grants() {
        let mut r = rx();
        let mut grants = Vec::new();
        let d = r.on_data(0, PeerId(5), &data(1, 100, 0, 100, true), &map(), &mut grants);
        let d = d.expect("delivered");
        assert_eq!(d.len, 100);
        assert_eq!(d.tag, 10);
        assert!(grants.is_empty());
        assert_eq!(r.delivered_msgs(), 1);
        assert_eq!(r.inbound_count(), 0);
    }

    #[test]
    fn multi_packet_message_gets_grants_rtt_ahead() {
        let mut r = rx();
        let mut grants = Vec::new();
        let len = 100_000;
        let d = r.on_data(0, PeerId(5), &data(1, len, 0, 1_400, true), &map(), &mut grants);
        assert!(d.is_none());
        assert_eq!(grants.len(), 1);
        let (_, g) = &grants[0];
        assert_eq!(g.offset, 1_400 + 9_700, "grant reaches RTTbytes past received");
        assert_eq!(g.prio, 0, "single message uses lowest scheduled level");
    }

    #[test]
    fn overcommit_limits_active_messages() {
        let cfg = HomaConfig { overcommit_override: Some(2), ..HomaConfig::default() };
        let mut r = ReceiverState::new(cfg);
        let mut grants = Vec::new();
        // Three big inbound messages; only two should be granted.
        for seq in 1..=3 {
            r.on_data(
                0,
                PeerId(5),
                &data(seq, 1_000_000 + seq, 0, 1_400, true),
                &map(),
                &mut grants,
            );
        }
        let granted_keys: std::collections::HashSet<_> =
            grants.iter().map(|(_, g)| g.key).collect();
        assert_eq!(granted_keys.len(), 2);
        assert!(r.withholding(), "third message is withheld");
        // The two smallest-remaining are the active ones.
        assert!(granted_keys.contains(&key(1)));
        assert!(granted_keys.contains(&key(2)));
    }

    #[test]
    fn scheduled_priorities_fill_from_bottom() {
        let mut r = rx(); // K = 7 scheduled levels
        let mut grants = Vec::new();
        // One active message: gets level 0 (lowest).
        r.on_data(0, PeerId(5), &data(1, 500_000, 0, 1_400, true), &map(), &mut grants);
        assert_eq!(grants.last().unwrap().1.prio, 0);
        grants.clear();
        // Second (smaller-remaining) message arrives: it must get level 1
        // while the first drops to level 0.
        r.on_data(0, PeerId(5), &data(2, 100_000, 0, 1_400, true), &map(), &mut grants);
        let (_, g2) = grants.iter().find(|(_, g)| g.key == key(2)).expect("grant for msg2");
        assert_eq!(g2.prio, 1, "shorter message gets the higher of the used levels");
    }

    #[test]
    fn priority_change_triggers_grant_even_without_new_bytes() {
        let mut r = rx();
        let mut grants = Vec::new();
        r.on_data(0, PeerId(5), &data(1, 500_000, 0, 1_400, true), &map(), &mut grants);
        let before = grants.len();
        // A new shorter message re-ranks msg1 from level 0... it stays 0
        // (it is the larger one), but msg2 gets level 1.
        r.on_data(0, PeerId(5), &data(2, 50_000, 0, 1_400, true), &map(), &mut grants);
        assert!(grants.len() > before);
        let g1_after: Vec<_> = grants[before..].iter().filter(|(_, g)| g.key == key(1)).collect();
        // msg1's priority did not change (still lowest), so no redundant
        // grant for it beyond byte progress.
        assert!(g1_after.is_empty());
    }

    #[test]
    fn completion_activates_withheld_message() {
        let cfg = HomaConfig { overcommit_override: Some(1), ..HomaConfig::default() };
        let mut r = ReceiverState::new(cfg);
        let mut grants = Vec::new();
        r.on_data(0, PeerId(5), &data(1, 20_000, 0, 1_400, true), &map(), &mut grants);
        r.on_data(0, PeerId(5), &data(2, 30_000, 0, 1_400, true), &map(), &mut grants);
        assert!(r.withholding());
        let before = grants.iter().filter(|(_, g)| g.key == key(2)).count();
        assert_eq!(before, 0, "msg2 withheld while msg1 active");
        // Deliver the rest of msg1.
        let mut off = 1_400;
        while off < 20_000 {
            let pay = 1_400.min(20_000 - off) as u32;
            r.on_data(1, PeerId(5), &data(1, 20_000, off, pay, false), &map(), &mut grants);
            off += pay as u64;
        }
        assert_eq!(r.delivered_msgs(), 1);
        let after = grants.iter().filter(|(_, g)| g.key == key(2)).count();
        assert!(after > 0, "msg2 granted once msg1 completed");
        assert!(!r.withholding());
    }

    #[test]
    fn resend_after_silence_and_abort_after_retries() {
        let mut r = rx();
        let mut grants = Vec::new();
        r.on_data(0, PeerId(5), &data(1, 50_000, 0, 1_400, true), &map(), &mut grants);
        let mut resends = Vec::new();
        let mut aborts = Vec::new();
        // Silent for 2ms -> first RESEND for the gap right after received.
        r.timer_tick(2_100_000, &map(), &mut resends, &mut aborts, &mut Vec::new());
        assert_eq!(resends.len(), 1);
        assert_eq!(resends[0].1.offset, 1_400);
        assert!(aborts.is_empty());
        // Keep being silent: more RESENDs, then abort.
        let mut t = 2_100_000u64;
        for _ in 0..10 {
            t += 2_100_000;
            r.timer_tick(t, &map(), &mut resends, &mut aborts, &mut Vec::new());
        }
        assert_eq!(aborts.len(), 1);
        assert_eq!(aborts[0].key, key(1));
        assert_eq!(r.inbound_count(), 0);
    }

    #[test]
    fn busy_resets_loss_timer() {
        let mut r = rx();
        let mut grants = Vec::new();
        r.on_data(0, PeerId(5), &data(1, 50_000, 0, 1_400, true), &map(), &mut grants);
        let mut resends = Vec::new();
        let mut aborts = Vec::new();
        r.on_busy(1_900_000, key(1));
        r.timer_tick(2_100_000, &map(), &mut resends, &mut aborts, &mut Vec::new());
        assert!(resends.is_empty(), "BUSY deferred the RESEND");
        r.timer_tick(4_000_000, &map(), &mut resends, &mut aborts, &mut Vec::new());
        assert_eq!(resends.len(), 1);
    }

    #[test]
    fn no_resend_for_quiescent_ungranted_message() {
        // A message that is fully caught up to its grants (e.g. paused by
        // overcommitment) is not chased with RESENDs.
        let cfg = HomaConfig { overcommit_override: Some(1), ..HomaConfig::default() };
        let mut r = ReceiverState::new(cfg);
        let mut grants = Vec::new();
        // msg2 has fewer remaining bytes and is the active one; msg1
        // (one blind packet of a 400 KB message, arriving second) is
        // withheld.
        let mut off = 0;
        while off < 9_700 {
            let pay = 1_400.min(9_700 - off) as u32;
            r.on_data(0, PeerId(5), &data(2, 200_000, off, pay, true), &map(), &mut grants);
            off += pay as u64;
        }
        r.on_data(0, PeerId(5), &data(1, 400_000, 0, 1_400, true), &map(), &mut grants);
        assert!(grants.iter().all(|(_, g)| g.key == key(2)), "only msg2 granted");
        let mut resends = Vec::new();
        let mut aborts = Vec::new();
        r.timer_tick(5_000_000, &map(), &mut resends, &mut aborts, &mut Vec::new());
        // msg2 is granted-and-expecting -> chased. msg1 is withheld (its
        // granted == received) -> not chased, because its sender is not
        // expected to transmit.
        assert!(!resends.is_empty());
        assert!(resends.iter().all(|(_, h)| h.key == key(2)), "{resends:?}");
    }

    #[test]
    fn duplicate_data_does_not_double_deliver() {
        let mut r = rx();
        let mut grants = Vec::new();
        let d1 = r.on_data(0, PeerId(5), &data(1, 100, 0, 100, true), &map(), &mut grants);
        assert!(d1.is_some());
        // Retransmitted duplicate of a completed message: a fresh inbound
        // state is created; it completes again (at-least-once semantics —
        // duplicate suppression happens above the transport, §3.8).
        let d2 = r.on_data(1, PeerId(5), &data(1, 100, 0, 100, true), &map(), &mut grants);
        assert!(d2.is_some());
        assert_eq!(r.delivered_msgs(), 2);
    }
}
