//! # homa — the Homa transport protocol core
//!
//! A from-scratch implementation of the protocol described in
//! *Homa: A Receiver-Driven Low-Latency Transport Protocol Using Network
//! Priorities* (Montazeri, Li, Alizadeh, Ousterhout — SIGCOMM 2018).
//!
//! Homa is a connectionless, message-oriented datacenter transport
//! optimized for tail latency of small messages under load. Its defining
//! mechanisms, all implemented here:
//!
//! * **Blind (unscheduled) transmission** of the first `RTTbytes` of every
//!   message, so single-packet messages complete in half an RTT (§3.2).
//! * **Receiver-driven flow control**: everything past the blind prefix is
//!   sent only in response to per-packet GRANTs that keep exactly
//!   `RTTbytes` of data in flight per message (§3.3).
//! * **Dynamic priority allocation at receivers** (§3.4): unscheduled
//!   packets are prioritized by message size against cutoffs computed from
//!   the observed traffic mix and disseminated to senders; scheduled
//!   packets get a per-message priority carried in each GRANT, allocated
//!   from the *lowest* scheduled level upward to avoid preemption lag.
//! * **Controlled overcommitment** (§3.5): a receiver grants to at most
//!   one message per scheduled priority level, trading bounded TOR
//!   buffering for high downlink utilization.
//! * **Sender-side SRPT** (§3.2): when several messages have transmittable
//!   bytes, the one with fewest remaining bytes goes first, and control
//!   packets precede data.
//! * **RPCs, not connections** (§3.1): at-least-once semantics, no
//!   explicit acks (the response acknowledges the request), receiver-driven
//!   loss recovery via RESEND/BUSY (§3.7), and server state that is
//!   discarded as soon as the response is transmitted (§3.8).
//! * **Incast control** (§3.6): clients count outstanding RPCs and mark
//!   requests so servers clamp the blind prefix of large responses.
//!
//! ## Architecture
//!
//! The crate is I/O-free and clock-free: [`HomaEndpoint`] is a pure state
//! machine driven by `on_packet` / `timer_tick` / `poll_transmit` calls,
//! with time passed in as integer nanoseconds ([`Nanos`]). The same
//! endpoint runs packet-accurately inside the `homa-sim` discrete-event
//! simulator and over real UDP sockets in `homa-udp`.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`packets`] | §3.1 packet types (DATA/GRANT/RESEND/BUSY) and RPC keys |
//! | [`config`] | §3 protocol parameters (RTTbytes, priority counts, overcommitment) |
//! | [`unsched`] | §3.4 unscheduled priority allocation: cutoffs from the observed traffic mix |
//! | [`sender`] | §3.2 blind transmission + sender-side SRPT |
//! | [`receiver`] | §3.3–§3.6 grant scheduling, priority assignment, overcommitment, incast control |
//! | [`messages`] | §3.1/§3.8 message reassembly and RPC lifetimes |
//! | [`endpoint`] | the assembled protocol machine (§3, §3.7 loss recovery) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod endpoint;
pub mod messages;
pub mod packets;
pub mod receiver;
pub mod sender;
pub mod unsched;

pub use config::HomaConfig;
pub use endpoint::{HomaEndpoint, HomaEvent};
pub use packets::{
    BusyHeader, DataHeader, Dir, GrantHeader, HomaPacket, MsgKey, PeerId, ResendHeader,
};
pub use unsched::{PriorityMap, TrafficTracker};

/// Absolute time in integer nanoseconds. The protocol core is agnostic to
/// where time comes from (simulated clock or a monotonic OS clock).
pub type Nanos = u64;
