//! Unscheduled priority allocation (§3.4, Figure 4).
//!
//! Receivers decide how the 8 network priority levels are split between
//! unscheduled (blind) and scheduled (granted) packets, and where the
//! message-size cutoffs between unscheduled levels fall:
//!
//! 1. Measure the fraction of incoming bytes that arrive unscheduled
//!    (`min(size, RTTbytes)` of every message).
//! 2. Reserve that fraction of the priority levels — the *highest* ones —
//!    for unscheduled packets (at least one, at most `P-1` so one
//!    scheduled level always exists).
//! 3. Choose size cutoffs between the unscheduled levels so each level
//!    carries the same number of unscheduled bytes, with smaller messages
//!    on higher levels.
//!
//! [`PriorityMap`] is the resulting allocation; [`TrafficTracker`] is the
//! receiver-side measurement machine that produces it (the paper's
//! implementation precomputed the map from workload knowledge; both paths
//! are supported — see `HomaConfig::dynamic_cutoffs`).

use crate::config::HomaConfig;
use crate::packets::CutoffsUpdate;
use serde::{Deserialize, Serialize};

/// A complete priority allocation for one receiver's downlink.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityMap {
    /// Total priority levels (`P`).
    pub num_priorities: u8,
    /// Levels reserved for unscheduled packets (the top `unsched_levels`).
    pub unsched_levels: u8,
    /// Ascending size boundaries between unscheduled levels
    /// (`unsched_levels - 1` entries). A message of `len <= cutoffs[0]`
    /// uses the top level; `len <= cutoffs[i]` uses level `P-1-i`; larger
    /// than all cutoffs uses the lowest unscheduled level.
    pub cutoffs: Vec<u64>,
    /// Version for dissemination.
    pub version: u64,
}

impl PriorityMap {
    /// An allocation with a single unscheduled level and `P-1` scheduled
    /// levels — the safe default before any traffic has been observed.
    pub fn default_for(cfg: &HomaConfig) -> Self {
        let p = cfg.num_priorities;
        let unsched = cfg.unsched_levels_override.unwrap_or(1).min(p.max(2) - 1).max(1);
        let unsched = if p == 1 { 1 } else { unsched };
        let cutoffs = match &cfg.cutoff_override {
            Some(c) => {
                assert_eq!(
                    c.len() as u8,
                    unsched - 1,
                    "cutoff_override length must be unsched_levels - 1"
                );
                c.clone()
            }
            None => default_cutoffs(unsched, cfg.unsched_limit),
        };
        PriorityMap { num_priorities: p, unsched_levels: unsched, cutoffs, version: 0 }
    }

    /// Number of scheduled levels (`P - unsched`, at least 1 unless P==1).
    pub fn sched_levels(&self) -> u8 {
        if self.num_priorities == 1 {
            1
        } else {
            self.num_priorities - self.unsched_levels
        }
    }

    /// The priority level for an *unscheduled* packet of a message of
    /// `len` bytes: smallest messages get the highest level.
    pub fn unsched_prio(&self, len: u64) -> u8 {
        let top = self.num_priorities - 1;
        for (i, &c) in self.cutoffs.iter().enumerate() {
            if len <= c {
                return top - i as u8;
            }
        }
        top - self.cutoffs.len() as u8
    }

    /// The priority level for a *scheduled* packet given the rank the
    /// receiver assigned (`0` = lowest scheduled level). Clamped into the
    /// scheduled band.
    pub fn sched_prio(&self, rank: u8) -> u8 {
        rank.min(self.sched_levels() - 1)
    }

    /// Highest scheduled level index.
    pub fn max_sched_prio(&self) -> u8 {
        self.sched_levels() - 1
    }

    /// Serialize for dissemination in GRANT/CUTOFFS packets.
    pub fn to_update(&self) -> CutoffsUpdate {
        CutoffsUpdate {
            version: self.version,
            unsched_levels: self.unsched_levels,
            cutoffs: self.cutoffs.clone(),
        }
    }

    /// Apply a disseminated update (sender side). Returns true if newer.
    pub fn apply_update(&mut self, u: &CutoffsUpdate) -> bool {
        if u.version <= self.version {
            return false;
        }
        self.version = u.version;
        self.unsched_levels = u.unsched_levels.clamp(1, self.num_priorities.max(2) - 1).max(1);
        if self.num_priorities == 1 {
            self.unsched_levels = 1;
        }
        self.cutoffs = u.cutoffs.clone();
        self.cutoffs.truncate(self.unsched_levels as usize - 1);
        true
    }
}

/// Evenly log-spaced fallback cutoffs below `limit` used before any
/// measurement exists.
fn default_cutoffs(unsched_levels: u8, limit: u64) -> Vec<u64> {
    let n = unsched_levels.saturating_sub(1) as usize;
    if n == 0 {
        return Vec::new();
    }
    let lo = 64f64.ln();
    let hi = (limit.max(128) as f64).ln();
    (1..=n).map(|i| (lo + (hi - lo) * i as f64 / (n + 1) as f64).exp().round() as u64).collect()
}

/// Receiver-side traffic measurement that derives a [`PriorityMap`].
///
/// Maintains a log-bucketed histogram of incoming message sizes weighted
/// by unscheduled and total bytes. `recompute` implements the Figure 4
/// algorithm against the histogram.
#[derive(Debug, Clone)]
pub struct TrafficTracker {
    /// log2-spaced buckets: bucket `i` covers sizes `[2^(i/4), 2^((i+1)/4))`
    /// — quarter-decades give ~3% size resolution, plenty for cutoffs.
    unsched_bytes: Vec<f64>,
    total_unsched: f64,
    total_bytes: f64,
    messages_seen: u64,
}

const BUCKETS: usize = 128; // covers sizes up to 2^32 at 4 buckets/octave

fn bucket_of(size: u64) -> usize {
    let s = size.max(1) as f64;
    ((s.log2() * 4.0) as usize).min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> u64 {
    2f64.powf((i + 1) as f64 / 4.0).ceil() as u64
}

impl TrafficTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        TrafficTracker {
            unsched_bytes: vec![0.0; BUCKETS],
            total_unsched: 0.0,
            total_bytes: 0.0,
            messages_seen: 0,
        }
    }

    /// Record an incoming message of `len` bytes under blind-prefix limit
    /// `unsched_limit`.
    pub fn record(&mut self, len: u64, unsched_limit: u64) {
        let unsched = len.min(unsched_limit) as f64;
        self.unsched_bytes[bucket_of(len)] += unsched;
        self.total_unsched += unsched;
        self.total_bytes += len as f64;
        self.messages_seen += 1;
    }

    /// Messages recorded so far.
    pub fn messages_seen(&self) -> u64 {
        self.messages_seen
    }

    /// Fraction of observed bytes that were unscheduled.
    pub fn unsched_fraction(&self) -> f64 {
        if self.total_bytes == 0.0 {
            1.0
        } else {
            self.total_unsched / self.total_bytes
        }
    }

    /// Derive a fresh [`PriorityMap`] per the Figure 4 algorithm,
    /// respecting any overrides in `cfg`. `version` should exceed the
    /// previous map's version.
    pub fn recompute(&self, cfg: &HomaConfig, version: u64) -> PriorityMap {
        let p = cfg.num_priorities;
        if p == 1 {
            return PriorityMap { num_priorities: 1, unsched_levels: 1, cutoffs: vec![], version };
        }
        // Step 1-2: split levels by unscheduled byte fraction.
        let unsched_levels = match cfg.unsched_levels_override {
            Some(u) => u.clamp(1, p - 1),
            None => {
                let frac = self.unsched_fraction();
                ((frac * p as f64).round() as u8).clamp(1, p - 1)
            }
        };
        // Step 3: equal-byte cutoffs.
        let cutoffs = match &cfg.cutoff_override {
            Some(c) => {
                let mut c = c.clone();
                c.truncate(unsched_levels as usize - 1);
                c
            }
            None => self.equal_byte_cutoffs(unsched_levels),
        };
        PriorityMap { num_priorities: p, unsched_levels, cutoffs, version }
    }

    /// Size boundaries placing `1/levels` of unscheduled bytes in each
    /// unscheduled level.
    fn equal_byte_cutoffs(&self, levels: u8) -> Vec<u64> {
        let n = levels.saturating_sub(1) as usize;
        if n == 0 || self.total_unsched == 0.0 {
            return default_cutoffs(levels, 10_000);
        }
        let mut cutoffs = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut next_target = 1;
        for (i, &b) in self.unsched_bytes.iter().enumerate() {
            acc += b;
            while next_target <= n && acc >= self.total_unsched * next_target as f64 / levels as f64
            {
                cutoffs.push(bucket_upper(i));
                next_target += 1;
            }
            if next_target > n {
                break;
            }
        }
        while cutoffs.len() < n {
            let last = cutoffs.last().copied().unwrap_or(64);
            cutoffs.push(last * 2);
        }
        // Strictly ascending.
        for i in 1..cutoffs.len() {
            if cutoffs[i] <= cutoffs[i - 1] {
                cutoffs[i] = cutoffs[i - 1] + 1;
            }
        }
        cutoffs
    }
}

impl Default for TrafficTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HomaConfig {
        HomaConfig::default()
    }

    #[test]
    fn default_map_has_one_unsched_level() {
        let m = PriorityMap::default_for(&cfg());
        assert_eq!(m.unsched_levels, 1);
        assert_eq!(m.sched_levels(), 7);
        assert_eq!(m.unsched_prio(1), 7);
        assert_eq!(m.unsched_prio(1_000_000), 7);
    }

    #[test]
    fn unsched_prio_maps_small_to_high() {
        let m = PriorityMap {
            num_priorities: 8,
            unsched_levels: 4,
            cutoffs: vec![280, 1_000, 4_000],
            version: 1,
        };
        assert_eq!(m.unsched_prio(100), 7);
        assert_eq!(m.unsched_prio(280), 7);
        assert_eq!(m.unsched_prio(281), 6);
        assert_eq!(m.unsched_prio(1_000), 6);
        assert_eq!(m.unsched_prio(3_000), 5);
        assert_eq!(m.unsched_prio(1_000_000), 4);
        assert_eq!(m.sched_levels(), 4);
        assert_eq!(m.max_sched_prio(), 3);
    }

    #[test]
    fn sched_prio_clamps_to_band() {
        let m = PriorityMap {
            num_priorities: 8,
            unsched_levels: 6,
            cutoffs: vec![10, 20, 30, 40, 50],
            version: 1,
        };
        assert_eq!(m.sched_levels(), 2);
        assert_eq!(m.sched_prio(0), 0);
        assert_eq!(m.sched_prio(1), 1);
        assert_eq!(m.sched_prio(9), 1);
    }

    #[test]
    fn tracker_fraction_splits_levels() {
        // All tiny messages: everything unscheduled -> 7 unsched levels
        // (clamped to leave one scheduled).
        let mut t = TrafficTracker::new();
        for _ in 0..1_000 {
            t.record(100, 9_700);
        }
        assert!((t.unsched_fraction() - 1.0).abs() < 1e-9);
        let m = t.recompute(&cfg(), 1);
        assert_eq!(m.unsched_levels, 7);
        assert_eq!(m.sched_levels(), 1);

        // All huge messages: unscheduled fraction tiny -> 1 unsched level.
        let mut t = TrafficTracker::new();
        for _ in 0..100 {
            t.record(10_000_000, 9_700);
        }
        assert!(t.unsched_fraction() < 0.01);
        let m = t.recompute(&cfg(), 1);
        assert_eq!(m.unsched_levels, 1);
        assert_eq!(m.sched_levels(), 7);
    }

    #[test]
    fn equal_byte_cutoffs_balance_traffic() {
        // Two size classes with equal unscheduled byte volume: the cutoff
        // should separate them.
        let mut t = TrafficTracker::new();
        for _ in 0..10_000 {
            t.record(100, 9_700); // 1e6 unscheduled bytes total
        }
        for _ in 0..100 {
            t.record(10_000, 9_700); // ~0.97e6 unscheduled bytes total
        }
        let cfg = HomaConfig { unsched_levels_override: Some(2), ..HomaConfig::default() };
        let m = t.recompute(&cfg, 1);
        assert_eq!(m.cutoffs.len(), 1);
        let c = m.cutoffs[0];
        assert!((100..10_000).contains(&c), "cutoff {c} should separate the two size classes");
        // Small messages land on the top priority.
        assert_eq!(m.unsched_prio(100), 7);
        assert_eq!(m.unsched_prio(10_000), 6);
    }

    #[test]
    fn cutoff_override_respected() {
        let cfg = HomaConfig {
            unsched_levels_override: Some(2),
            cutoff_override: Some(vec![1_930]),
            ..HomaConfig::default()
        };
        let t = TrafficTracker::new();
        let m = t.recompute(&cfg, 3);
        assert_eq!(m.cutoffs, vec![1_930]);
        assert_eq!(m.unsched_prio(1_930), 7);
        assert_eq!(m.unsched_prio(1_931), 6);
    }

    #[test]
    fn update_round_trip_and_versioning() {
        let mut t = TrafficTracker::new();
        for _ in 0..100 {
            t.record(500, 9_700);
        }
        let m = t.recompute(&cfg(), 5);
        let upd = m.to_update();
        let mut sender_side = PriorityMap::default_for(&cfg());
        assert!(sender_side.apply_update(&upd));
        assert_eq!(sender_side.unsched_levels, m.unsched_levels);
        assert_eq!(sender_side.cutoffs, m.cutoffs);
        // Stale updates ignored.
        let stale = CutoffsUpdate { version: 2, unsched_levels: 1, cutoffs: vec![] };
        assert!(!sender_side.apply_update(&stale));
        assert_eq!(sender_side.version, 5);
    }

    #[test]
    fn single_priority_degenerates() {
        let cfg = HomaConfig { num_priorities: 1, ..HomaConfig::default() };
        let t = TrafficTracker::new();
        let m = t.recompute(&cfg, 1);
        assert_eq!(m.unsched_levels, 1);
        assert_eq!(m.sched_levels(), 1);
        assert_eq!(m.unsched_prio(123), 0);
        assert_eq!(m.sched_prio(3), 0);
    }

    #[test]
    fn w2_like_distribution_produces_figure4_shape() {
        // Figure 4: for W2 about 80% of bytes are unscheduled and Homa
        // allocates 6 of 8 levels to unscheduled packets, with the top
        // level covering roughly sizes 1-280 bytes. Feed the tracker a
        // deterministic quantile sweep of the reconstructed W2.
        let mut t = TrafficTracker::new();
        let w2 = homa_workloads::Workload::W2.dist();
        let n = 4_000;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            t.record(w2.quantile(p), 9_700);
        }
        let m = t.recompute(&cfg(), 1);
        assert_eq!(m.unsched_levels, 6, "unsched fraction {}", t.unsched_fraction());
        // Cutoffs ascend and the top level covers the smallest messages
        // (first cutoff in the low hundreds of bytes, Figure 4's ~280).
        assert!(m.cutoffs.windows(2).all(|w| w[0] < w[1]));
        let first = m.cutoffs[0];
        assert!((100..=600).contains(&first), "first cutoff {first}");
    }
}
