//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// All tunables of a Homa endpoint.
///
/// Defaults correspond to the paper's 10 Gbps configuration: `RTTbytes ≈
/// 10 KB`, 8 in-network priority levels, millisecond-scale loss timers.
/// The experiment sweeps of §5.2 (Figures 16–20) are expressed as
/// overrides here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomaConfig {
    /// The bandwidth-delay product: how many bytes a sender transmits
    /// blindly before switching to grant-paced transmission, and how far
    /// ahead of received data grants reach. ~9.7 KB on the paper's
    /// simulated fabric, 10 KB in their implementation.
    pub rtt_bytes: u64,

    /// Cap on blindly-transmitted bytes per message. Normally equal to
    /// [`rtt_bytes`](Self::rtt_bytes); Figure 20 sweeps it independently.
    pub unsched_limit: u64,

    /// Number of in-network priority levels available (8 on commodity
    /// switches).
    pub num_priorities: u8,

    /// Force the split between unscheduled (top) and scheduled (bottom)
    /// levels instead of deriving it from traffic: `Some(u)` reserves `u`
    /// levels for unscheduled packets. Used by Figures 16–19.
    pub unsched_levels_override: Option<u8>,

    /// Force the message-size cutoffs between unscheduled levels
    /// (ascending sizes; level P7 covers sizes ≤ first cutoff). Used by
    /// Figure 18. `None` derives cutoffs from traffic (Figure 4
    /// algorithm).
    pub cutoff_override: Option<Vec<u64>>,

    /// Degree of overcommitment: how many messages a receiver grants to
    /// simultaneously. `None` (the paper's policy) uses the number of
    /// scheduled priority levels.
    pub overcommit_override: Option<u8>,

    /// Maximum application payload bytes per DATA packet.
    pub max_payload: u32,

    /// Wire overhead of a DATA packet beyond its payload: Homa header +
    /// IP/Ethernet framing.
    pub data_overhead: u32,

    /// Wire size of a control packet (GRANT/RESEND/BUSY/CUTOFFS).
    pub ctrl_bytes: u32,

    /// Receiver-side loss detection: if an incomplete inbound message sees
    /// no packets for this long, send a RESEND ("a few milliseconds" in
    /// the paper).
    pub resend_interval_ns: u64,

    /// Give up on a peer after this many consecutive unanswered RESENDs.
    pub abort_after_resends: u32,

    /// Incast control (§3.6): when a client has more than this many
    /// outstanding RPCs, new requests are marked so the server limits the
    /// response's blind prefix.
    pub incast_threshold: u32,

    /// Blind-prefix limit applied to responses of incast-marked RPCs
    /// ("a few hundred bytes").
    pub incast_unsched_limit: u64,

    /// Whether receivers measure incoming traffic and recompute
    /// unscheduled cutoffs on the fly. The paper's implementation
    /// precomputed cutoffs from workload knowledge; ours supports both.
    pub dynamic_cutoffs: bool,

    /// Messages observed between dynamic cutoff recomputations.
    pub cutoff_refresh_msgs: u64,
}

impl Default for HomaConfig {
    fn default() -> Self {
        HomaConfig {
            rtt_bytes: 9_700,
            unsched_limit: 9_700,
            num_priorities: 8,
            unsched_levels_override: None,
            cutoff_override: None,
            overcommit_override: None,
            max_payload: 1_400,
            data_overhead: 60,
            ctrl_bytes: 40,
            resend_interval_ns: 2_000_000, // 2 ms
            abort_after_resends: 5,
            incast_threshold: 64,
            incast_unsched_limit: 400,
            dynamic_cutoffs: false,
            cutoff_refresh_msgs: 1_000,
        }
    }
}

impl HomaConfig {
    /// Full wire size of a DATA packet carrying `payload` bytes.
    pub fn data_wire_bytes(&self, payload: u32) -> u32 {
        payload + self.data_overhead
    }

    /// Wire size of a full-size DATA packet.
    pub fn full_data_wire_bytes(&self) -> u32 {
        self.data_wire_bytes(self.max_payload)
    }

    /// Number of DATA packets needed for a message of `len` bytes.
    pub fn packets_for(&self, len: u64) -> u64 {
        len.div_ceil(self.max_payload as u64).max(1)
    }

    /// The blind-prefix limit for a message, honouring the incast mark.
    pub fn unsched_limit_for(&self, incast_marked: bool) -> u64 {
        if incast_marked {
            self.incast_unsched_limit.min(self.unsched_limit)
        } else {
            self.unsched_limit
        }
    }

    /// Validate internal consistency; called by `HomaEndpoint::new`.
    pub fn validate(&self) {
        assert!(self.rtt_bytes > 0, "rtt_bytes must be positive");
        assert!(self.max_payload > 0, "max_payload must be positive");
        assert!((1..=8).contains(&self.num_priorities), "num_priorities must be in 1..=8");
        if let Some(u) = self.unsched_levels_override {
            assert!(
                u >= 1 && u < self.num_priorities || self.num_priorities == 1 && u == 1,
                "unsched levels must leave at least one scheduled level (or num_priorities == 1)"
            );
        }
        if let Some(c) = &self.cutoff_override {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "cutoffs must be ascending");
        }
        assert!(self.resend_interval_ns > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_paper_like() {
        let c = HomaConfig::default();
        c.validate();
        assert_eq!(c.rtt_bytes, 9_700);
        assert_eq!(c.num_priorities, 8);
        assert_eq!(c.full_data_wire_bytes(), 1_460);
    }

    #[test]
    fn packets_for_rounds_up() {
        let c = HomaConfig::default();
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(1_400), 1);
        assert_eq!(c.packets_for(1_401), 2);
        assert_eq!(c.packets_for(14_000), 10);
        // Zero-length messages still need one (empty) packet.
        assert_eq!(c.packets_for(0), 1);
    }

    #[test]
    fn incast_clamps_unsched() {
        let c = HomaConfig::default();
        assert_eq!(c.unsched_limit_for(false), 9_700);
        assert_eq!(c.unsched_limit_for(true), 400);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_cutoffs() {
        let c = HomaConfig { cutoff_override: Some(vec![100, 100]), ..HomaConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "scheduled level")]
    fn rejects_all_unscheduled() {
        let c = HomaConfig { unsched_levels_override: Some(8), ..HomaConfig::default() };
        c.validate();
    }
}
