//! Property-based tests for the protocol core's invariants.

use homa::messages::{InboundMessage, OutboundMessage};
use homa::packets::{Dir, MsgKey, PeerId};
use homa::unsched::TrafficTracker;
use homa::HomaConfig;
use proptest::prelude::*;

fn key() -> MsgKey {
    MsgKey { origin: PeerId(1), seq: 1, dir: Dir::Oneway }
}

proptest! {
    #[test]
    fn inbound_reassembly_any_order(
        len in 1u64..100_000,
        order in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        // Fragment [0, len) into packet-size pieces, deliver them in an
        // arbitrary order (with duplicates), assert exact completion.
        let mut m = InboundMessage::new(key(), PeerId(1), len, 0);
        let pkts: Vec<(u64, u64)> = (0..len.div_ceil(1_400))
            .map(|i| (i * 1_400, 1_400.min(len - i * 1_400)))
            .collect();
        // Arbitrary delivery order with repetition.
        for &o in &order {
            let (off, l) = pkts[(o % pkts.len() as u64) as usize];
            m.record(off, l);
            prop_assert!(m.received() <= len);
        }
        // Deliver everything to finish.
        for &(off, l) in &pkts {
            m.record(off, l);
        }
        prop_assert!(m.complete());
        prop_assert_eq!(m.received(), len);
        prop_assert_eq!(m.first_gap(), None);
        prop_assert_eq!(m.contiguous(), len);
    }

    #[test]
    fn inbound_gap_is_truly_missing(
        len in 2_800u64..50_000,
        received in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        let mut m = InboundMessage::new(key(), PeerId(1), len, 0);
        let npkts = len.div_ceil(1_400);
        for &r in &received {
            let i = r % npkts;
            m.record(i * 1_400, 1_400.min(len - i * 1_400));
        }
        if let Some((off, l)) = m.first_gap() {
            prop_assert!(l >= 1);
            prop_assert!(off + l <= len);
            // The reported gap must not overlap anything received: feeding
            // it back must add exactly l bytes.
            let before = m.received();
            let added = m.record(off, l);
            prop_assert_eq!(added, l);
            prop_assert_eq!(m.received(), before + l);
        } else {
            prop_assert!(m.complete());
        }
    }

    #[test]
    fn outbound_chunks_cover_exactly_once(
        len in 1u64..60_000,
        grant_steps in proptest::collection::vec(1u64..20_000, 1..10),
    ) {
        let mut m = OutboundMessage {
            key: key(),
            dst: PeerId(2),
            len,
            sent: 0,
            granted: 1_400.min(len),
            unsched_limit: 1_400.min(len),
            sched_prio: 0,
            unsched_prio: 7,
            retx: Vec::new(),
            incast_mark: false,
            tag: 0,
            created_at: 0,
            last_peer_activity: 0,
            stall_pokes: 0,
        };
        let mut covered = vec![false; len as usize];
        let mut grants = grant_steps.into_iter();
        loop {
            while let Some((off, l, retx)) = m.next_chunk(1_400) {
                prop_assert!(!retx);
                prop_assert!(l > 0);
                for b in off..off + l as u64 {
                    prop_assert!(!covered[b as usize], "byte {} sent twice", b);
                    covered[b as usize] = true;
                }
            }
            if m.fully_sent() {
                break;
            }
            match grants.next() {
                Some(g) => {
                    let new = (m.granted + g).min(len);
                    m.granted = new;
                    if new == m.granted && m.granted < len && new <= m.sent {
                        // No progress possible and no more grants coming.
                        if m.granted <= m.sent { continue; }
                    }
                }
                None => break,
            }
        }
        // Every byte sent at most once; bytes sent = m.sent.
        let sent_count = covered.iter().filter(|&&c| c).count() as u64;
        prop_assert_eq!(sent_count, m.sent);
    }

    #[test]
    fn tracker_cutoffs_always_valid(
        sizes in proptest::collection::vec(1u64..10_000_000, 1..200),
        unsched_override in proptest::option::of(1u8..8),
    ) {
        let mut t = TrafficTracker::new();
        for &s in &sizes {
            t.record(s, 9_700);
        }
        let cfg = HomaConfig { unsched_levels_override: unsched_override, ..HomaConfig::default() };
        let map = t.recompute(&cfg, 1);
        // Structural invariants.
        prop_assert!(map.unsched_levels >= 1);
        prop_assert!(map.unsched_levels < map.num_priorities);
        prop_assert_eq!(map.cutoffs.len() as u8, map.unsched_levels - 1);
        prop_assert!(map.cutoffs.windows(2).all(|w| w[0] < w[1]));
        // Every size maps into the unscheduled band.
        for &s in &sizes {
            let p = map.unsched_prio(s);
            prop_assert!(p >= map.num_priorities - map.unsched_levels);
            prop_assert!(p < map.num_priorities);
        }
        // Smaller size never gets lower priority.
        let mut prev = map.unsched_prio(1);
        for s in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let p = map.unsched_prio(s);
            prop_assert!(p <= prev);
            prev = p;
        }
    }
}
