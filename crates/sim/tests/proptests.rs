//! Property-based tests for the simulation kernel.

use homa_sim::queues::PortQueue;
use homa_sim::{EventQueue, Packet, PacketMeta, QueueDiscipline, QueueKind, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct M {
    bytes: u32,
    prio: u8,
    remaining: u64,
    ctrl: bool,
}

impl PacketMeta for M {
    fn wire_bytes(&self) -> u32 {
        self.bytes
    }
    fn priority(&self) -> u8 {
        self.prio
    }
    fn fine_priority(&self) -> Option<u64> {
        if self.ctrl {
            None
        } else {
            Some(self.remaining)
        }
    }
    fn is_control(&self) -> bool {
        self.ctrl
    }
    fn goodput_bytes(&self) -> u32 {
        self.bytes
    }
    fn trimmed(&self) -> Option<Self> {
        if self.ctrl {
            None
        } else {
            Some(M { bytes: 60, ..self.clone() })
        }
    }
}

fn arb_meta() -> impl Strategy<Value = M> {
    (60u32..2_000, 0u8..8, 0u64..1_000_000, any::<bool>())
        .prop_map(|(bytes, prio, remaining, ctrl)| M { bytes, prio, remaining, ctrl })
}

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn strict_priority_conserves_packets_and_bytes(metas in proptest::collection::vec(arb_meta(), 1..100)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline::strict8(1 << 30));
        let mut total_bytes = 0u64;
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            total_bytes += m.bytes as u64;
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        prop_assert_eq!(q.bytes(), total_bytes);
        prop_assert_eq!(q.len(), metas.len());
        // Dequeue: priorities never increase.
        let mut prev = u8::MAX;
        let mut out = 0;
        while let Some(p) = q.dequeue(SimTime::from_micros(1)) {
            prop_assert!(p.priority() <= prev);
            prev = p.priority();
            out += 1;
        }
        prop_assert_eq!(out, metas.len());
        prop_assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn pfabric_dequeues_in_remaining_order_among_data(metas in proptest::collection::vec(arb_meta(), 1..80)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 1 << 30,
            ecn: None,
        });
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        // Control packets drain first, then data in ascending remaining.
        let mut seen_data = false;
        let mut prev_rem = 0u64;
        while let Some(p) = q.dequeue(SimTime::from_micros(1)) {
            match p.meta.fine_priority() {
                None => prop_assert!(!seen_data, "control after data"),
                Some(r) => {
                    if seen_data {
                        prop_assert!(r >= prev_rem, "remaining order violated");
                    }
                    seen_data = true;
                    prev_rem = r;
                }
            }
        }
    }

    #[test]
    fn ndp_never_drops_data_it_can_trim(metas in proptest::collection::vec(arb_meta(), 1..100)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::NdpTrim { data_cap_packets: 4 },
            cap_bytes: 1 << 30,
            ecn: None,
        });
        let n = metas.len();
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        prop_assert_eq!(q.drops, 0, "trimmable data is never dropped");
        // Every packet (possibly trimmed) comes back out.
        let mut out = 0;
        while q.dequeue(SimTime::from_micros(1)).is_some() {
            out += 1;
        }
        prop_assert_eq!(out, n);
    }

    #[test]
    fn delay_attribution_never_exceeds_wait(
        waits in proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..50),
    ) {
        use homa_sim::DelayBreakdown;
        let mut d = DelayBreakdown::default();
        let mut total = 0u64;
        for (w, l) in waits {
            let lag = l.min(w);
            d.record_wait(SimDuration::from_nanos(w), SimDuration::from_nanos(lag));
            total += w;
        }
        prop_assert_eq!(d.total().as_nanos(), total);
        prop_assert!(d.preemption_lag.as_nanos() <= total);
    }
}
