//! Property-based tests for the simulation kernel.

use homa_sim::queues::PortQueue;
use homa_sim::{
    EngineKind, EventQueue, HierEventQueue, LaneId, NetworkConfig, Packet, PacketMeta,
    QueueDiscipline, QueueKind, SimDuration, SimTime,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct M {
    bytes: u32,
    prio: u8,
    remaining: u64,
    ctrl: bool,
}

impl PacketMeta for M {
    fn wire_bytes(&self) -> u32 {
        self.bytes
    }
    fn priority(&self) -> u8 {
        self.prio
    }
    fn fine_priority(&self) -> Option<u64> {
        if self.ctrl {
            None
        } else {
            Some(self.remaining)
        }
    }
    fn is_control(&self) -> bool {
        self.ctrl
    }
    fn goodput_bytes(&self) -> u32 {
        self.bytes
    }
    fn trimmed(&self) -> Option<Self> {
        if self.ctrl {
            None
        } else {
            Some(M { bytes: 60, ..self.clone() })
        }
    }
}

fn arb_meta() -> impl Strategy<Value = M> {
    (60u32..2_000, 0u8..8, 0u64..1_000_000, any::<bool>())
        .prop_map(|(bytes, prio, remaining, ctrl)| M { bytes, prio, remaining, ctrl })
}

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn strict_priority_conserves_packets_and_bytes(metas in proptest::collection::vec(arb_meta(), 1..100)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline::strict8(1 << 30));
        let mut total_bytes = 0u64;
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            total_bytes += m.bytes as u64;
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        prop_assert_eq!(q.bytes(), total_bytes);
        prop_assert_eq!(q.len(), metas.len());
        // Dequeue: priorities never increase.
        let mut prev = u8::MAX;
        let mut out = 0;
        while let Some(p) = q.dequeue(SimTime::from_micros(1)) {
            prop_assert!(p.priority() <= prev);
            prev = p.priority();
            out += 1;
        }
        prop_assert_eq!(out, metas.len());
        prop_assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn pfabric_dequeues_in_remaining_order_among_data(metas in proptest::collection::vec(arb_meta(), 1..80)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 1 << 30,
            ecn: None,
        });
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        // Control packets drain first, then data in ascending remaining.
        let mut seen_data = false;
        let mut prev_rem = 0u64;
        while let Some(p) = q.dequeue(SimTime::from_micros(1)) {
            match p.meta.fine_priority() {
                None => prop_assert!(!seen_data, "control after data"),
                Some(r) => {
                    if seen_data {
                        prop_assert!(r >= prev_rem, "remaining order violated");
                    }
                    seen_data = true;
                    prev_rem = r;
                }
            }
        }
    }

    #[test]
    fn ndp_never_drops_data_it_can_trim(metas in proptest::collection::vec(arb_meta(), 1..100)) {
        let mut q: PortQueue<M> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::NdpTrim { data_cap_packets: 4 },
            cap_bytes: 1 << 30,
            ecn: None,
        });
        let n = metas.len();
        for (i, m) in metas.iter().enumerate() {
            let pkt = Packet::new(homa_sim::HostId(0), homa_sim::HostId(1), m.clone());
            q.enqueue(SimTime::from_nanos(i as u64), pkt, None);
        }
        prop_assert_eq!(q.drops, 0, "trimmable data is never dropped");
        // Every packet (possibly trimmed) comes back out.
        let mut out = 0;
        while q.dequeue(SimTime::from_micros(1)).is_some() {
            out += 1;
        }
        prop_assert_eq!(out, n);
    }

    #[test]
    fn calendar_matches_heap_with_far_future_timers(
        // Bimodal times: hot near-term events plus timers far beyond the
        // calendar's ring horizon (4096 buckets x 256ns ≈ 1.05ms; the
        // far mode reaches a full second), interleaved with pops. The calendar
        // engine must stay in (time, seq) lockstep with the plain heap
        // through ring, late-heap and far-heap migrations alike.
        ops in proptest::collection::vec(
            (0u8..4, 0u64..200_000, any::<bool>(), 0u32..5), 1..300),
    ) {
        let mut flat: EventQueue<usize> = EventQueue::new();
        let mut hier: HierEventQueue<usize> = HierEventQueue::with_bucket_width(5, 256);
        for (i, &(kind, t, far, lane)) in ops.iter().enumerate() {
            match kind {
                0 | 1 => {
                    let at = if far {
                        SimTime::from_nanos(1_000_000_000 + t * 37)
                    } else {
                        SimTime::from_nanos(t)
                    };
                    flat.schedule(at, i);
                    hier.schedule(LaneId(lane), at, i);
                }
                2 => prop_assert_eq!(flat.pop(), hier.pop()),
                _ => prop_assert_eq!(
                    flat.pop_if_before(SimTime::from_nanos(t)),
                    hier.pop_if_before(SimTime::from_nanos(t))
                ),
            }
            prop_assert_eq!(flat.len(), hier.len());
            prop_assert_eq!(flat.peek_time(), hier.peek_time());
        }
        loop {
            let (a, b) = (flat.pop(), hier.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn simultaneous_ties_across_lanes_fire_in_insertion_order(
        // Many events at a handful of distinct instants spread across
        // lanes (and hence across window groups): (time, seq) ties must
        // resolve purely by insertion order, never by lane.
        lanes in proptest::collection::vec((0u32..7, 0u64..3), 1..200),
    ) {
        let mut flat: EventQueue<usize> = EventQueue::new();
        let mut hier: HierEventQueue<usize> = HierEventQueue::with_bucket_width(7, 256);
        for (i, &(lane, slot)) in lanes.iter().enumerate() {
            let at = SimTime::from_nanos(1_000 * slot);
            flat.schedule(at, i);
            hier.schedule(LaneId(lane), at, i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some(got) = hier.pop() {
            prop_assert_eq!(Some(got), flat.pop());
            if let Some((pt, pi)) = prev {
                prop_assert!(got.0 > pt || got.1 > pi, "insertion order violated");
            }
            prev = Some(got);
        }
        prop_assert_eq!(flat.pop(), None);
    }

    #[test]
    fn empty_group_windows_keep_parallel_bit_identical(
        // Traffic confined to rack 0 of a two-rack fabric: rack 1 and
        // the spine boundary group see empty windows throughout. The
        // parallel dispatcher must handle all-idle groups and still
        // replay the legacy heap bit-for-bit.
        msgs in proptest::collection::vec((0u32..8, 0u32..8, 100u64..5_000, 0u64..30), 1..40),
    ) {
        use homa_sim::{AppEvent, HostId, Network, TimerToken, Topology, Transport, TransportActions};

        #[derive(Debug, Clone)]
        struct Meta(u32);
        impl PacketMeta for Meta {
            fn wire_bytes(&self) -> u32 {
                self.0
            }
            fn priority(&self) -> u8 {
                0
            }
            fn is_control(&self) -> bool {
                false
            }
            fn goodput_bytes(&self) -> u32 {
                self.0
            }
        }

        struct OneShot {
            me: HostId,
            outbox: std::collections::VecDeque<Packet<Meta>>,
        }
        impl Transport<Meta> for OneShot {
            fn on_packet(&mut self, _now: SimTime, pkt: Packet<Meta>, act: &mut TransportActions) {
                act.event(AppEvent::MessageDelivered {
                    src: pkt.src,
                    tag: pkt.meta.0 as u64,
                    len: pkt.meta.goodput_bytes() as u64,
                });
            }
            fn on_timer(&mut self, _n: SimTime, _t: TimerToken, _a: &mut TransportActions) {}
            fn next_packet(&mut self, _now: SimTime) -> Option<Packet<Meta>> {
                self.outbox.pop_front()
            }
            fn inject_message(
                &mut self,
                _now: SimTime,
                dst: HostId,
                len: u64,
                _tag: u64,
                act: &mut TransportActions,
            ) {
                self.outbox.push_back(Packet::new(self.me, dst, Meta(len as u32 + 60)));
                act.kick_tx();
            }
        }

        let run = |engine: EngineKind| {
            let topo = Topology::multi_tor(16); // 2 racks x 8 hosts
            let cfg = NetworkConfig::default().with_engine(engine);
            let mut net =
                Network::new(topo, cfg, |h| OneShot { me: h, outbox: Default::default() });
            for &(src, dst, len, gap_us) in &msgs {
                // Rack 0 only (hosts 0..8); skip degenerate self-sends.
                if src == dst {
                    continue;
                }
                net.run_until(net.now() + SimDuration::from_micros(gap_us));
                net.inject_message(HostId(src), HostId(dst), len, len);
            }
            net.run_until(net.now() + SimDuration::from_millis(2));
            let evs: Vec<_> = net
                .take_app_events()
                .into_iter()
                .map(|(t, h, _)| (t.as_nanos(), h.0))
                .collect();
            (evs, net.events_processed())
        };
        let legacy = run(EngineKind::LegacyHeap);
        let par1 = run(EngineKind::ParallelHier { threads: 1, batch: 0 });
        let par2 = run(EngineKind::ParallelHier { threads: 2, batch: 0 });
        prop_assert_eq!(&par1, &legacy);
        prop_assert_eq!(&par2, &legacy);
        prop_assert!(legacy.1 > 0 || msgs.iter().all(|&(s, d, _, _)| s == d));
    }

    #[test]
    fn window_boundaries_never_split_a_timestamp(
        // Arbitrary traffic on a two-rack fabric, stepped one timestamp
        // at a time on a *batched* parallel engine: every step must
        // consume all events sharing that timestamp (strictly increasing
        // step times — a window or batch boundary never splits a
        // same-timestamp cohort) and the per-step event counts must
        // match the legacy heap exactly, whatever the batch size or
        // thread count.
        msgs in proptest::collection::vec((0u32..16, 0u32..16, 100u64..5_000, 0u64..20), 1..30),
        batch in 0u32..17,
        threads in 1u32..3,
    ) {
        use homa_sim::{AppEvent, HostId, Network, TimerToken, Topology, Transport, TransportActions};

        struct OneShot {
            me: HostId,
            outbox: std::collections::VecDeque<Packet<M>>,
        }
        impl Transport<M> for OneShot {
            fn on_packet(&mut self, _now: SimTime, pkt: Packet<M>, act: &mut TransportActions) {
                act.event(AppEvent::MessageDelivered {
                    src: pkt.src,
                    tag: pkt.meta.remaining,
                    len: pkt.meta.goodput_bytes() as u64,
                });
            }
            fn on_timer(&mut self, _n: SimTime, _t: TimerToken, _a: &mut TransportActions) {}
            fn next_packet(&mut self, _now: SimTime) -> Option<Packet<M>> {
                self.outbox.pop_front()
            }
            fn inject_message(
                &mut self,
                _now: SimTime,
                dst: HostId,
                len: u64,
                tag: u64,
                act: &mut TransportActions,
            ) {
                let meta = M { bytes: len as u32 + 60, prio: 0, remaining: tag, ctrl: false };
                self.outbox.push_back(Packet::new(self.me, dst, meta));
                act.kick_tx();
            }
        }

        let step_trace = |engine: EngineKind| {
            let topo = Topology::multi_tor(16); // 2 racks x 8 hosts
            let cfg = NetworkConfig::default().with_engine(engine);
            let mut net =
                Network::new(topo, cfg, |h| OneShot { me: h, outbox: Default::default() });
            for &(src, dst, len, gap_us) in &msgs {
                if src == dst {
                    continue;
                }
                net.run_until(net.now() + SimDuration::from_micros(gap_us));
                net.inject_message(HostId(src), HostId(dst), len, len);
            }
            let limit = net.now() + SimDuration::from_millis(5);
            let mut steps = Vec::new();
            let mut prev = net.events_processed();
            while let Some(at) = net.run_next_before(limit) {
                let done = net.events_processed();
                steps.push((at.as_nanos(), done - prev));
                prev = done;
            }
            steps
        };

        let legacy = step_trace(EngineKind::LegacyHeap);
        let par = step_trace(EngineKind::ParallelHier { threads, batch });
        for w in par.windows(2) {
            prop_assert!(w[1].0 > w[0].0, "a window boundary split timestamp {}", w[1].0);
        }
        prop_assert_eq!(&par, &legacy);
    }

    #[test]
    fn delay_attribution_never_exceeds_wait(
        waits in proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..50),
    ) {
        use homa_sim::DelayBreakdown;
        let mut d = DelayBreakdown::default();
        let mut total = 0u64;
        for (w, l) in waits {
            let lag = l.min(w);
            d.record_wait(SimDuration::from_nanos(w), SimDuration::from_nanos(lag));
            total += w;
        }
        prop_assert_eq!(d.total().as_nanos(), total);
        prop_assert!(d.preemption_lag.as_nanos() <= total);
    }
}

proptest! {
    /// Fat-tree structural invariants hold for every legal arity: host
    /// addressing round-trips, every TOR uplink lands on a pod-local
    /// aggregation switch, and each of a pod's aggs is reachable.
    #[test]
    fn fat_tree_addressing_and_uplinks_consistent(half in 2u32..7) {
        let k = half * 2;
        let topo = homa_sim::Topology::fat_tree(k);
        prop_assert_eq!(topo.num_hosts(), k * k * k / 4);
        prop_assert_eq!(topo.num_aggs(), k * k / 2);
        prop_assert_eq!(topo.num_cores(), k * k / 4);
        prop_assert_eq!(topo.tor_uplinks(), half);
        for h in topo.hosts() {
            let (r, i) = (topo.rack_of(h), topo.index_in_rack(h));
            prop_assert_eq!(r * topo.hosts_per_rack + i, h.0);
            prop_assert!(i < topo.hosts_per_rack);
        }
        for rack in 0..topo.racks {
            let pod = topo.pod_of_rack(rack);
            let mut aggs_seen = std::collections::BTreeSet::new();
            for j in 0..topo.tor_uplinks() {
                let (agg, down_port) = topo.tor_uplink_peer(rack, j);
                prop_assert_eq!(agg / half, pod, "uplink leaves the pod");
                prop_assert_eq!(down_port, rack % half);
                aggs_seen.insert(agg);
            }
            prop_assert_eq!(aggs_seen.len() as u32, half, "uplinks collide on an agg");
        }
    }

    /// Unloaded latency respects the hop hierarchy on any fat tree and
    /// any message size: same-rack <= intra-pod <= inter-pod, the path
    /// class is symmetric, and the conservative-window lookahead is
    /// positive (the PDES correctness floor).
    #[test]
    fn fat_tree_unloaded_monotone_and_symmetric(
        half in 2u32..6,
        len in 1u64..200_000,
        a in 0u32..1_000,
        b in 0u32..1_000,
    ) {
        use homa_sim::PathClass;
        let topo = homa_sim::Topology::fat_tree(half * 2);
        let n = topo.num_hosts();
        let (a, b) = (homa_sim::HostId(a % n), homa_sim::HostId(b % n));
        prop_assert_eq!(topo.path_class(a, b), topo.path_class(b, a));
        let t = |c| topo.unloaded_one_way_class(len, 1_400, 60, c).as_nanos();
        prop_assert!(t(PathClass::SameRack) <= t(PathClass::IntraPod));
        prop_assert!(t(PathClass::IntraPod) <= t(PathClass::InterPod));
        prop_assert!(topo.min_forward_delay().as_nanos() > 0);
    }
}
