//! The discrete-event queue.
//!
//! A binary heap of `(time, sequence, payload)` entries. The sequence number
//! is assigned at insertion, so events scheduled for the same instant fire
//! in insertion order. This makes runs fully deterministic, which the test
//! suite and the reproducibility goals of the repository depend on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque token identifying a timer registered by a transport or the
/// experiment driver. The meaning of the value is private to whoever
/// scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in the
    /// order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two independently-built queues with the same operations produce
        // the same sequence.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(4), 1);
            q.schedule(SimTime::from_nanos(4), 2);
            out.push(q.pop().unwrap().1);
            q.schedule(SimTime::from_nanos(4), 3);
            q.schedule(SimTime::from_nanos(2), 4);
            while let Some((_, v)) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 4, 2, 3]);
    }
}
