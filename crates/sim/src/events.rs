//! The discrete-event engines.
//!
//! All engines share one contract: events are totally ordered by
//! `(time, sequence)`, where the sequence number is assigned globally at
//! insertion. Events scheduled for the same instant therefore fire in
//! insertion order, which makes runs fully deterministic — the test suite
//! and the reproducibility goals of the repository depend on it.
//!
//! * [`EventQueue`] — the original monolithic binary heap. Simple, and
//!   still what small simulations use via [`EngineKind::LegacyHeap`].
//! * [`HierEventQueue`] — the calendar-bucketed lane engine that makes
//!   100+ host fabrics affordable. Time is divided into fixed-width
//!   *epochs* (the width is sized from the fabric's minimum link delay,
//!   rounded to a power of two so the epoch of a timestamp is one shift).
//!   Pending events live in one of four places:
//!
//!   1. a ring of *buckets*, one per near-future epoch, absorbing the
//!      overwhelmingly common insert in O(1) (unsorted append);
//!   2. a *far* spill heap for timers beyond the ring horizon
//!      (`RING_EPOCHS` × width ahead — retransmission timers, mostly);
//!   3. the *current run*: when an epoch becomes current, its bucket is
//!      sorted once by `(time, seq)` — the bucket-synchronized merge —
//!      and then served by popping from the end of the run in O(1);
//!   4. a small *late* heap for events that land at or below the
//!      current epoch after its merge (same-instant timers, back-to-back
//!      `TxDone`s), compared against the run head on every pop.
//!
//!   `pop_if_before` on the hot dispatch path is therefore O(1)
//!   amortized — a comparison against the run tail plus the one-time
//!   sort share of each event — where the previous design paid a ladder
//!   heap probe per pop and the legacy heap pays `O(log n)` of the
//!   *total* pending population.
//!
//! Events carry a [`LaneId`] naming the fabric node whose state their
//! dispatch touches. The calendar itself is global (lanes no longer need
//! their own queues to make inserts cheap); the lane tag is what lets
//! [`crate::Network`] group events by rack for conservative-window
//! parallel dispatch (see `network.rs`), which is also why entries keep
//! their lane through the queue.
//!
//! Because all engines order by the same globally-assigned
//! `(time, seq)` key, a simulation pops the *bit-identical* event
//! sequence from any of them; `tests/determinism.rs` in the workspace
//! root proves this end-to-end, including for the parallel dispatcher.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque token identifying a timer registered by a transport or the
/// experiment driver. The meaning of the value is private to whoever
/// scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Identifies one event lane of a [`HierEventQueue`]. Lanes are dense
/// indices assigned by whoever builds the engine (the network maps hosts,
/// TORs and spines to consecutive lanes). The engine itself only stores
/// the tag; the network uses it to group events by rack when dispatching
/// conservative windows in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId(pub u32);

/// Number of near-future epochs the calendar ring covers. Events beyond
/// `RING_EPOCHS * width` nanoseconds ahead spill to the far heap until
/// their epoch comes within reach of becoming current. Sized so a deep
/// steady state on a *small* fabric (fewer lanes → a wider pending-time
/// span per event population) still fits in the ring: 4096 × 256 ns ≈
/// 1 ms of horizon, while the ring's empty slots cost only pointers.
const RING_EPOCHS: u64 = 4096;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    lane: u32,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in the
    /// order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, lane: 0, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Remove and return the earliest event if it fires at or before `t`:
    /// one heap probe instead of the `peek_time`-then-`pop` pair the
    /// dispatch loops used to do.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at > t {
            return None;
        }
        self.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Counters describing how the calendar engine (and, when enabled, the
/// parallel window dispatcher) behaved over a run; exposed for
/// `perf-smoke` output and engine tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of event lanes the engine was built with (1 for the legacy
    /// heap).
    pub lanes: u32,
    /// Calendar bucket width in nanoseconds (0 for the legacy heap).
    pub bucket_width_ns: u64,
    /// Events inserted into a near-future ring bucket (the O(1) path).
    pub bucket_events: u64,
    /// Events that landed at or below the already-merged current epoch
    /// and went to the late heap (same-instant timers, back-to-back
    /// transmissions).
    pub late_events: u64,
    /// Events beyond the ring horizon that spilled to the far heap
    /// (far-future timers).
    pub far_events: u64,
    /// Epochs merged into a current run (bucket sort + reverse).
    pub epochs_merged: u64,
    /// Largest single merged epoch population.
    pub max_epoch_events: u64,
    /// Conservative windows dispatched (0 unless the network ran with
    /// [`EngineKind::ParallelHier`]).
    pub windows: u64,
    /// Events dispatched through conservative windows.
    pub window_events: u64,
    /// Largest single conservative window, in events.
    pub max_window_events: u64,
    /// Windows that took the single-hot-group fast path: every drained
    /// event belonged to one dispatch group, so the window ran inline
    /// through `DirectSink` with no worker handoff and no merge.
    pub fast_windows: u64,
    /// Bookkeeping batches the window dispatcher rolled windows into
    /// (deterministic: derived from drained-event counts, never from
    /// wall clock).
    pub batches: u64,
    /// Recycled buffers trimmed back to their recent high-water mark
    /// (calendar epoch buckets and window scratch).
    pub buffer_trims: u64,
}

/// The calendar-bucketed event engine: a ring of epoch buckets merged one
/// epoch at a time, with a late heap for intra-epoch arrivals and a far
/// heap for timers beyond the ring horizon. Same `(time, seq)` total
/// order as [`EventQueue`], but the hot pop is a tail comparison instead
/// of a heap probe over every pending event.
pub struct HierEventQueue<E> {
    /// Epoch width is `1 << shift` nanoseconds.
    shift: u32,
    /// The epoch currently merged into `current`/served by `late`.
    cur_epoch: u64,
    /// The current epoch's events, sorted *descending* by `(time, seq)`
    /// so the minimum pops from the back in O(1).
    current: Vec<Entry<E>>,
    /// Events at or below the current epoch that arrived after its merge.
    late: BinaryHeap<Entry<E>>,
    /// Near-future buckets, indexed by `epoch % RING_EPOCHS`. A slot is
    /// owned by exactly one epoch at a time (`slot_epoch`).
    ring: Vec<Vec<Entry<E>>>,
    slot_epoch: Vec<u64>,
    /// Nonempty ring epochs, min first. An epoch is pushed exactly once
    /// (when its slot turns nonempty) and popped exactly once (when it is
    /// merged), so there are no stale entries to skip.
    active: BinaryHeap<std::cmp::Reverse<u64>>,
    /// Events beyond the ring horizon; merged directly when their epoch
    /// becomes current.
    far: BinaryHeap<Entry<E>>,
    next_seq: u64,
    len: usize,
    stats: EngineStats,
    /// Tracks per-epoch occupancy so recycled epoch buffers are trimmed
    /// back toward the recent high-water mark (a dense burst would
    /// otherwise pin peak capacity forever).
    bucket_hw: crate::arena::HighWater,
    /// Latest capacity target reported by `bucket_hw`; checked against
    /// every buffer that circulates through `current`, since a ballooned
    /// buffer may sit parked in a ring slot for thousands of epochs
    /// between visits. `usize::MAX` until the first report, so nothing
    /// trims before an occupancy baseline exists.
    bucket_trim_target: usize,
    /// Wall nanoseconds spent in epoch-merge sorts (the engine's
    /// dominant cost at scale). Only written under `engine-profile`.
    #[cfg(feature = "engine-profile")]
    sort_ns: u64,
    /// Events inserted per lane — the occupancy skew that decides how
    /// well rack-grouped windows balance. Only under `engine-profile`.
    #[cfg(feature = "engine-profile")]
    lane_scheduled: Vec<u64>,
}

impl<E> HierEventQueue<E> {
    /// An empty engine with `lanes` event lanes and the default 256 ns
    /// bucket width.
    pub fn new(lanes: u32) -> Self {
        Self::with_bucket_width(lanes, 256)
    }

    /// An empty engine with `lanes` lanes and epoch buckets of
    /// `width_ns` nanoseconds, rounded up to a power of two (fabrics pass
    /// their minimum link delay here — 250 ns on the paper fabric, so
    /// buckets are 256 ns wide).
    pub fn with_bucket_width(lanes: u32, width_ns: u64) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        let shift = width_ns.max(1).next_power_of_two().trailing_zeros().min(30);
        HierEventQueue {
            shift,
            cur_epoch: 0,
            current: Vec::new(),
            late: BinaryHeap::new(),
            ring: (0..RING_EPOCHS).map(|_| Vec::new()).collect(),
            slot_epoch: vec![0; RING_EPOCHS as usize],
            active: BinaryHeap::new(),
            far: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
            stats: EngineStats { lanes, bucket_width_ns: 1 << shift, ..EngineStats::default() },
            bucket_hw: crate::arena::HighWater::default(),
            bucket_trim_target: usize::MAX,
            #[cfg(feature = "engine-profile")]
            sort_ns: 0,
            #[cfg(feature = "engine-profile")]
            lane_scheduled: vec![0; lanes as usize],
        }
    }

    fn epoch_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    /// Schedule `payload` on `lane` at `at`. Events at equal times fire in
    /// the order they were scheduled, across all lanes.
    ///
    /// # Panics
    /// If `lane` is out of range for this engine — catching the mistake
    /// at the call site instead of deep inside a later group dispatch.
    pub fn schedule(&mut self, lane: LaneId, at: SimTime, payload: E) {
        assert!(
            lane.0 < self.stats.lanes,
            "lane {} out of range ({} lanes)",
            lane.0,
            self.stats.lanes
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { at, seq, lane: lane.0, payload });
    }

    #[inline]
    fn insert(&mut self, entry: Entry<E>) {
        #[cfg(feature = "engine-profile")]
        {
            self.lane_scheduled[entry.lane as usize] += 1;
        }
        let e = self.epoch_of(entry.at);
        // Hot path first: one wrapping compare covers the whole ring
        // window `cur_epoch < e < cur_epoch + RING_EPOCHS` (an epoch at
        // or below `cur_epoch` wraps to a huge value and falls through).
        if e.wrapping_sub(self.cur_epoch.wrapping_add(1)) < RING_EPOCHS - 1 {
            let slot = (e % RING_EPOCHS) as usize;
            if self.ring[slot].is_empty() {
                self.slot_epoch[slot] = e;
                self.active.push(std::cmp::Reverse(e));
            }
            debug_assert_eq!(self.slot_epoch[slot], e, "ring slot epoch collision");
            self.ring[slot].push(entry);
            self.stats.bucket_events += 1;
        } else if e <= self.cur_epoch {
            // At or below the merged epoch: joins the late heap and is
            // compared against the current run head on every pop, so
            // ordering stays exact even for "past" inserts.
            self.late.push(entry);
            self.stats.late_events += 1;
        } else {
            self.far.push(entry);
            self.stats.far_events += 1;
        }
        self.len += 1;
    }

    /// Advance to the next nonempty epoch and merge its bucket (plus any
    /// far events that fall in it) into the current run. No-op while the
    /// current epoch still has events to serve, and — crucially — never
    /// advances *past* `bound_epoch`: a bounded pop that finds only a
    /// far-future timer must not drag `cur_epoch` forward, or every
    /// near-term insert until simulated time caught up would land in the
    /// O(log n) late heap instead of an O(1) ring bucket.
    #[inline]
    fn ensure_current(&mut self, bound_epoch: Option<u64>) {
        if !self.current.is_empty() || !self.late.is_empty() || self.len == 0 {
            return;
        }
        self.advance_epoch(bound_epoch);
    }

    #[cold]
    fn advance_epoch(&mut self, bound_epoch: Option<u64>) {
        while self.current.is_empty() && self.late.is_empty() && self.len > 0 {
            let ring_next = self.active.peek().map(|r| r.0);
            let far_next = self.far.peek().map(|e| self.epoch_of(e.at));
            let next = match (ring_next, far_next) {
                (Some(a), Some(f)) => a.min(f),
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (None, None) => unreachable!("len > 0 with every store empty"),
            };
            // Every event in epoch `next` fires strictly after the bound;
            // leave the merge point where it is and let the pop miss.
            if bound_epoch.is_some_and(|b| next > b) {
                return;
            }
            self.cur_epoch = next;
            if ring_next == Some(next) {
                self.active.pop();
                let slot = (next % RING_EPOCHS) as usize;
                // Trim the outgoing (empty) run buffer back to the
                // recent per-epoch high-water before donating it to the
                // ring, so a one-off dense epoch doesn't pin its peak
                // capacity for the rest of the run. The target updates
                // periodically; the (cheap) capacity check runs on every
                // circulating buffer so a ballooned one is caught the
                // first time it resurfaces from its ring slot.
                if let Some(target) = self.bucket_hw.observe(self.ring[slot].len()) {
                    self.bucket_trim_target = target;
                }
                if crate::arena::trim_capacity(&mut self.current, self.bucket_trim_target) {
                    self.stats.buffer_trims += 1;
                }
                // Swap the (empty, capacity-bearing) current run into the
                // slot so bucket buffers are recycled instead of
                // reallocated every epoch.
                std::mem::swap(&mut self.current, &mut self.ring[slot]);
            }
            while self.far.peek().is_some_and(|e| self.epoch_of(e.at) == next) {
                self.current.push(self.far.pop().expect("peeked"));
            }
            // The bucket-synchronized merge: one sort per epoch, then
            // every pop within the epoch is O(1) off the back.
            #[cfg(feature = "engine-profile")]
            let t0 = std::time::Instant::now();
            self.current.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            #[cfg(feature = "engine-profile")]
            {
                self.sort_ns += t0.elapsed().as_nanos() as u64;
            }
            self.stats.epochs_merged += 1;
            self.stats.max_epoch_events =
                self.stats.max_epoch_events.max(self.current.len() as u64);
        }
    }

    /// One-pass conditional pop: advance the merge point, check the head
    /// against `bound`, and take it — the hot dispatch-path primitive
    /// every public pop variant builds on.
    #[inline]
    fn pop_entry_bounded(&mut self, bound: Option<SimTime>) -> Option<Entry<E>> {
        self.ensure_current(bound.map(|t| self.epoch_of(t)));
        let take_run = match (self.current.last(), self.late.peek()) {
            (Some(r), Some(l)) => (r.at, r.seq) <= (l.at, l.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let head_at = if take_run {
            self.current.last().expect("matched").at
        } else {
            self.late.peek().expect("matched").at
        };
        if bound.is_some_and(|t| head_at > t) {
            return None;
        }
        self.len -= 1;
        if take_run {
            self.current.pop()
        } else {
            self.late.pop()
        }
    }

    /// Remove and return the earliest event across all lanes.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry_bounded(None).map(|e| (e.at, e.payload))
    }

    /// Remove and return the earliest event if it fires at or before `t`.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        self.pop_entry_bounded(Some(t)).map(|e| (e.at, e.payload))
    }

    /// Like [`pop_if_before`](Self::pop_if_before) but keeps the lane tag
    /// and global sequence number — the conservative-window dispatcher
    /// needs both to partition a window by rack group and to merge the
    /// groups' emissions back in the exact sequential order.
    pub(crate) fn pop_entry_if_before(&mut self, t: SimTime) -> Option<(LaneId, SimTime, u64, E)> {
        self.pop_entry_bounded(Some(t)).map(|e| (LaneId(e.lane), e.at, e.seq, e.payload))
    }

    /// The sequence number the next scheduled event would get. Window
    /// dispatch uses this as the provisional-numbering base: every
    /// pending event's sequence is below it.
    pub(crate) fn seq_floor(&self) -> u64 {
        self.next_seq
    }

    /// Consume and return the next global sequence number without
    /// scheduling anything (the window merge assigns sequence numbers in
    /// merged emission order, exactly as sequential dispatch would have).
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Insert an event whose sequence number was pre-assigned by
    /// [`assign_seq`](Self::assign_seq) during a window merge.
    pub(crate) fn schedule_with_seq(&mut self, lane: LaneId, at: SimTime, seq: u64, payload: E) {
        debug_assert!(seq < self.next_seq, "sequence not pre-assigned");
        self.insert(Entry { at, seq, lane: lane.0, payload });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let run = self.current.last().map(|e| e.at);
        let late = self.late.peek().map(|e| e.at);
        let near = match (run, late) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if near.is_some() {
            // Anything in the ring or far heap lives in a later epoch.
            return near;
        }
        // Cold path (current epoch exhausted, merge not yet advanced):
        // scan the next nonempty bucket for its minimum.
        let ring_min = self
            .active
            .peek()
            .and_then(|r| self.ring[(r.0 % RING_EPOCHS) as usize].iter().map(|e| e.at).min());
        let far_min = self.far.peek().map(|e| e.at);
        match (ring_min, far_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Behavior counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Wall nanoseconds spent sorting epoch buckets; always 0 without
    /// the `engine-profile` cargo feature.
    pub fn epoch_sort_ns(&self) -> u64 {
        #[cfg(feature = "engine-profile")]
        {
            self.sort_ns
        }
        #[cfg(not(feature = "engine-profile"))]
        {
            0
        }
    }

    /// Events inserted per lane over the engine's lifetime — the
    /// occupancy skew behind window-dispatch load balance. `None`
    /// without the `engine-profile` cargo feature.
    pub fn lane_occupancy(&self) -> Option<&[u64]> {
        #[cfg(feature = "engine-profile")]
        {
            Some(&self.lane_scheduled)
        }
        #[cfg(not(feature = "engine-profile"))]
        {
            None
        }
    }
}

/// Which event engine a [`crate::Network`] runs on. The default is the
/// (sequential) calendar engine; the `legacy-engine` cargo feature flips
/// the default back to the monolithic heap so the whole test suite can be
/// A/B-d against it (`cargo test --features homa-sim/legacy-engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The calendar-bucketed lane engine ([`HierEventQueue`]), dispatched
    /// sequentially.
    Hierarchical,
    /// The original single binary heap ([`EventQueue`]).
    LegacyHeap,
    /// The calendar engine with conservative-window parallel dispatch:
    /// the network groups lanes by rack and dispatches each group's
    /// sub-window on worker threads, merging emissions back in exact
    /// `(time, seq)` order — runs stay bit-identical to the other
    /// engines. Requires the `parallel` cargo feature (on by default);
    /// without it, dispatch falls back to the sequential calendar engine.
    ParallelHier {
        /// Worker threads for window dispatch. `0` = auto (the machine's
        /// available parallelism); `1` runs the window machinery inline
        /// (useful for determinism tests with no thread overhead).
        threads: u32,
        /// Windows batched per bookkeeping round-trip (profiling
        /// samples, stats rollups, worker handoffs are amortized across
        /// the batch). `0` = auto: the `HOMA_SIM_BATCH` environment
        /// variable if set, else an adaptive size derived from drained-
        /// event density. Any value produces bit-identical results —
        /// batching changes only when bookkeeping happens, never event
        /// order.
        batch: u32,
    },
}

impl Default for EngineKind {
    fn default() -> Self {
        if cfg!(feature = "legacy-engine") {
            EngineKind::LegacyHeap
        } else {
            EngineKind::Hierarchical
        }
    }
}

impl EngineKind {
    /// The parallel engine with its thread count taken from the
    /// `HOMA_SIM_THREADS` environment variable (`0`/unset = auto).
    pub fn parallel_from_env() -> EngineKind {
        Self::parallel_from_threads_str(std::env::var("HOMA_SIM_THREADS").ok().as_deref())
    }

    /// [`parallel_from_env`](Self::parallel_from_env)'s parsing, split
    /// out so it can be tested without mutating the live process
    /// environment: `None`/unparseable/`"0"` all mean auto.
    pub fn parallel_from_threads_str(threads: Option<&str>) -> EngineKind {
        let threads = threads.and_then(|v| v.parse::<u32>().ok()).unwrap_or(0);
        EngineKind::ParallelHier { threads, batch: 0 }
    }
}

/// A runtime-selectable event engine. All variants order events by the
/// same globally-assigned `(time, seq)` key, so a simulation is
/// bit-identical on any of them; the legacy variant simply ignores lanes.
/// [`EngineKind::ParallelHier`] stores its events in the same calendar
/// structure — the parallelism lives in the network's dispatch loop, not
/// in the queue.
pub enum EventEngine<E> {
    /// The calendar-bucketed lane engine (boxed: the calendar ring makes
    /// it much larger than the plain heap variant).
    Hierarchical(Box<HierEventQueue<E>>),
    /// The monolithic heap, kept for A/B determinism and perf checks.
    Legacy(EventQueue<E>),
}

impl<E> EventEngine<E> {
    /// Build an engine of `kind` over `lanes` lanes with the default
    /// bucket width.
    pub fn new(kind: EngineKind, lanes: u32) -> Self {
        Self::with_bucket_width(kind, lanes, 256)
    }

    /// Build an engine of `kind` over `lanes` lanes with `width_ns`-wide
    /// calendar buckets (ignored by the legacy heap).
    pub fn with_bucket_width(kind: EngineKind, lanes: u32, width_ns: u64) -> Self {
        match kind {
            EngineKind::Hierarchical | EngineKind::ParallelHier { .. } => {
                EventEngine::Hierarchical(Box::new(HierEventQueue::with_bucket_width(
                    lanes, width_ns,
                )))
            }
            EngineKind::LegacyHeap => EventEngine::Legacy(EventQueue::new()),
        }
    }

    /// Schedule `payload` on `lane` at `at`.
    pub fn schedule(&mut self, lane: LaneId, at: SimTime, payload: E) {
        match self {
            EventEngine::Hierarchical(q) => q.schedule(lane, at, payload),
            EventEngine::Legacy(q) => q.schedule(at, payload),
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            EventEngine::Hierarchical(q) => q.pop(),
            EventEngine::Legacy(q) => q.pop(),
        }
    }

    /// Remove and return the earliest event if it fires at or before `t`.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self {
            EventEngine::Hierarchical(q) => q.pop_if_before(t),
            EventEngine::Legacy(q) => q.pop_if_before(t),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            EventEngine::Hierarchical(q) => q.peek_time(),
            EventEngine::Legacy(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            EventEngine::Hierarchical(q) => q.len(),
            EventEngine::Legacy(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Behavior counters (the legacy heap reports a single-lane engine
    /// with no fast-path accounting).
    pub fn stats(&self) -> EngineStats {
        match self {
            EventEngine::Hierarchical(q) => q.stats(),
            EventEngine::Legacy(_) => EngineStats { lanes: 1, ..EngineStats::default() },
        }
    }

    /// Wall nanoseconds spent sorting epoch buckets (0 on the legacy
    /// heap, or without the `engine-profile` cargo feature).
    pub fn epoch_sort_ns(&self) -> u64 {
        match self {
            EventEngine::Hierarchical(q) => q.epoch_sort_ns(),
            EventEngine::Legacy(_) => 0,
        }
    }

    /// Per-lane inserted-event counters (`None` on the legacy heap or
    /// without the `engine-profile` cargo feature).
    pub fn lane_occupancy(&self) -> Option<&[u64]> {
        match self {
            EventEngine::Hierarchical(q) => q.lane_occupancy(),
            EventEngine::Legacy(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two independently-built queues with the same operations produce
        // the same sequence.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(4), 1);
            q.schedule(SimTime::from_nanos(4), 2);
            out.push(q.pop().unwrap().1);
            q.schedule(SimTime::from_nanos(4), 3);
            q.schedule(SimTime::from_nanos(2), 4);
            while let Some((_, v)) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 4, 2, 3]);
    }

    #[test]
    fn pop_if_before_respects_threshold() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop_if_before(SimTime::from_nanos(5)), None);
        assert_eq!(q.pop_if_before(SimTime::from_nanos(10)), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop_if_before(SimTime::from_nanos(15)), None);
        assert_eq!(q.pop_if_before(SimTime::from_nanos(25)), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop_if_before(SimTime::MAX), None);
    }

    #[test]
    fn hier_pops_in_time_order_across_lanes() {
        let mut q = HierEventQueue::new(3);
        q.schedule(LaneId(0), SimTime::from_nanos(30), "c");
        q.schedule(LaneId(1), SimTime::from_nanos(10), "a");
        q.schedule(LaneId(2), SimTime::from_nanos(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hier_equal_times_fire_in_insertion_order_across_lanes() {
        let mut q = HierEventQueue::new(4);
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(LaneId(i % 4), t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn hier_trims_burst_epoch_capacity() {
        // One dense epoch balloons its bucket buffer; after the burst
        // ages out of the high-water window (two 1024-observation
        // periods) and the ballooned buffer circulates back out of its
        // ring slot (RING_EPOCHS later), the engine releases the excess
        // capacity and counts the trim.
        let mut q = HierEventQueue::with_bucket_width(1, 1024);
        let t = |k: u64| SimTime::from_nanos(k * 1024);
        for i in 0..1000u64 {
            q.schedule(LaneId(0), t(1), i);
        }
        for _ in 0..1000 {
            q.pop().unwrap();
        }
        assert_eq!(q.stats().buffer_trims, 0, "nothing to trim while the burst is recent");
        // Sparse epochs: one event each, walking far enough that the
        // burst leaves both high-water periods and its buffer resurfaces
        // from the ring (RING_EPOCHS = 4096 epochs later).
        for k in 2..4200u64 {
            q.schedule(LaneId(0), t(k), k);
            q.pop().unwrap();
        }
        assert!(q.is_empty());
        assert!(q.stats().buffer_trims >= 1, "burst capacity never trimmed: {:?}", q.stats());
    }

    #[test]
    fn hier_late_arrivals_into_current_epoch_order_correctly() {
        // Pop once (merging the first epoch), then schedule into it: the
        // late heap must interleave exactly by (time, seq).
        let mut q = HierEventQueue::with_bucket_width(1, 1024);
        q.schedule(LaneId(0), SimTime::from_nanos(100), "a");
        q.schedule(LaneId(0), SimTime::from_nanos(500), "d");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(LaneId(0), SimTime::from_nanos(200), "b");
        q.schedule(LaneId(0), SimTime::from_nanos(300), "c");
        assert!(q.stats().late_events >= 2, "{:?}", q.stats());
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hier_far_future_events_beyond_ring_horizon() {
        // Horizon = RING_EPOCHS * width; schedule far beyond it, plus a
        // near event, and check ordering and the far counter.
        let mut q = HierEventQueue::with_bucket_width(2, 256);
        let horizon = RING_EPOCHS * 256;
        q.schedule(LaneId(0), SimTime::from_nanos(horizon * 5), "far");
        q.schedule(LaneId(1), SimTime::from_nanos(10), "near");
        q.schedule(LaneId(0), SimTime::from_nanos(horizon * 5 + 1), "far2");
        assert_eq!(q.stats().far_events, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(horizon * 5)));
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hier_matches_flat_on_random_interleavings() {
        // The engines must pop identical sequences for identical schedule
        // calls — the bit-for-bit contract the Network relies on.
        let mut lcg = 0xDEAD_BEEFu64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut flat: EventQueue<u64> = EventQueue::new();
        let mut hier: HierEventQueue<u64> = HierEventQueue::with_bucket_width(7, 64);
        let mut popped = 0u64;
        for i in 0..5_000u64 {
            let r = next();
            if r % 3 != 0 || flat.is_empty() {
                let lane = LaneId((r % 7) as u32);
                let at = SimTime::from_nanos(r % 10_000);
                flat.schedule(at, i);
                hier.schedule(lane, at, i);
            } else if r % 2 == 0 {
                assert_eq!(flat.pop(), hier.pop());
                popped += 1;
            } else {
                let t = SimTime::from_nanos(next() % 10_000);
                assert_eq!(flat.pop_if_before(t), hier.pop_if_before(t));
            }
            assert_eq!(flat.len(), hier.len());
            assert_eq!(flat.peek_time(), hier.peek_time());
        }
        while let Some(got) = hier.pop() {
            assert_eq!(Some(got), flat.pop());
            popped += 1;
        }
        assert_eq!(flat.pop(), None);
        assert!(popped > 1_000, "exercised only {popped} pops");
    }

    #[test]
    fn hier_stats_track_bucket_population() {
        let mut q = HierEventQueue::with_bucket_width(2, 256);
        for i in 0..10u64 {
            q.schedule(LaneId(0), SimTime::from_nanos(300 + i * 10), i);
        }
        let s = q.stats();
        assert_eq!(s.lanes, 2);
        assert_eq!(s.bucket_width_ns, 256);
        assert_eq!(s.bucket_events, 10);
        assert_eq!(s.far_events, 0);
        // Draining merges the (single) epoch bucket once.
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.epochs_merged, 1);
        assert_eq!(s.max_epoch_events, 10);
    }

    #[test]
    fn hier_preassigned_seq_insert_orders_like_sequential() {
        // The window merge schedules emissions with pre-assigned sequence
        // numbers; they must interleave exactly as if scheduled normally.
        let mut q: HierEventQueue<&str> = HierEventQueue::new(2);
        q.schedule(LaneId(0), SimTime::from_nanos(1_000), "a");
        let s1 = q.assign_seq();
        let s2 = q.assign_seq();
        // Insert in reverse assignment order: ordering must follow seq.
        q.schedule_with_seq(LaneId(1), SimTime::from_nanos(1_000), s2, "c");
        q.schedule_with_seq(LaneId(0), SimTime::from_nanos(1_000), s1, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.seq_floor() >= 3);
    }

    #[test]
    fn engine_dispatch_matches_across_kinds() {
        let run = |kind: EngineKind| {
            let mut q: EventEngine<u32> = EventEngine::new(kind, 3);
            let mut out = Vec::new();
            q.schedule(LaneId(0), SimTime::from_nanos(4), 1);
            q.schedule(LaneId(1), SimTime::from_nanos(4), 2);
            out.push(q.pop().unwrap().1);
            q.schedule(LaneId(2), SimTime::from_nanos(4), 3);
            q.schedule(LaneId(0), SimTime::from_nanos(2), 4);
            while let Some((_, v)) = q.pop_if_before(SimTime::from_nanos(3)) {
                out.push(v);
            }
            while let Some((_, v)) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(EngineKind::Hierarchical), run(EngineKind::LegacyHeap));
        assert_eq!(
            run(EngineKind::ParallelHier { threads: 2, batch: 0 }),
            run(EngineKind::LegacyHeap)
        );
        assert_eq!(run(EngineKind::Hierarchical), vec![1, 4, 2, 3]);
    }

    #[test]
    fn parallel_thread_count_parsing() {
        // The pure parsing contract behind HOMA_SIM_THREADS, tested
        // without touching the live process environment (set_var races
        // with concurrent getenv in a threaded test harness).
        let parse = EngineKind::parallel_from_threads_str;
        assert_eq!(parse(Some("3")), EngineKind::ParallelHier { threads: 3, batch: 0 });
        assert_eq!(parse(Some("0")), EngineKind::ParallelHier { threads: 0, batch: 0 });
        assert_eq!(parse(Some("lots")), EngineKind::ParallelHier { threads: 0, batch: 0 });
        assert_eq!(parse(None), EngineKind::ParallelHier { threads: 0, batch: 0 });
    }
}
