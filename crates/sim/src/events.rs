//! The discrete-event engines.
//!
//! Two engines share one contract: events are totally ordered by
//! `(time, sequence)`, where the sequence number is assigned globally at
//! insertion. Events scheduled for the same instant therefore fire in
//! insertion order, which makes runs fully deterministic — the test suite
//! and the reproducibility goals of the repository depend on it.
//!
//! * [`EventQueue`] — the original monolithic binary heap. Simple, and
//!   still what small simulations use via
//!   [`EngineKind::LegacyHeap`].
//! * [`HierEventQueue`] — the hierarchical engine that makes 100+ host
//!   fabrics affordable. Events are routed to per-lane queues (the
//!   network assigns one lane per host plus one per fabric switch); each
//!   lane stores its events as a sorted *run* (a `VecDeque` absorbing the
//!   overwhelmingly common in-order appends in O(1)) plus a small *spill*
//!   heap for out-of-order arrivals. A top-level *ladder* — a small heap
//!   over the current lane heads, keyed on the same `(time, seq)` — picks
//!   the global minimum. Stale ladder entries (heads superseded by an
//!   earlier arrival, or already popped) are skipped lazily.
//!
//! Because both engines order by the same globally-assigned
//! `(time, seq)` key, a simulation pops the *bit-identical* event
//! sequence from either; `tests/determinism.rs` in the workspace root
//! proves this end-to-end.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Opaque token identifying a timer registered by a transport or the
/// experiment driver. The meaning of the value is private to whoever
/// scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Identifies one event lane of a [`HierEventQueue`]. Lanes are dense
/// indices assigned by whoever builds the engine (the network maps hosts,
/// TORs and spines to consecutive lanes); events within a lane tend to be
/// scheduled in non-decreasing time order, which is the property the
/// hierarchical engine exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId(pub u32);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in the
    /// order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Remove and return the earliest event if it fires at or before `t`:
    /// one heap probe instead of the `peek_time`-then-`pop` pair the
    /// dispatch loops used to do.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at > t {
            return None;
        }
        self.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Counters describing how the hierarchical engine behaved over a run;
/// exposed for `perf-smoke` output and engine tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of lanes the engine was built with (1 for the legacy heap).
    pub lanes: u32,
    /// Deepest any single lane ever got.
    pub max_lane_depth: usize,
    /// Events appended to a lane's sorted run in order (the O(1) path).
    pub inorder_events: u64,
    /// Events that arrived out of order and went to a lane's spill heap.
    pub spilled_events: u64,
    /// Stale ladder heads skipped during merges.
    pub stale_skips: u64,
}

/// One lane: a sorted run absorbing in-order appends plus a spill heap
/// for the rare out-of-order arrival.
struct Lane<E> {
    run: VecDeque<Entry<E>>,
    spill: BinaryHeap<Entry<E>>,
}

impl<E> Lane<E> {
    fn new() -> Self {
        Lane { run: VecDeque::new(), spill: BinaryHeap::new() }
    }

    fn len(&self) -> usize {
        self.run.len() + self.spill.len()
    }

    /// The `(time, seq)` key of this lane's earliest event.
    fn min_key(&self) -> Option<(SimTime, u64)> {
        let r = self.run.front().map(|e| (e.at, e.seq));
        let s = self.spill.peek().map(|e| (e.at, e.seq));
        match (r, s) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        let take_run = match (self.run.front(), self.spill.peek()) {
            (Some(r), Some(s)) => (r.at, r.seq) <= (s.at, s.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_run {
            self.run.pop_front()
        } else {
            self.spill.pop()
        }
    }
}

/// A lane head recorded in the ladder: the `(time, seq)` key of what was,
/// at push time, some lane's earliest event. Lazily invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeadKey {
    at: SimTime,
    seq: u64,
    lane: u32,
}

impl PartialOrd for HeadKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeadKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap pops the earliest head first. `seq` is
        // globally unique, so the lane never decides the order.
        (other.at, other.seq, other.lane).cmp(&(self.at, self.seq, self.lane))
    }
}

/// The hierarchical event engine: per-lane queues merged through a small
/// ladder of lane heads. Same `(time, seq)` total order as
/// [`EventQueue`], but push/pop touch a short sorted run and a heap of
/// ~`lanes` entries instead of one heap over every pending event.
pub struct HierEventQueue<E> {
    lanes: Vec<Lane<E>>,
    ladder: BinaryHeap<HeadKey>,
    next_seq: u64,
    len: usize,
    /// Number of stale entries currently in the ladder. Staleness is only
    /// created when a spilled arrival supersedes a lane's head, so while
    /// this is zero (the overwhelmingly common case) the merge can skip
    /// validity checks entirely.
    stale_debt: usize,
    stats: EngineStats,
}

impl<E> HierEventQueue<E> {
    /// An empty engine with `lanes` event lanes.
    pub fn new(lanes: u32) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        HierEventQueue {
            lanes: (0..lanes).map(|_| Lane::new()).collect(),
            ladder: BinaryHeap::with_capacity(lanes as usize + 8),
            next_seq: 0,
            len: 0,
            stale_debt: 0,
            stats: EngineStats { lanes, ..EngineStats::default() },
        }
    }

    /// Schedule `payload` on `lane` at `at`. Events at equal times fire in
    /// the order they were scheduled, across all lanes.
    pub fn schedule(&mut self, lane: LaneId, at: SimTime, payload: E) {
        let li = lane.0 as usize;
        assert!(li < self.lanes.len(), "lane {} out of range ({} lanes)", lane.0, self.lanes.len());
        let seq = self.next_seq;
        self.next_seq += 1;
        let l = &mut self.lanes[li];
        // Only a new lane minimum needs a ladder entry — and an in-order
        // append to a non-empty lane can never be one (the lane minimum is
        // at most the run back it was appended behind), so the common case
        // touches no heap at all.
        match l.run.back() {
            Some(back) if at >= back.at => {
                l.run.push_back(Entry { at, seq, payload });
                self.stats.inorder_events += 1;
            }
            Some(_) => {
                // Out-of-order arrival: spill, and supersede the lane head
                // if this is the new minimum.
                let old = l.min_key().expect("run nonempty");
                l.spill.push(Entry { at, seq, payload });
                self.stats.spilled_events += 1;
                if (at, seq) < old {
                    self.stale_debt += 1;
                    self.ladder.push(HeadKey { at, seq, lane: lane.0 });
                }
            }
            None => {
                let old = l.spill.peek().map(|e| (e.at, e.seq));
                l.run.push_back(Entry { at, seq, payload });
                self.stats.inorder_events += 1;
                match old {
                    // Lane was empty: it has no ladder entry yet.
                    None => self.ladder.push(HeadKey { at, seq, lane: lane.0 }),
                    Some(m) if (at, seq) < m => {
                        self.stale_debt += 1;
                        self.ladder.push(HeadKey { at, seq, lane: lane.0 });
                    }
                    Some(_) => {}
                }
            }
        }
        self.stats.max_lane_depth = self.stats.max_lane_depth.max(l.len());
        self.len += 1;
    }

    /// Drop stale ladder heads so the top, if any, names a lane whose
    /// current minimum it matches. Called after every mutation, so
    /// `peek_time` stays exact on `&self`. While `stale_debt` is zero no
    /// stale entry exists anywhere and this is a single branch.
    fn settle(&mut self) {
        while self.stale_debt > 0 {
            let Some(&top) = self.ladder.peek() else { break };
            if self.lanes[top.lane as usize].min_key() == Some((top.at, top.seq)) {
                break;
            }
            self.ladder.pop();
            self.stale_debt -= 1;
            self.stats.stale_skips += 1;
        }
    }

    /// Remove and return the earliest event across all lanes.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Self { lanes, ladder, len, .. } = self;
        let mut head = ladder.peek_mut()?;
        let top = *head;
        let lane = &mut lanes[top.lane as usize];
        // Fast path: no spill — the head is the run front and the next
        // minimum is right behind it.
        let (e, next) = if lane.spill.is_empty() {
            let e = lane.run.pop_front().expect("valid ladder head");
            let next = lane.run.front().map(|f| (f.at, f.seq));
            (e, next)
        } else {
            let e = lane.pop_min().expect("valid ladder head");
            (e, lane.min_key())
        };
        debug_assert_eq!((e.at, e.seq), (top.at, top.seq));
        match next {
            // Replace the top in place: one sift instead of a pop + push.
            Some((at, seq)) => {
                *head = HeadKey { at, seq, lane: top.lane };
                drop(head);
            }
            None => {
                std::collections::binary_heap::PeekMut::pop(head);
            }
        }
        *len -= 1;
        self.settle();
        Some((e.at, e.payload))
    }

    /// Remove and return the earliest event if it fires at or before `t`.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > t {
            return None;
        }
        self.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // `settle` ran after the last mutation, so the top head is valid.
        self.ladder.peek().map(|h| h.at)
    }

    /// Number of pending events across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Behavior counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

/// Which event engine a [`crate::Network`] runs on. The default is the
/// hierarchical engine; the `legacy-engine` cargo feature flips the
/// default back to the monolithic heap so the whole test suite can be
/// A/B-d against it (`cargo test --features homa-sim/legacy-engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Per-lane queues merged through a ladder ([`HierEventQueue`]).
    Hierarchical,
    /// The original single binary heap ([`EventQueue`]).
    LegacyHeap,
}

impl Default for EngineKind {
    fn default() -> Self {
        if cfg!(feature = "legacy-engine") {
            EngineKind::LegacyHeap
        } else {
            EngineKind::Hierarchical
        }
    }
}

/// A runtime-selectable event engine. Both variants order events by the
/// same globally-assigned `(time, seq)` key, so a simulation is
/// bit-identical on either; the legacy variant simply ignores lanes.
pub enum EventEngine<E> {
    /// The hierarchical lane engine.
    Hierarchical(HierEventQueue<E>),
    /// The monolithic heap, kept for A/B determinism and perf checks.
    Legacy(EventQueue<E>),
}

impl<E> EventEngine<E> {
    /// Build an engine of `kind` over `lanes` lanes.
    pub fn new(kind: EngineKind, lanes: u32) -> Self {
        match kind {
            EngineKind::Hierarchical => EventEngine::Hierarchical(HierEventQueue::new(lanes)),
            EngineKind::LegacyHeap => EventEngine::Legacy(EventQueue::new()),
        }
    }

    /// Schedule `payload` on `lane` at `at`.
    pub fn schedule(&mut self, lane: LaneId, at: SimTime, payload: E) {
        match self {
            EventEngine::Hierarchical(q) => q.schedule(lane, at, payload),
            EventEngine::Legacy(q) => q.schedule(at, payload),
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            EventEngine::Hierarchical(q) => q.pop(),
            EventEngine::Legacy(q) => q.pop(),
        }
    }

    /// Remove and return the earliest event if it fires at or before `t`.
    pub fn pop_if_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self {
            EventEngine::Hierarchical(q) => q.pop_if_before(t),
            EventEngine::Legacy(q) => q.pop_if_before(t),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            EventEngine::Hierarchical(q) => q.peek_time(),
            EventEngine::Legacy(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            EventEngine::Hierarchical(q) => q.len(),
            EventEngine::Legacy(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Behavior counters (the legacy heap reports a single-lane engine
    /// with no fast-path accounting).
    pub fn stats(&self) -> EngineStats {
        match self {
            EventEngine::Hierarchical(q) => q.stats(),
            EventEngine::Legacy(_) => EngineStats { lanes: 1, ..EngineStats::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two independently-built queues with the same operations produce
        // the same sequence.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(4), 1);
            q.schedule(SimTime::from_nanos(4), 2);
            out.push(q.pop().unwrap().1);
            q.schedule(SimTime::from_nanos(4), 3);
            q.schedule(SimTime::from_nanos(2), 4);
            while let Some((_, v)) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 4, 2, 3]);
    }

    #[test]
    fn pop_if_before_respects_threshold() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop_if_before(SimTime::from_nanos(5)), None);
        assert_eq!(q.pop_if_before(SimTime::from_nanos(10)), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop_if_before(SimTime::from_nanos(15)), None);
        assert_eq!(q.pop_if_before(SimTime::from_nanos(25)), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop_if_before(SimTime::MAX), None);
    }

    #[test]
    fn hier_pops_in_time_order_across_lanes() {
        let mut q = HierEventQueue::new(3);
        q.schedule(LaneId(0), SimTime::from_nanos(30), "c");
        q.schedule(LaneId(1), SimTime::from_nanos(10), "a");
        q.schedule(LaneId(2), SimTime::from_nanos(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn hier_equal_times_fire_in_insertion_order_across_lanes() {
        let mut q = HierEventQueue::new(4);
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(LaneId(i % 4), t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn hier_out_of_order_within_lane_spills_correctly() {
        let mut q = HierEventQueue::new(1);
        q.schedule(LaneId(0), SimTime::from_nanos(100), "late");
        q.schedule(LaneId(0), SimTime::from_nanos(50), "early");
        q.schedule(LaneId(0), SimTime::from_nanos(75), "mid");
        assert_eq!(q.stats().spilled_events, 2);
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn hier_matches_flat_on_random_interleavings() {
        // The engines must pop identical sequences for identical schedule
        // calls — the bit-for-bit contract the Network relies on.
        let mut lcg = 0xDEAD_BEEFu64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut flat: EventQueue<u64> = EventQueue::new();
        let mut hier: HierEventQueue<u64> = HierEventQueue::new(7);
        let mut popped = 0u64;
        for i in 0..5_000u64 {
            let r = next();
            if r % 3 != 0 || flat.is_empty() {
                let lane = LaneId((r % 7) as u32);
                let at = SimTime::from_nanos(r % 10_000);
                flat.schedule(at, i);
                hier.schedule(lane, at, i);
            } else if r % 2 == 0 {
                assert_eq!(flat.pop(), hier.pop());
                popped += 1;
            } else {
                let t = SimTime::from_nanos(next() % 10_000);
                assert_eq!(flat.pop_if_before(t), hier.pop_if_before(t));
            }
            assert_eq!(flat.len(), hier.len());
            assert_eq!(flat.peek_time(), hier.peek_time());
        }
        while let Some(got) = hier.pop() {
            assert_eq!(Some(got), flat.pop());
            popped += 1;
        }
        assert_eq!(flat.pop(), None);
        assert!(popped > 1_000, "exercised only {popped} pops");
    }

    #[test]
    fn hier_stats_track_fast_path() {
        let mut q = HierEventQueue::new(2);
        for i in 0..10u64 {
            q.schedule(LaneId(0), SimTime::from_nanos(i * 10), i);
        }
        let s = q.stats();
        assert_eq!(s.lanes, 2);
        assert_eq!(s.inorder_events, 10);
        assert_eq!(s.spilled_events, 0);
        assert_eq!(s.max_lane_depth, 10);
    }

    #[test]
    fn engine_dispatch_matches_across_kinds() {
        let run = |kind: EngineKind| {
            let mut q: EventEngine<u32> = EventEngine::new(kind, 3);
            let mut out = Vec::new();
            q.schedule(LaneId(0), SimTime::from_nanos(4), 1);
            q.schedule(LaneId(1), SimTime::from_nanos(4), 2);
            out.push(q.pop().unwrap().1);
            q.schedule(LaneId(2), SimTime::from_nanos(4), 3);
            q.schedule(LaneId(0), SimTime::from_nanos(2), 4);
            while let Some((_, v)) = q.pop_if_before(SimTime::from_nanos(3)) {
                out.push(v);
            }
            while let Some((_, v)) = q.pop() {
                out.push(v);
            }
            out
        };
        assert_eq!(run(EngineKind::Hierarchical), run(EngineKind::LegacyHeap));
        assert_eq!(run(EngineKind::Hierarchical), vec![1, 4, 2, 3]);
    }
}
