//! Freelist pools for hot-path containers.
//!
//! The event engine allocates the same shapes over and over: per-window
//! item batches, emit logs, overlay heaps. At 1k-host scale (tens of
//! millions of events) letting those `Vec`s go to the allocator every
//! window dominates both the allocator lock and peak RSS. A [`Pool`]
//! keeps recycled containers — cleared, capacity intact — so steady
//! state allocates nothing: each group checks out a buffer set, fills
//! it, and returns it when the window is merged.
//!
//! Nothing here is specific to packets or events; anything that can be
//! emptied in place ([`Recycle`]) can be pooled. `Packet<M>` itself is a
//! flat value type (no heap payload — see `packet.rs`), so the wins come
//! from pooling the *containers* that hold packets and events, not the
//! packets themselves.

/// A container that can be emptied in place, retaining its allocation.
pub trait Recycle {
    /// Clear contents; keep capacity.
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T: Ord> Recycle for std::collections::BinaryHeap<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

/// A bounded freelist of recycled `T`s. [`take`](Pool::take) pops a
/// recycled instance (or makes a fresh default); [`put`](Pool::put)
/// recycles and retains it, up to `cap` instances — beyond that the
/// container is dropped, bounding how much idle capacity the pool pins.
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<T>,
    cap: usize,
}

impl<T: Default + Recycle> Pool<T> {
    /// A pool retaining at most `cap` idle instances.
    pub fn new(cap: usize) -> Self {
        Pool { free: Vec::new(), cap }
    }

    /// Check out an instance: recycled if available, fresh otherwise.
    pub fn take(&mut self) -> T {
        self.free.pop().unwrap_or_default()
    }

    /// Return an instance to the pool. It is recycled (emptied, capacity
    /// kept) and retained unless the pool is full.
    pub fn put(&mut self, mut t: T) {
        t.recycle();
        if self.free.len() < self.cap {
            self.free.push(t);
        }
    }

    /// Idle instances currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl<T: Default + Recycle> Default for Pool<T> {
    fn default() -> Self {
        // Enough for every group of a large fabric to have a buffer set
        // in flight plus a recycled spare.
        Pool::new(1024)
    }
}

/// Periodic trim-to-recent-high-water for recycled buffers.
///
/// Recycled containers keep their capacity forever, so one burst (an
/// incast filling a window buffer, a dense calendar epoch) pins peak
/// capacity for the rest of a 100M-event run. A `HighWater` watches the
/// occupancy a buffer actually reaches and, once per `period`
/// observations, reports the high-water mark of the last **two**
/// periods as the capacity target — so a trim lags one full period
/// behind a burst and a buffer that is still hot never shrinks under
/// its working set.
#[derive(Debug, Clone)]
pub struct HighWater {
    period: u32,
    tick: u32,
    high: usize,
    prev_high: usize,
}

impl HighWater {
    /// A tracker that reports a trim target every `period` observations
    /// (`period` is clamped to at least 1).
    pub fn new(period: u32) -> Self {
        HighWater { period: period.max(1), tick: 0, high: 0, prev_high: 0 }
    }

    /// Record the occupancy a buffer reached this cycle. Every `period`
    /// calls, returns `Some(target)`: the largest occupancy seen across
    /// the current and previous windows, i.e. what the buffer's
    /// capacity should shrink toward (see [`trim_capacity`]).
    pub fn observe(&mut self, len: usize) -> Option<usize> {
        self.high = self.high.max(len);
        self.tick += 1;
        if self.tick < self.period {
            return None;
        }
        self.tick = 0;
        let target = self.high.max(self.prev_high);
        self.prev_high = self.high;
        self.high = 0;
        Some(target)
    }
}

impl Default for HighWater {
    /// Defaults to a 1024-observation period: on per-window buffers
    /// that's a trim opportunity every ~1k windows, frequent enough to
    /// release an incast burst's capacity within a run, rare enough
    /// that the `shrink_to` cost never shows in a profile.
    fn default() -> Self {
        HighWater::new(1024)
    }
}

/// Shrink an (empty or near-empty) buffer's capacity toward `target`
/// when it pins more than twice that, keeping a small floor so tiny
/// buffers never thrash. Returns whether a trim happened.
pub fn trim_capacity<T>(v: &mut Vec<T>, target: usize) -> bool {
    let floor = target.max(64);
    if v.capacity() > floor.saturating_mul(2) {
        v.shrink_to(floor);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut p: Pool<Vec<u64>> = Pool::new(4);
        let mut v = p.take();
        v.extend(0..100);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.idle(), 1);
        let v2 = p.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "allocation not reused");
        assert_eq!(p.idle(), 0);
    }

    #[test]
    fn pool_bounds_idle_instances() {
        let mut p: Pool<Vec<u8>> = Pool::new(2);
        for _ in 0..5 {
            p.put(vec![1, 2, 3]);
        }
        assert_eq!(p.idle(), 2);
    }

    #[test]
    fn pool_take_on_empty_is_default() {
        let mut p: Pool<Vec<u8>> = Pool::new(2);
        assert!(p.take().is_empty());
    }

    #[test]
    fn heap_recycle() {
        let mut h = std::collections::BinaryHeap::from(vec![3, 1, 2]);
        h.recycle();
        assert!(h.is_empty());
    }

    #[test]
    fn high_water_reports_max_of_two_periods() {
        let mut hw = HighWater::new(3);
        // First period: peak 50. No report until the third observation.
        assert_eq!(hw.observe(10), None);
        assert_eq!(hw.observe(50), None);
        assert_eq!(hw.observe(5), Some(50));
        // Second period peaks at 8, but the previous period's 50 still
        // guards the target: a trim lags one full period behind a burst.
        assert_eq!(hw.observe(8), None);
        assert_eq!(hw.observe(2), None);
        assert_eq!(hw.observe(1), Some(50));
        // Third period: the burst has aged out of both windows, so the
        // target finally drops to the recent working set.
        assert_eq!(hw.observe(7), None);
        assert_eq!(hw.observe(3), None);
        assert_eq!(hw.observe(4), Some(8));
    }

    #[test]
    fn trim_capacity_releases_burst_but_keeps_snug_buffers() {
        // A buffer ballooned by a burst far past the target: trimmed.
        let mut v: Vec<u64> = Vec::with_capacity(10_000);
        assert!(trim_capacity(&mut v, 100));
        assert!(v.capacity() < 10_000, "capacity {} not released", v.capacity());
        assert!(v.capacity() >= 100, "trim must keep the working-set target");
        // Within 2x of target: left alone (no realloc churn).
        let mut snug: Vec<u64> = Vec::with_capacity(150);
        assert!(!trim_capacity(&mut snug, 100));
        assert_eq!(snug.capacity(), 150);
        // Tiny buffers never trim below the floor.
        let mut tiny: Vec<u64> = Vec::with_capacity(100);
        assert!(!trim_capacity(&mut tiny, 0));
    }

    #[test]
    fn high_water_period_floor() {
        // Period 0 degrades to reporting on every observation, not
        // dividing by zero / never reporting.
        let mut hw = HighWater::new(0);
        assert_eq!(hw.observe(9), Some(9));
        assert_eq!(hw.observe(1), Some(9));
        assert_eq!(hw.observe(0), Some(1));
    }
}
