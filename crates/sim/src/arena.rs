//! Freelist pools for hot-path containers.
//!
//! The event engine allocates the same shapes over and over: per-window
//! item batches, emit logs, overlay heaps. At 1k-host scale (tens of
//! millions of events) letting those `Vec`s go to the allocator every
//! window dominates both the allocator lock and peak RSS. A [`Pool`]
//! keeps recycled containers — cleared, capacity intact — so steady
//! state allocates nothing: each group checks out a buffer set, fills
//! it, and returns it when the window is merged.
//!
//! Nothing here is specific to packets or events; anything that can be
//! emptied in place ([`Recycle`]) can be pooled. `Packet<M>` itself is a
//! flat value type (no heap payload — see `packet.rs`), so the wins come
//! from pooling the *containers* that hold packets and events, not the
//! packets themselves.

/// A container that can be emptied in place, retaining its allocation.
pub trait Recycle {
    /// Clear contents; keep capacity.
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T: Ord> Recycle for std::collections::BinaryHeap<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

/// A bounded freelist of recycled `T`s. [`take`](Pool::take) pops a
/// recycled instance (or makes a fresh default); [`put`](Pool::put)
/// recycles and retains it, up to `cap` instances — beyond that the
/// container is dropped, bounding how much idle capacity the pool pins.
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<T>,
    cap: usize,
}

impl<T: Default + Recycle> Pool<T> {
    /// A pool retaining at most `cap` idle instances.
    pub fn new(cap: usize) -> Self {
        Pool { free: Vec::new(), cap }
    }

    /// Check out an instance: recycled if available, fresh otherwise.
    pub fn take(&mut self) -> T {
        self.free.pop().unwrap_or_default()
    }

    /// Return an instance to the pool. It is recycled (emptied, capacity
    /// kept) and retained unless the pool is full.
    pub fn put(&mut self, mut t: T) {
        t.recycle();
        if self.free.len() < self.cap {
            self.free.push(t);
        }
    }

    /// Idle instances currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl<T: Default + Recycle> Default for Pool<T> {
    fn default() -> Self {
        // Enough for every group of a large fabric to have a buffer set
        // in flight plus a recycled spare.
        Pool::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut p: Pool<Vec<u64>> = Pool::new(4);
        let mut v = p.take();
        v.extend(0..100);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.idle(), 1);
        let v2 = p.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "allocation not reused");
        assert_eq!(p.idle(), 0);
    }

    #[test]
    fn pool_bounds_idle_instances() {
        let mut p: Pool<Vec<u8>> = Pool::new(2);
        for _ in 0..5 {
            p.put(vec![1, 2, 3]);
        }
        assert_eq!(p.idle(), 2);
    }

    #[test]
    fn pool_take_on_empty_is_default() {
        let mut p: Pool<Vec<u8>> = Pool::new(2);
        assert!(p.take().is_empty());
    }

    #[test]
    fn heap_recycle() {
        let mut h = std::collections::BinaryHeap::from(vec![3, 1, 2]);
        h.recycle();
        assert!(h.is_empty());
    }
}
