//! Declarative fault injection: link flaps, receiver pauses, and
//! per-link rate reductions.
//!
//! A [`FaultPlan`] (alias [`FaultSpec`]) is a list of time-stamped
//! [`Fault`]s naming fabric links ([`LinkId`]) and hosts. Installing a
//! plan on a [`crate::Network`] (via
//! [`install_faults`](crate::Network::install_faults)) schedules each
//! fault as an ordinary event on the affected node's event lane, so
//! fault-laden runs stay bit-identical across event engines — the same
//! `(time, seq)` total order governs faults and packets alike.
//!
//! Semantics (see `crate::network` for the dispatch-path checks):
//!
//! * **Link down** — the egress port stops serving its queue and any
//!   packet *newly routed* to it is dropped (counted in
//!   [`crate::RunStats::fault_drops`]). The packet already on the wire
//!   completes; queued packets survive and resume on link-up. A down
//!   *host uplink* simply stops the NIC pull — the pull-model transport
//!   keeps its own queue, so nothing is lost on the sending host.
//! * **Receiver pause** — packets that finish arriving at a paused host
//!   are buffered in arrival order and handed to the transport when the
//!   host resumes (counted in
//!   [`crate::RunStats::deferred_deliveries`]). Timers still fire: a
//!   paused receiver models a stalled application/NIC-rx ring, not a
//!   stopped clock.
//! * **Rate limit** — the egress port's serialization rate changes for
//!   packets that *begin* transmission after the fault.
//!
//! An empty plan is the default everywhere and schedules nothing, so
//! existing scenarios replay event-for-event.

use crate::time::SimTime;
use crate::topology::HostId;

/// Names one directed link (equivalently: one egress port) of the
/// fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Host NIC → TOR uplink of a host.
    HostUplink(HostId),
    /// TOR → host downlink serving a host.
    HostDownlink(HostId),
    /// TOR `rack` → spine `spine` uplink.
    TorUplink {
        /// Rack whose TOR owns the port.
        rack: u32,
        /// Destination spine switch.
        spine: u32,
    },
    /// Spine `spine` → TOR `rack` downlink.
    SpineDownlink {
        /// Spine switch that owns the port.
        spine: u32,
        /// Destination rack.
        rack: u32,
    },
}

/// One declarative fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Take a link down.
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Reduce (or change) a link's serialization rate to `bps`.
    RateLimit {
        /// The link to limit.
        link: LinkId,
        /// New rate in bits per second (> 0).
        bps: u64,
    },
    /// Restore a link's rate to its topology-configured value.
    RateRestore(LinkId),
    /// Pause packet delivery to a host's transport.
    PauseReceiver(HostId),
    /// Resume delivery; buffered packets are handed over in order.
    ResumeReceiver(HostId),
    /// Correlated failure: every link touching rack `rack` goes down as
    /// one fault event — each member host's uplink and downlink, the
    /// TOR's uplinks, and the spine downlinks into the rack. The network
    /// expands the composite into per-link actions at the same instant
    /// (in a fixed canonical order), so runs stay bit-identical across
    /// engines; `RunStats::faults_applied` counts each member link.
    RackOutage {
        /// The rack that loses power.
        rack: u32,
    },
    /// Restore every link a [`Fault::RackOutage`] of the same rack took
    /// down, together.
    RackRestore {
        /// The rack to restore.
        rack: u32,
    },
    /// Correlated failure: spine switch `spine` goes dark — its downlinks
    /// and every TOR's uplink to it go down as one fault event.
    SpineOutage {
        /// The spine switch that fails.
        spine: u32,
    },
    /// Restore every link a [`Fault::SpineOutage`] of the same spine took
    /// down, together.
    SpineRestore {
        /// The spine switch to restore.
        spine: u32,
    },
}

/// A time-stamped fault schedule. Times are absolute simulation
/// nanoseconds; events at equal times apply in the order they were
/// added.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(at_ns, fault)` pairs; need not be pre-sorted.
    pub events: Vec<(u64, Fault)>,
}

/// The name `ScenarioSpec` uses for its fault field.
pub type FaultSpec = FaultPlan;

impl FaultPlan {
    /// An empty plan (the default; schedules nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one fault at `at_ns`.
    pub fn at(mut self, at_ns: u64, fault: Fault) -> Self {
        self.events.push((at_ns, fault));
        self
    }

    /// Flap `link` down/up `flaps` times: down at
    /// `first_down_ns + i * period_ns` for `down_ns` each.
    pub fn link_flaps(
        mut self,
        link: LinkId,
        first_down_ns: u64,
        down_ns: u64,
        period_ns: u64,
        flaps: u32,
    ) -> Self {
        assert!(down_ns > 0 && down_ns < period_ns, "flap must come back up within its period");
        for i in 0..flaps as u64 {
            let down_at = first_down_ns + i * period_ns;
            self.events.push((down_at, Fault::LinkDown(link)));
            self.events.push((down_at + down_ns, Fault::LinkUp(link)));
        }
        self
    }

    /// Pause delivery to `host` at `at_ns`, resuming at `resume_ns`.
    pub fn receiver_pause(mut self, host: HostId, at_ns: u64, resume_ns: u64) -> Self {
        assert!(resume_ns > at_ns, "resume must follow pause");
        self.events.push((at_ns, Fault::PauseReceiver(host)));
        self.events.push((resume_ns, Fault::ResumeReceiver(host)));
        self
    }

    /// Take all of rack `rack`'s links down at `at_ns` and restore them
    /// together at `restore_ns` (a whole-rack power event).
    pub fn rack_outage(mut self, rack: u32, at_ns: u64, restore_ns: u64) -> Self {
        assert!(restore_ns > at_ns, "restore must follow the outage");
        self.events.push((at_ns, Fault::RackOutage { rack }));
        self.events.push((restore_ns, Fault::RackRestore { rack }));
        self
    }

    /// Take spine `spine` dark at `at_ns` and restore it at `restore_ns`.
    pub fn spine_outage(mut self, spine: u32, at_ns: u64, restore_ns: u64) -> Self {
        assert!(restore_ns > at_ns, "restore must follow the outage");
        self.events.push((at_ns, Fault::SpineOutage { spine }));
        self.events.push((restore_ns, Fault::SpineRestore { spine }));
        self
    }

    /// Limit `link` to `bps` between `at_ns` and `restore_ns`.
    pub fn rate_limit(mut self, link: LinkId, at_ns: u64, restore_ns: u64, bps: u64) -> Self {
        assert!(bps > 0, "rate limit must be positive");
        assert!(restore_ns > at_ns, "restore must follow the limit");
        self.events.push((at_ns, Fault::RateLimit { link, bps }));
        self.events.push((restore_ns, Fault::RateRestore(link)));
        self
    }

    /// The events sorted by time (stable: same-time events keep insertion
    /// order), as `(time, fault)` pairs ready for scheduling.
    pub fn sorted_events(&self) -> Vec<(SimTime, Fault)> {
        let mut evs: Vec<(u64, Fault)> = self.events.clone();
        evs.sort_by_key(|&(at, _)| at);
        evs.into_iter().map(|(at, f)| (SimTime::from_nanos(at), f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_builder_generates_pairs() {
        let link = LinkId::HostDownlink(HostId(3));
        let plan = FaultPlan::new().link_flaps(link, 1_000, 200, 500, 3);
        assert_eq!(plan.events.len(), 6);
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0], (SimTime::from_nanos(1_000), Fault::LinkDown(link)));
        assert_eq!(sorted[1], (SimTime::from_nanos(1_200), Fault::LinkUp(link)));
        assert_eq!(sorted[4], (SimTime::from_nanos(2_000), Fault::LinkDown(link)));
        assert_eq!(sorted[5], (SimTime::from_nanos(2_200), Fault::LinkUp(link)));
    }

    #[test]
    fn sorted_events_are_stable_within_a_time() {
        let plan = FaultPlan::new()
            .at(500, Fault::PauseReceiver(HostId(1)))
            .at(100, Fault::LinkDown(LinkId::HostUplink(HostId(0))))
            .at(500, Fault::ResumeReceiver(HostId(2)));
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].1, Fault::LinkDown(LinkId::HostUplink(HostId(0))));
        assert_eq!(sorted[1].1, Fault::PauseReceiver(HostId(1)));
        assert_eq!(sorted[2].1, Fault::ResumeReceiver(HostId(2)));
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::new().at(0, Fault::PauseReceiver(HostId(0))).is_empty());
    }

    #[test]
    #[should_panic(expected = "within its period")]
    fn flap_rejects_overlapping_period() {
        let _ = FaultPlan::new().link_flaps(LinkId::HostUplink(HostId(0)), 0, 500, 500, 2);
    }

    #[test]
    fn outage_builders_pair_down_with_restore() {
        let plan = FaultPlan::new().rack_outage(2, 1_000, 9_000).spine_outage(1, 3_000, 4_000);
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0], (SimTime::from_nanos(1_000), Fault::RackOutage { rack: 2 }));
        assert_eq!(sorted[1], (SimTime::from_nanos(3_000), Fault::SpineOutage { spine: 1 }));
        assert_eq!(sorted[2], (SimTime::from_nanos(4_000), Fault::SpineRestore { spine: 1 }));
        assert_eq!(sorted[3], (SimTime::from_nanos(9_000), Fault::RackRestore { rack: 2 }));
    }

    #[test]
    #[should_panic(expected = "restore must follow")]
    fn outage_rejects_inverted_interval() {
        let _ = FaultPlan::new().rack_outage(0, 500, 500);
    }
}
