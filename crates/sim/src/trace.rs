//! The flight recorder: event-level tracing and derived timelines.
//!
//! Aggregate [`crate::RunStats`] answer *how much*; this module answers
//! *when* and *why*. With tracing enabled (the `trace` cargo feature plus
//! [`crate::Network::enable_trace`]), the fabric emits a typed
//! [`TraceEvent`] at every observable transition — packet enqueue/dequeue
//! with priority and queue depth, transmission start, grant issued and
//! received, resend request, preemption of a lower-priority packet,
//! fault drop, message start and delivery — into a bounded
//! [`FlightRecorder`] ring.
//!
//! Three properties the rest of the workspace depends on:
//!
//! * **Zero cost when off.** Every emit site is guarded by a sink-level
//!   `tracing()` check that constant-folds to `false` when the `trace`
//!   feature is compiled out, and short-circuits on one bool when the
//!   feature is on but no recorder is installed. Trace events are *not*
//!   simulator events: they never enter the event engine, so event counts
//!   and all simulation state are bit-identical with tracing on, off, or
//!   compiled out.
//! * **Engine independence.** Under parallel window dispatch, trace
//!   events ride the same per-group emit logs as deferred simulator
//!   events and are applied by the window merge in exact global
//!   `(time, seq)` order — so the recorded byte stream is identical
//!   across `LegacyHeap`, `Hierarchical`, and `ParallelHier{n}` for any
//!   thread count (`tests/determinism.rs` pins this).
//! * **Deterministic serialization.** [`TraceRecord::write_jsonl`]
//!   renders a canonical one-object-per-line JSON form with fixed key
//!   order, so a trace can be golden-tested byte-for-byte.
//!
//! On top of the raw record stream, [`Timeline`] folds per-priority link
//! utilization and queue occupancy into fixed-width time buckets (the
//! paper's Fig. 9 visibility), and [`summarize_messages`] reconstructs
//! per-message lifecycles — queueing vs. transmission vs. grant/resend
//! activity — for the `repro trace` summarize view.

use crate::arena::Recycle;
use crate::queues::EnqueueOutcome;
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, NodeId};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

fn outcome_label(o: EnqueueOutcome) -> &'static str {
    match o {
        EnqueueOutcome::Accepted => "ok",
        EnqueueOutcome::Dropped => "drop",
        EnqueueOutcome::Trimmed => "trim",
    }
}

/// One observable transition in the fabric. Every variant is a flat
/// `Copy` value — recording is a ring-buffer store, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was handed to a sender transport.
    MsgStart {
        /// Sending host.
        src: HostId,
        /// Receiving host.
        dst: HostId,
        /// Application bytes.
        len: u64,
        /// Application tag (echoed in the matching delivery).
        tag: u64,
    },
    /// A receiver transport delivered a complete message.
    MsgDelivered {
        /// Host that completed the delivery.
        host: HostId,
        /// Original sender.
        src: HostId,
        /// Application tag from the matching [`TraceEvent::MsgStart`].
        tag: u64,
        /// Application bytes delivered.
        len: u64,
    },
    /// A packet was offered to a switch egress queue.
    Enqueue {
        /// Switch holding the queue.
        node: NodeId,
        /// Egress port index on that switch.
        port: u32,
        /// Packet's source host.
        src: HostId,
        /// Packet's destination host.
        dst: HostId,
        /// Packet priority (0 = lowest, 7 = highest).
        prio: u8,
        /// Bytes the queue actually gained (post-trim; 0 on drop).
        bytes: u32,
        /// Queued packets after the operation.
        qpkts: u32,
        /// Queued bytes after the operation.
        qbytes: u64,
        /// Accepted, dropped, or trimmed.
        outcome: EnqueueOutcome,
    },
    /// A packet left a switch egress queue and began transmission.
    Dequeue {
        /// Switch holding the queue.
        node: NodeId,
        /// Egress port index on that switch.
        port: u32,
        /// Packet's source host.
        src: HostId,
        /// Packet's destination host.
        dst: HostId,
        /// Packet priority at dequeue (post-trim).
        prio: u8,
        /// Wire bytes leaving the queue.
        bytes: u32,
        /// Time spent waiting behind equal-or-higher-priority traffic,
        /// nanoseconds (preemption lag excluded — add `lag_ns` for the
        /// total wait).
        waited_ns: u64,
        /// Of the wait, time attributable to a lower-priority packet
        /// holding the link (preemption lag), nanoseconds.
        lag_ns: u64,
        /// Queued bytes remaining after the dequeue.
        qbytes: u64,
    },
    /// A packet began serialization onto a link (host NIC pulls and
    /// switch pass-throughs included — every transmission has exactly
    /// one `TxStart`).
    TxStart {
        /// Transmitting node.
        node: NodeId,
        /// Egress port index.
        port: u32,
        /// Packet's source host.
        src: HostId,
        /// Packet's destination host.
        dst: HostId,
        /// Packet priority.
        prio: u8,
        /// Wire bytes serialized.
        bytes: u32,
        /// Serialization time at this link's rate, nanoseconds.
        dur_ns: u64,
    },
    /// An arriving packet outranks the packet currently occupying the
    /// link — the arrival will wait out the residual serialization
    /// (Fig. 14's preemption lag, observed at the moment it begins).
    Preempted {
        /// Switch where the collision happened.
        node: NodeId,
        /// Egress port index.
        port: u32,
        /// Priority of the arriving (winning) packet.
        prio: u8,
        /// Priority of the in-flight (losing) packet.
        over_prio: u8,
        /// Residual serialization time of the in-flight packet,
        /// nanoseconds.
        lag_ns: u64,
    },
    /// A packet was discarded because its egress link was faulted down.
    FaultDrop {
        /// Switch that dropped the packet.
        node: NodeId,
        /// Faulted egress port index.
        port: u32,
        /// Packet's source host.
        src: HostId,
        /// Packet's destination host.
        dst: HostId,
        /// Packet priority.
        prio: u8,
    },
    /// A receiver transport put a grant on the wire.
    GrantIssued {
        /// Granting (receiving) host.
        from: HostId,
        /// Granted (sending) host.
        to: HostId,
        /// New granted byte offset.
        offset: u64,
        /// Scheduled priority the grant assigns.
        prio: u8,
    },
    /// A sender transport received a grant.
    GrantReceived {
        /// Host receiving the grant (the message sender).
        host: HostId,
        /// Host that issued it (the message receiver).
        from: HostId,
        /// Granted byte offset.
        offset: u64,
        /// Scheduled priority assigned.
        prio: u8,
    },
    /// A receiver transport requested retransmission of a byte range.
    Resend {
        /// Requesting (receiving) host.
        from: HostId,
        /// Host asked to retransmit (the message sender).
        to: HostId,
        /// First missing byte.
        offset: u64,
        /// Missing byte count.
        len: u64,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time the event fired.
    pub at: SimTime,
    /// What happened.
    pub ev: TraceEvent,
}

fn write_node(out: &mut String, node: NodeId) {
    match node {
        NodeId::Host(h) => {
            let _ = write!(out, "\"h{}\"", h.0);
        }
        NodeId::Tor(r) => {
            let _ = write!(out, "\"tor{r}\"");
        }
        NodeId::Spine(s) => {
            let _ = write!(out, "\"spine{s}\"");
        }
    }
}

impl TraceRecord {
    /// Append the canonical JSONL form of this record (one JSON object,
    /// fixed key order, trailing newline) to `out`. Hand-rolled — the
    /// workspace builds without a real serde — and deterministic, so
    /// traces can be compared byte-for-byte.
    pub fn write_jsonl(&self, out: &mut String) {
        let t = self.at.as_nanos();
        match self.ev {
            TraceEvent::MsgStart { src, dst, len, tag } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"ev\":\"msg_start\",\"src\":{},\"dst\":{},\"len\":{len},\"tag\":{tag}}}",
                    src.0, dst.0
                );
            }
            TraceEvent::MsgDelivered { host, src, tag, len } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"ev\":\"msg_done\",\"host\":{},\"src\":{},\"tag\":{tag},\"len\":{len}}}",
                    host.0, src.0
                );
            }
            TraceEvent::Enqueue { node, port, src, dst, prio, bytes, qpkts, qbytes, outcome } => {
                let _ = write!(out, "{{\"t\":{t},\"ev\":\"enq\",\"node\":");
                write_node(out, node);
                let _ = write!(
                    out,
                    ",\"port\":{port},\"src\":{},\"dst\":{},\"prio\":{prio},\"bytes\":{bytes},\"qpkts\":{qpkts},\"qbytes\":{qbytes},\"outcome\":\"{}\"}}",
                    src.0,
                    dst.0,
                    outcome_label(outcome)
                );
            }
            TraceEvent::Dequeue {
                node,
                port,
                src,
                dst,
                prio,
                bytes,
                waited_ns,
                lag_ns,
                qbytes,
            } => {
                let _ = write!(out, "{{\"t\":{t},\"ev\":\"deq\",\"node\":");
                write_node(out, node);
                let _ = write!(
                    out,
                    ",\"port\":{port},\"src\":{},\"dst\":{},\"prio\":{prio},\"bytes\":{bytes},\"waited_ns\":{waited_ns},\"lag_ns\":{lag_ns},\"qbytes\":{qbytes}}}",
                    src.0, dst.0
                );
            }
            TraceEvent::TxStart { node, port, src, dst, prio, bytes, dur_ns } => {
                let _ = write!(out, "{{\"t\":{t},\"ev\":\"tx\",\"node\":");
                write_node(out, node);
                let _ = write!(
                    out,
                    ",\"port\":{port},\"src\":{},\"dst\":{},\"prio\":{prio},\"bytes\":{bytes},\"dur_ns\":{dur_ns}}}",
                    src.0, dst.0
                );
            }
            TraceEvent::Preempted { node, port, prio, over_prio, lag_ns } => {
                let _ = write!(out, "{{\"t\":{t},\"ev\":\"preempt\",\"node\":");
                write_node(out, node);
                let _ = write!(
                    out,
                    ",\"port\":{port},\"prio\":{prio},\"over_prio\":{over_prio},\"lag_ns\":{lag_ns}}}"
                );
            }
            TraceEvent::FaultDrop { node, port, src, dst, prio } => {
                let _ = write!(out, "{{\"t\":{t},\"ev\":\"fault_drop\",\"node\":");
                write_node(out, node);
                let _ = write!(
                    out,
                    ",\"port\":{port},\"src\":{},\"dst\":{},\"prio\":{prio}}}",
                    src.0, dst.0
                );
            }
            TraceEvent::GrantIssued { from, to, offset, prio } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"ev\":\"grant_tx\",\"from\":{},\"to\":{},\"offset\":{offset},\"prio\":{prio}}}",
                    from.0, to.0
                );
            }
            TraceEvent::GrantReceived { host, from, offset, prio } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"ev\":\"grant_rx\",\"host\":{},\"from\":{},\"offset\":{offset},\"prio\":{prio}}}",
                    host.0, from.0
                );
            }
            TraceEvent::Resend { from, to, offset, len } => {
                let _ = write!(
                    out,
                    "{{\"t\":{t},\"ev\":\"resend\",\"from\":{},\"to\":{},\"offset\":{offset},\"len\":{len}}}",
                    from.0, to.0
                );
            }
        }
        out.push('\n');
    }
}

/// Render a slice of records as canonical JSONL (one record per line).
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    // ~120 bytes per rendered line in practice; reserve once.
    let mut out = String::with_capacity(records.len() * 120 + 16);
    for r in records {
        r.write_jsonl(&mut out);
    }
    out
}

/// A bounded ring of [`TraceRecord`]s. When full, the *oldest* record is
/// evicted (flight-recorder semantics: the end of the run is what you
/// usually need) and `dropped` counts the evictions so truncation is
/// never silent.
#[derive(Debug)]
pub struct FlightRecorder {
    records: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Default ring capacity: 2^18 records (~10 MB), enough for every
    /// packet event of a perf-smoke-sized run.
    pub const DEFAULT_CAP: usize = 1 << 18;

    /// A recorder retaining at most `cap` records (minimum 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder { records: VecDeque::new(), cap: cap.max(1), dropped: 0 }
    }

    /// Append a record, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, at: SimTime, ev: TraceEvent) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { at, ev });
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Oldest records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the ring into a `Vec` in recording order.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }
}

impl Recycle for FlightRecorder {
    fn recycle(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

/// Per-priority link utilization and queue occupancy folded into
/// fixed-width time buckets — the paper's Fig. 9 view, derived entirely
/// from a recorded trace (no simulator-side cost).
///
/// Utilization buckets accumulate serialization nanoseconds per priority
/// over every port matched by the fold's filter, with transmissions that
/// span bucket boundaries split proportionally. Occupancy buckets track
/// the peak of the aggregate queued bytes per priority across matched
/// ports, reconstructed from enqueue/dequeue byte deltas.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Bucket width, nanoseconds.
    pub bucket_ns: u64,
    /// Per bucket: busy (serializing) nanoseconds by priority, summed
    /// over matched ports.
    pub busy_ns_by_prio: Vec<[u64; 8]>,
    /// Per bucket: peak aggregate queued bytes by priority across
    /// matched ports.
    pub peak_queue_by_prio: Vec<[u64; 8]>,
    /// Distinct matched ports that transmitted at least once.
    pub ports: usize,
}

impl Timeline {
    /// Fold `records` into buckets of `bucket` width, covering
    /// `[0, end)`. Only events at ports for which `port_filter` returns
    /// `true` contribute (pass `|_, _| true` for the whole fabric, or
    /// filter to TOR downlinks for the paper's receiver-side view).
    pub fn from_records(
        records: &[TraceRecord],
        bucket: SimDuration,
        end: SimTime,
        mut port_filter: impl FnMut(NodeId, u32) -> bool,
    ) -> Timeline {
        let bucket_ns = bucket.as_nanos().max(1);
        let nbuckets = (end.as_nanos().div_ceil(bucket_ns)).max(1) as usize;
        let mut tl = Timeline {
            bucket_ns,
            busy_ns_by_prio: vec![[0u64; 8]; nbuckets],
            peak_queue_by_prio: vec![[0u64; 8]; nbuckets],
            ports: 0,
        };
        // Aggregate queued bytes per priority across matched ports.
        let mut occupancy = [0u64; 8];
        let mut tx_ports: HashMap<(NodeId, u32), ()> = HashMap::new();
        for r in records {
            let t = r.at.as_nanos();
            match r.ev {
                TraceEvent::TxStart { node, port, prio, dur_ns, .. } if port_filter(node, port) => {
                    tx_ports.entry((node, port)).or_insert(());
                    let p = (prio as usize).min(7);
                    // Split the serialization interval across buckets.
                    let mut start = t;
                    let end_tx = t + dur_ns;
                    while start < end_tx {
                        let b = (start / bucket_ns) as usize;
                        if b >= nbuckets {
                            break;
                        }
                        let bucket_end = (b as u64 + 1) * bucket_ns;
                        let slice = end_tx.min(bucket_end) - start;
                        tl.busy_ns_by_prio[b][p] += slice;
                        start = bucket_end;
                    }
                }
                TraceEvent::Enqueue { node, port, prio, bytes, .. } if port_filter(node, port) => {
                    let p = (prio as usize).min(7);
                    occupancy[p] += bytes as u64;
                    let b = ((t / bucket_ns) as usize).min(nbuckets - 1);
                    tl.peak_queue_by_prio[b][p] = tl.peak_queue_by_prio[b][p].max(occupancy[p]);
                }
                TraceEvent::Dequeue { node, port, prio, bytes, .. } if port_filter(node, port) => {
                    let p = (prio as usize).min(7);
                    occupancy[p] = occupancy[p].saturating_sub(bytes as u64);
                    let b = ((t / bucket_ns) as usize).min(nbuckets - 1);
                    tl.peak_queue_by_prio[b][p] = tl.peak_queue_by_prio[b][p].max(occupancy[p]);
                }
                _ => {}
            }
        }
        tl.ports = tx_ports.len();
        tl
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.busy_ns_by_prio.len()
    }

    /// Whole-run utilization fraction per priority: busy time at each
    /// priority divided by total matched link-time (`ports × span`).
    /// Zeros if no matched port ever transmitted.
    pub fn utilization_by_prio(&self) -> [f64; 8] {
        let mut out = [0.0f64; 8];
        let span_ns = self.bucket_ns * self.buckets() as u64;
        let denom = (self.ports as u64 * span_ns) as f64;
        if denom == 0.0 {
            return out;
        }
        for b in &self.busy_ns_by_prio {
            for (o, busy) in out.iter_mut().zip(b.iter()) {
                *o += *busy as f64;
            }
        }
        for o in &mut out {
            *o /= denom;
        }
        out
    }
}

impl Recycle for Timeline {
    fn recycle(&mut self) {
        self.busy_ns_by_prio.clear();
        self.peak_queue_by_prio.clear();
        self.ports = 0;
    }
}

/// One message's reconstructed lifecycle, from a recorded trace.
///
/// Queueing and transmission time are attributed per `(src, dst)` pair
/// while the message is outstanding: when several messages between the
/// same pair overlap in time, packet-level waits are charged to the
/// earliest still-open message (the trace does not tag packets with
/// message identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgLifecycle {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application tag.
    pub tag: u64,
    /// Application bytes.
    pub len: u64,
    /// When the message was handed to the sender.
    pub start: SimTime,
    /// When it was delivered (`None` if the trace ends first).
    pub delivered: Option<SimTime>,
    /// Nanoseconds the message's packets spent waiting in switch queues
    /// (queueing + preemption lag).
    pub queued_ns: u64,
    /// Nanoseconds of serialization on the sender's uplink.
    pub tx_ns: u64,
    /// Grants received by the sender while the message was open.
    pub grants: u32,
    /// Resend requests received by the sender while the message was open.
    pub resends: u32,
}

impl MsgLifecycle {
    /// End-to-end latency, if the message completed inside the trace.
    pub fn latency(&self) -> Option<SimDuration> {
        self.delivered.map(|d| d.saturating_since(self.start))
    }
}

/// Reconstruct the lifecycle of every message started in `records`, in
/// start order. See [`MsgLifecycle`] for the attribution rules.
pub fn summarize_messages(records: &[TraceRecord]) -> Vec<MsgLifecycle> {
    let mut out: Vec<MsgLifecycle> = Vec::new();
    // Open messages per (src, dst), as indices into `out`, FIFO.
    let mut open: HashMap<(HostId, HostId), VecDeque<usize>> = HashMap::new();
    let first_open =
        |open: &HashMap<(HostId, HostId), VecDeque<usize>>,
         src: HostId,
         dst: HostId|
         -> Option<usize> { open.get(&(src, dst)).and_then(|q| q.front().copied()) };
    for r in records {
        match r.ev {
            TraceEvent::MsgStart { src, dst, len, tag } => {
                out.push(MsgLifecycle {
                    src,
                    dst,
                    tag,
                    len,
                    start: r.at,
                    delivered: None,
                    queued_ns: 0,
                    tx_ns: 0,
                    grants: 0,
                    resends: 0,
                });
                open.entry((src, dst)).or_default().push_back(out.len() - 1);
            }
            TraceEvent::MsgDelivered { host, src, tag, .. } => {
                if let Some(q) = open.get_mut(&(src, host)) {
                    // Deliveries can complete out of FIFO order (SRPT);
                    // close the matching tag, else the oldest.
                    let pos = q.iter().position(|&i| out[i].tag == tag).unwrap_or(0);
                    if let Some(i) = q.remove(pos) {
                        out[i].delivered = Some(r.at);
                    }
                }
            }
            TraceEvent::Dequeue { src, dst, waited_ns, lag_ns, .. } => {
                if let Some(i) = first_open(&open, src, dst) {
                    out[i].queued_ns += waited_ns + lag_ns;
                }
            }
            TraceEvent::TxStart { node, src, dst, dur_ns, .. } if node == NodeId::Host(src) => {
                if let Some(i) = first_open(&open, src, dst) {
                    out[i].tx_ns += dur_ns;
                }
            }
            TraceEvent::GrantReceived { host, from, .. } => {
                if let Some(i) = first_open(&open, host, from) {
                    out[i].grants += 1;
                }
            }
            TraceEvent::Resend { from, to, .. } => {
                if let Some(i) = first_open(&open, to, from) {
                    out[i].resends += 1;
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId(n)
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(
                SimTime::from_nanos(i),
                TraceEvent::MsgStart { src: h(0), dst: h(1), len: i, tag: i },
            );
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let taken = fr.take();
        assert!(fr.is_empty());
        // Oldest evicted: survivors are records 2..5 in order.
        assert_eq!(taken[0].at, SimTime::from_nanos(2));
        assert_eq!(taken[2].at, SimTime::from_nanos(4));
    }

    #[test]
    fn recorder_recycles_in_place() {
        let mut fr = FlightRecorder::new(2);
        fr.record(SimTime::ZERO, TraceEvent::MsgStart { src: h(0), dst: h(1), len: 1, tag: 0 });
        fr.record(SimTime::ZERO, TraceEvent::MsgStart { src: h(0), dst: h(1), len: 1, tag: 1 });
        fr.record(SimTime::ZERO, TraceEvent::MsgStart { src: h(0), dst: h(1), len: 1, tag: 2 });
        assert_eq!(fr.dropped(), 1);
        fr.recycle();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn jsonl_is_canonical_and_stable() {
        let recs = [
            TraceRecord {
                at: SimTime::from_nanos(10),
                ev: TraceEvent::Enqueue {
                    node: NodeId::Tor(2),
                    port: 3,
                    src: h(1),
                    dst: h(9),
                    prio: 6,
                    bytes: 1460,
                    qpkts: 2,
                    qbytes: 2920,
                    outcome: EnqueueOutcome::Accepted,
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(11),
                ev: TraceEvent::GrantIssued { from: h(9), to: h(1), offset: 9800, prio: 5 },
            },
        ];
        let got = render_jsonl(&recs);
        assert_eq!(
            got,
            "{\"t\":10,\"ev\":\"enq\",\"node\":\"tor2\",\"port\":3,\"src\":1,\"dst\":9,\
             \"prio\":6,\"bytes\":1460,\"qpkts\":2,\"qbytes\":2920,\"outcome\":\"ok\"}\n\
             {\"t\":11,\"ev\":\"grant_tx\",\"from\":9,\"to\":1,\"offset\":9800,\"prio\":5}\n"
        );
    }

    #[test]
    fn jsonl_covers_every_variant() {
        let evs = [
            TraceEvent::MsgStart { src: h(0), dst: h(1), len: 100, tag: 1 },
            TraceEvent::MsgDelivered { host: h(1), src: h(0), tag: 1, len: 100 },
            TraceEvent::Dequeue {
                node: NodeId::Spine(0),
                port: 1,
                src: h(0),
                dst: h(1),
                prio: 7,
                bytes: 100,
                waited_ns: 5,
                lag_ns: 2,
                qbytes: 0,
            },
            TraceEvent::TxStart {
                node: NodeId::Host(h(0)),
                port: 0,
                src: h(0),
                dst: h(1),
                prio: 7,
                bytes: 100,
                dur_ns: 80,
            },
            TraceEvent::Preempted {
                node: NodeId::Tor(0),
                port: 0,
                prio: 7,
                over_prio: 1,
                lag_ns: 40,
            },
            TraceEvent::FaultDrop { node: NodeId::Tor(1), port: 2, src: h(0), dst: h(1), prio: 0 },
            TraceEvent::GrantReceived { host: h(0), from: h(1), offset: 50, prio: 3 },
            TraceEvent::Resend { from: h(1), to: h(0), offset: 0, len: 100 },
        ];
        for ev in evs {
            let mut line = String::new();
            TraceRecord { at: SimTime::from_nanos(1), ev }.write_jsonl(&mut line);
            assert!(line.starts_with("{\"t\":1,\"ev\":\""), "{line}");
            assert!(line.ends_with("}\n"), "{line}");
        }
    }

    #[test]
    fn timeline_folds_utilization_and_occupancy() {
        let tor = NodeId::Tor(0);
        let recs = [
            // 100 ns of prio-7 serialization spanning the 0/1 bucket edge.
            TraceRecord {
                at: SimTime::from_nanos(950),
                ev: TraceEvent::TxStart {
                    node: tor,
                    port: 0,
                    src: h(0),
                    dst: h(1),
                    prio: 7,
                    bytes: 125,
                    dur_ns: 100,
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(100),
                ev: TraceEvent::Enqueue {
                    node: tor,
                    port: 0,
                    src: h(0),
                    dst: h(1),
                    prio: 0,
                    bytes: 1000,
                    qpkts: 1,
                    qbytes: 1000,
                    outcome: EnqueueOutcome::Accepted,
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(1200),
                ev: TraceEvent::Dequeue {
                    node: tor,
                    port: 0,
                    src: h(0),
                    dst: h(1),
                    prio: 0,
                    bytes: 1000,
                    waited_ns: 1100,
                    lag_ns: 0,
                    qbytes: 0,
                },
            },
        ];
        let tl = Timeline::from_records(
            &recs,
            SimDuration::from_nanos(1000),
            SimTime::from_nanos(2000),
            |_, _| true,
        );
        assert_eq!(tl.buckets(), 2);
        assert_eq!(tl.ports, 1);
        assert_eq!(tl.busy_ns_by_prio[0][7], 50);
        assert_eq!(tl.busy_ns_by_prio[1][7], 50);
        assert_eq!(tl.peak_queue_by_prio[0][0], 1000);
        assert_eq!(tl.peak_queue_by_prio[1][0], 0);
        let util = tl.utilization_by_prio();
        assert!((util[7] - 0.05).abs() < 1e-9, "{util:?}");
        // Filtered fold sees nothing.
        let none = Timeline::from_records(
            &recs,
            SimDuration::from_nanos(1000),
            SimTime::from_nanos(2000),
            |_, _| false,
        );
        assert_eq!(none.ports, 0);
        assert_eq!(none.utilization_by_prio(), [0.0; 8]);
    }

    #[test]
    fn lifecycle_reconstruction_attributes_phases() {
        let recs = [
            TraceRecord {
                at: SimTime::from_nanos(0),
                ev: TraceEvent::MsgStart { src: h(0), dst: h(1), len: 2000, tag: 42 },
            },
            TraceRecord {
                at: SimTime::from_nanos(10),
                ev: TraceEvent::TxStart {
                    node: NodeId::Host(h(0)),
                    port: 0,
                    src: h(0),
                    dst: h(1),
                    prio: 6,
                    bytes: 1060,
                    dur_ns: 848,
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(900),
                ev: TraceEvent::Dequeue {
                    node: NodeId::Tor(0),
                    port: 1,
                    src: h(0),
                    dst: h(1),
                    prio: 6,
                    bytes: 1060,
                    waited_ns: 300,
                    lag_ns: 50,
                    qbytes: 0,
                },
            },
            TraceRecord {
                at: SimTime::from_nanos(1000),
                ev: TraceEvent::GrantReceived { host: h(0), from: h(1), offset: 2000, prio: 5 },
            },
            TraceRecord {
                at: SimTime::from_nanos(3000),
                ev: TraceEvent::MsgDelivered { host: h(1), src: h(0), tag: 42, len: 2000 },
            },
        ];
        let ms = summarize_messages(&recs);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!((m.src, m.dst, m.tag, m.len), (h(0), h(1), 42, 2000));
        assert_eq!(m.delivered, Some(SimTime::from_nanos(3000)));
        assert_eq!(m.latency(), Some(SimDuration::from_nanos(3000)));
        assert_eq!(m.queued_ns, 350);
        assert_eq!(m.tx_ns, 848);
        assert_eq!(m.grants, 1);
        assert_eq!(m.resends, 0);
    }

    #[test]
    fn lifecycle_closes_matching_tag_out_of_order() {
        // Two overlapping messages on the same pair; the short one (tag 2)
        // completes first — SRPT — and must close its own entry.
        let recs = [
            TraceRecord {
                at: SimTime::from_nanos(0),
                ev: TraceEvent::MsgStart { src: h(0), dst: h(1), len: 9000, tag: 1 },
            },
            TraceRecord {
                at: SimTime::from_nanos(5),
                ev: TraceEvent::MsgStart { src: h(0), dst: h(1), len: 100, tag: 2 },
            },
            TraceRecord {
                at: SimTime::from_nanos(500),
                ev: TraceEvent::MsgDelivered { host: h(1), src: h(0), tag: 2, len: 100 },
            },
            TraceRecord {
                at: SimTime::from_nanos(9000),
                ev: TraceEvent::MsgDelivered { host: h(1), src: h(0), tag: 1, len: 9000 },
            },
        ];
        let ms = summarize_messages(&recs);
        assert_eq!(ms[0].delivered, Some(SimTime::from_nanos(9000)));
        assert_eq!(ms[1].delivered, Some(SimTime::from_nanos(500)));
    }
}
