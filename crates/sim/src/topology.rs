//! Network topologies.
//!
//! The paper evaluates Homa on two fabrics:
//!
//! * **Implementation cluster** (Figures 8–10): 16 hosts on one 10 Gbps
//!   switch — [`Topology::single_switch`].
//! * **Simulation fabric** (Figure 11, used for Figures 12–21 and Table 1):
//!   144 hosts in 9 racks of 16, a TOR per rack, 4 spine (aggregation)
//!   switches, 10 Gbps host links and 40 Gbps TOR↔spine links, 250 ns of
//!   switch delay, zero propagation delay, and 1.5 µs of host software
//!   turnaround — [`Topology::paper_fabric`].
//!
//! Both are instances of a two-level leaf–spine parameterized here. Packets
//! travelling between racks are sprayed uniformly across spine uplinks
//! (per-packet load balancing, §2.2 of the paper).
//!
//! For experiments beyond the paper's fabric size the same struct also
//! describes a **three-tier k-ary fat tree** ([`Topology::fat_tree`]):
//! k pods of k/2 edge (TOR) and k/2 aggregation switches plus (k/2)²
//! cores, for k³/4 hosts. The `kind` field selects the wiring; every
//! accessor that depends on it ([`tor_uplinks`](Topology::tor_uplinks),
//! [`tor_uplink_peer`](Topology::tor_uplink_peer),
//! [`path_class`](Topology::path_class)) is kind-aware so the network
//! layer, fault resolution and the unloaded-latency model share one
//! source of truth.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a host (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// An end host.
    Host(HostId),
    /// Top-of-rack switch for rack `r`.
    Tor(u32),
    /// Spine (aggregation) switch `s`.
    Spine(u32),
}

/// How the switch layers above the TORs are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// Two tiers: every TOR has one uplink to every spine switch.
    LeafSpine,
    /// Three tiers: a k-ary fat tree. Racks are edge switches grouped
    /// into pods of k/2; the `spines` field counts aggregation switches
    /// (ids `0..k²/2`, k/2 per pod) followed by core switches
    /// (ids `k²/2..k²/2 + k²/4`).
    FatTree {
        /// Fat-tree arity (even, ≥ 4): k pods, k/2 hosts per edge.
        k: u32,
    },
}

/// How far apart two hosts sit in the fabric — the key for the
/// unloaded-latency model (and the slowdown denominator cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// Same rack: host → TOR → host.
    SameRack,
    /// Different rack, same pod (fat tree only): two uplink-speed hops
    /// through one aggregation switch.
    IntraPod,
    /// Cross-pod (fat tree: through a core; leaf–spine: through a
    /// spine — the leaf–spine fabric has a single "pod").
    InterPod,
}

/// Why a validated topology constructor rejected its arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// `multi_tor`: no rack size of 10, 16 or 8 divides the host count
    /// into at least two racks.
    AwkwardHostCount(u32),
    /// `fat_tree`: the arity must be even and at least 4.
    BadFatTreeArity(u32),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::AwkwardHostCount(hosts) => write!(
                f,
                "multi_tor: pick a host count >= 16 divisible by 10, 16 or 8, got {hosts}"
            ),
            TopologyError::BadFatTreeArity(k) => {
                write!(f, "fat_tree: arity must be even and >= 4, got {k}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A fabric description: leaf–spine or three-tier fat tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of racks (each with one TOR switch).
    pub racks: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Number of switches above the TOR tier (0 for a single-rack
    /// cluster). Leaf–spine: the spine count. Fat tree: aggregation +
    /// core switches (see [`FabricKind::FatTree`] for the id layout).
    pub spines: u32,
    /// Wiring of the tiers above the TORs.
    pub kind: FabricKind,
    /// Host↔TOR link speed in bits/second.
    pub host_link_bps: u64,
    /// TOR↔spine link speed in bits/second.
    pub uplink_bps: u64,
    /// Per-switch internal (processing) delay.
    pub switch_delay: SimDuration,
    /// Host software turnaround: delay from a packet fully arriving at a
    /// host NIC until the transport can react to it.
    pub host_sw_delay: SimDuration,
    /// Per-link propagation delay (0 in the paper's simulations).
    pub prop_delay: SimDuration,
}

impl Topology {
    /// The Figure 11 fabric: 9 racks x 16 hosts, 4 spines, 10/40 Gbps,
    /// 250 ns switch delay, 1.5 µs host software delay, zero propagation.
    pub fn paper_fabric() -> Self {
        Topology {
            racks: 9,
            hosts_per_rack: 16,
            spines: 4,
            kind: FabricKind::LeafSpine,
            host_link_bps: 10_000_000_000,
            uplink_bps: 40_000_000_000,
            switch_delay: SimDuration::from_nanos(250),
            host_sw_delay: SimDuration::from_nanos(1_500),
            prop_delay: SimDuration::ZERO,
        }
    }

    /// A scaled-down leaf–spine fabric with the paper's link speeds and
    /// delays, for faster experiments. Uplink capacity is kept
    /// non-oversubscribed like the paper's fabric.
    pub fn scaled_fabric(racks: u32, hosts_per_rack: u32, spines: u32) -> Self {
        Topology { racks, hosts_per_rack, spines, ..Topology::paper_fabric() }
    }

    /// A multi-TOR fabric for `hosts` hosts (40, 100, 160, ...), with the
    /// paper's link speeds and delays. Hosts are grouped into racks of 10
    /// (or 16/8 when 10 does not divide `hosts`), and the spine layer is
    /// sized so the fabric is not oversubscribed — the shape the scale
    /// experiments and the `perf-smoke` CI gate run on.
    ///
    /// # Panics
    /// If no rack size of 10, 16 or 8 divides `hosts` into at least two
    /// racks (so `hosts` must be ≥ 16 and divisible by one of them;
    /// counts like 8 or 10 make a single rack — use
    /// [`single_switch`](Self::single_switch) for those). CLI paths that
    /// want a one-line error instead use
    /// [`try_multi_tor`](Self::try_multi_tor).
    #[track_caller]
    pub fn multi_tor(hosts: u32) -> Self {
        Topology::try_multi_tor(hosts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`multi_tor`](Self::multi_tor) that reports awkward host counts
    /// as a [`TopologyError`] instead of panicking.
    pub fn try_multi_tor(hosts: u32) -> Result<Self, TopologyError> {
        let hosts_per_rack = [10u32, 16, 8]
            .into_iter()
            .find(|hpr| hosts % hpr == 0 && hosts / hpr >= 2)
            .ok_or(TopologyError::AwkwardHostCount(hosts))?;
        let racks = hosts / hosts_per_rack;
        let base = Topology::paper_fabric();
        // Enough spine bandwidth that a rack's full uplink demand fits:
        // hosts_per_rack * 10G <= spines * 40G.
        let spines = (hosts_per_rack as u64 * base.host_link_bps).div_ceil(base.uplink_bps) as u32;
        Ok(Topology { racks, hosts_per_rack, spines, ..base })
    }

    /// A k-ary three-tier fat tree with the paper's link speeds and
    /// delays: k pods, each with k/2 edge (TOR) switches of k/2 hosts
    /// and k/2 aggregation switches, plus (k/2)² core switches — k³/4
    /// hosts total (k = 16 gives 1024 hosts). Every TOR has one uplink
    /// per pod-local aggregation switch; aggregation switch `i` of a pod
    /// uplinks to cores `i·k/2 .. (i+1)·k/2`. Cross-rack packets are
    /// sprayed deterministically across uplinks at every tier (see
    /// `Network`).
    ///
    /// # Panics
    /// If `k` is odd or below 4 ([`try_fat_tree`](Self::try_fat_tree)
    /// returns the error instead).
    #[track_caller]
    pub fn fat_tree(k: u32) -> Self {
        Topology::try_fat_tree(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`fat_tree`](Self::fat_tree) with a `Result` for CLI paths.
    pub fn try_fat_tree(k: u32) -> Result<Self, TopologyError> {
        if k < 4 || k % 2 != 0 {
            return Err(TopologyError::BadFatTreeArity(k));
        }
        let half = k / 2;
        Ok(Topology {
            racks: k * half,                // k pods * k/2 edge switches
            hosts_per_rack: half,           // k/2 hosts per edge switch
            spines: k * half + half * half, // aggs then cores
            kind: FabricKind::FatTree { k },
            ..Topology::paper_fabric()
        })
    }

    /// The implementation cluster of §5.1: `n` hosts on a single 10 Gbps
    /// switch.
    pub fn single_switch(n: u32) -> Self {
        Topology {
            racks: 1,
            hosts_per_rack: n,
            spines: 0,
            kind: FabricKind::LeafSpine,
            host_link_bps: 10_000_000_000,
            uplink_bps: 40_000_000_000,
            switch_delay: SimDuration::from_nanos(250),
            host_sw_delay: SimDuration::from_nanos(1_500),
            prop_delay: SimDuration::ZERO,
        }
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.racks * self.hosts_per_rack
    }

    /// Rack index of a host.
    pub fn rack_of(&self, h: HostId) -> u32 {
        h.0 / self.hosts_per_rack
    }

    /// Index of `h` within its rack (the TOR's downlink port number).
    pub fn index_in_rack(&self, h: HostId) -> u32 {
        h.0 % self.hosts_per_rack
    }

    /// Number of uplink ports on a TOR switch: one per spine in a
    /// leaf–spine fabric, one per pod-local aggregation switch (k/2) in
    /// a fat tree.
    pub fn tor_uplinks(&self) -> u32 {
        match self.kind {
            FabricKind::LeafSpine => self.spines,
            FabricKind::FatTree { k } => k / 2,
        }
    }

    /// Number of egress ports on a TOR switch (down + up).
    pub fn tor_ports(&self) -> u32 {
        self.hosts_per_rack + self.tor_uplinks()
    }

    /// Aggregation switches in a fat tree (0 in a leaf–spine fabric,
    /// where every upper-tier switch is a "spine").
    pub fn num_aggs(&self) -> u32 {
        match self.kind {
            FabricKind::LeafSpine => 0,
            FabricKind::FatTree { k } => k * (k / 2),
        }
    }

    /// Core switches in a fat tree (0 in a leaf–spine fabric).
    pub fn num_cores(&self) -> u32 {
        match self.kind {
            FabricKind::LeafSpine => 0,
            FabricKind::FatTree { k } => (k / 2) * (k / 2),
        }
    }

    /// The pod a rack belongs to (0 in a leaf–spine fabric, which is a
    /// single pod).
    pub fn pod_of_rack(&self, rack: u32) -> u32 {
        match self.kind {
            FabricKind::LeafSpine => 0,
            FabricKind::FatTree { k } => rack / (k / 2),
        }
    }

    /// The upper-tier switch and its down-port at the far end of TOR
    /// `rack`'s uplink `j` (`j < tor_uplinks()`): `(spine_id,
    /// spine_down_port)`. Leaf–spine: spine `j`, down port `rack`. Fat
    /// tree: the pod's `j`-th aggregation switch, whose down port is the
    /// rack's index within the pod.
    pub fn tor_uplink_peer(&self, rack: u32, j: u32) -> (u32, u32) {
        match self.kind {
            FabricKind::LeafSpine => (j, rack),
            FabricKind::FatTree { k } => {
                let half = k / 2;
                (self.pod_of_rack(rack) * half + j, rack % half)
            }
        }
    }

    /// How far apart two hosts sit (the unloaded-latency path class).
    pub fn path_class(&self, a: HostId, b: HostId) -> PathClass {
        let (ra, rb) = (self.rack_of(a), self.rack_of(b));
        if ra == rb {
            PathClass::SameRack
        } else if let FabricKind::FatTree { .. } = self.kind {
            if self.pod_of_rack(ra) == self.pod_of_rack(rb) {
                PathClass::IntraPod
            } else {
                PathClass::InterPod
            }
        } else {
            PathClass::InterPod
        }
    }

    /// The minimum delay for a transmitted packet to *arrive* at the next
    /// switch: propagation plus the switch's internal delay (250 ns on
    /// the paper fabric). This is the smallest latency by which any event
    /// in one rack group can influence another group, which makes it both
    /// the conservative-window lookahead of the parallel dispatcher and
    /// the natural calendar bucket width of the event engine.
    pub fn min_forward_delay(&self) -> SimDuration {
        self.prop_delay + self.switch_delay
    }

    /// All hosts in the fabric.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.num_hosts()).map(HostId)
    }

    /// The minimum one-way network latency for a message of `len`
    /// application bytes between hosts in *different* racks on an idle
    /// network, per the store-and-forward model: full wire serialization on
    /// the sender's host link plus per-hop forwarding of the final packet,
    /// plus the receiver's software delay. `per_packet_payload` and
    /// `per_packet_overhead` describe the transport's segmentation.
    ///
    /// Used as the slowdown denominator (slowdown = observed / this).
    pub fn unloaded_one_way(
        &self,
        len: u64,
        per_packet_payload: u64,
        per_packet_overhead: u64,
    ) -> SimDuration {
        self.unloaded_one_way_path(len, per_packet_payload, per_packet_overhead, self.spines > 0)
    }

    /// [`unloaded_one_way`](Self::unloaded_one_way) with explicit path
    /// selection: `cross_rack = false` computes the two-hop, single-switch
    /// path for hosts in the same rack; `true` assumes the longest path
    /// in the fabric (cross-pod on a fat tree). Callers that know the
    /// exact path use [`unloaded_one_way_class`](Self::unloaded_one_way_class).
    pub fn unloaded_one_way_path(
        &self,
        len: u64,
        per_packet_payload: u64,
        per_packet_overhead: u64,
        cross_rack: bool,
    ) -> SimDuration {
        let class = if cross_rack { PathClass::InterPod } else { PathClass::SameRack };
        self.unloaded_one_way_class(len, per_packet_payload, per_packet_overhead, class)
    }

    /// The number of uplink-speed hops, switch traversals and propagation
    /// hops of the class's store-and-forward path (host links excluded:
    /// every path starts and ends with one).
    fn path_hops(&self, class: PathClass) -> (u64, u64, u64) {
        match (class, self.kind) {
            // Host -> TOR -> host.
            (PathClass::SameRack, _) => (0, 1, 2),
            // Host -> TOR -> spine/agg -> TOR -> host. A leaf–spine
            // fabric is a single pod, so its cross-rack path is the
            // same shape regardless of the class label.
            (PathClass::IntraPod, _) | (PathClass::InterPod, FabricKind::LeafSpine) => (2, 3, 4),
            // Host -> TOR -> agg -> core -> agg -> TOR -> host.
            (PathClass::InterPod, FabricKind::FatTree { .. }) => (4, 5, 6),
        }
    }

    /// The minimum one-way latency for `len` application bytes between
    /// hosts separated by `class`, per the store-and-forward model. All
    /// bytes serialize onto the host uplink back-to-back; the *last*
    /// packet then store-and-forwards across the remaining hops.
    pub fn unloaded_one_way_class(
        &self,
        len: u64,
        per_packet_payload: u64,
        per_packet_overhead: u64,
        class: PathClass,
    ) -> SimDuration {
        let full_pkts = len / per_packet_payload;
        let tail = len % per_packet_payload;
        let npkts = full_pkts + (tail > 0) as u64;
        let npkts = npkts.max(1);
        let last_pkt_bytes = if tail > 0 {
            tail + per_packet_overhead
        } else {
            per_packet_payload + per_packet_overhead
        };
        let wire_total = len + npkts * per_packet_overhead;

        let (uplink_hops, switch_hops, prop_hops) = self.path_hops(class);
        let first_link = SimDuration::serialization(wire_total, self.host_link_bps);
        let mut rest = SimDuration::ZERO;
        rest += self.switch_delay * switch_hops;
        rest += SimDuration::serialization(last_pkt_bytes, self.uplink_bps) * uplink_hops;
        rest += SimDuration::serialization(last_pkt_bytes, self.host_link_bps);
        first_link + rest + self.prop_delay * prop_hops + self.host_sw_delay
    }

    /// Round-trip time for a minimal control packet exchange: a small
    /// packet (e.g. a grant of `ctrl_bytes`) travelling one way, the peer's
    /// software turnaround, and a full-size data packet (`data_bytes` on the
    /// wire) travelling back. This is the quantity the paper uses to define
    /// `RTTbytes` (§2.2: "about 9.7 Kbytes" on the simulated fabric).
    pub fn control_data_rtt(&self, ctrl_bytes: u64, data_bytes: u64) -> SimDuration {
        // The pacing RTT is the fabric's *longest* unloaded path: cross-pod
        // on a fat tree, cross-rack on a leaf–spine.
        let class = if self.spines > 0 { PathClass::InterPod } else { PathClass::SameRack };
        let (uplink_hops, switch_hops, prop_hops) = self.path_hops(class);
        let one_way = |bytes: u64| -> SimDuration {
            let mut d = SimDuration::ZERO;
            d += SimDuration::serialization(bytes, self.host_link_bps) * 2;
            d += SimDuration::serialization(bytes, self.uplink_bps) * uplink_hops;
            d += self.switch_delay * switch_hops;
            d += self.prop_delay * prop_hops;
            d
        };
        one_way(ctrl_bytes) + self.host_sw_delay + one_way(data_bytes) + self.host_sw_delay
    }

    /// The bandwidth-delay product of the fabric in bytes, rounded up to
    /// whole bytes: `RTTbytes` in the paper's terminology.
    pub fn rtt_bytes(&self, ctrl_bytes: u64, data_bytes: u64) -> u64 {
        let rtt = self.control_data_rtt(ctrl_bytes, data_bytes);
        let bits = rtt.as_nanos() as u128 * self.host_link_bps as u128 / 1_000_000_000;
        (bits / 8) as u64
    }
}

/// Sanity checks used by `Network` at construction.
pub(crate) fn validate(t: &Topology) {
    assert!(t.racks >= 1, "need at least one rack");
    assert!(t.hosts_per_rack >= 2, "need at least two hosts");
    assert!(t.racks == 1 || t.spines >= 1, "multi-rack fabrics need spines");
    assert!(t.host_link_bps > 0 && t.uplink_bps > 0);
}

/// Convenience conversion so tests can write `HostId::from(3)`.
impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// A timestamp helper: `SimTime::ZERO` re-export used around the crate.
pub(crate) const T0: SimTime = SimTime::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fabric_shape() {
        let t = Topology::paper_fabric();
        assert_eq!(t.num_hosts(), 144);
        assert_eq!(t.tor_ports(), 20);
        assert_eq!(t.rack_of(HostId(0)), 0);
        assert_eq!(t.rack_of(HostId(15)), 0);
        assert_eq!(t.rack_of(HostId(16)), 1);
        assert_eq!(t.index_in_rack(HostId(17)), 1);
        assert_eq!(t.rack_of(HostId(143)), 8);
    }

    #[test]
    fn multi_tor_shapes() {
        let t = Topology::multi_tor(40);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (4, 10, 40));
        assert!(t.spines >= 3, "oversubscribed: {} spines", t.spines);
        let t = Topology::multi_tor(100);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (10, 10, 100));
        let t = Topology::multi_tor(160);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (16, 10, 160));
        let t = Topology::multi_tor(16);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (2, 8, 16));
        // Spine bandwidth covers a full rack's uplink demand.
        for hosts in [40, 100, 160] {
            let t = Topology::multi_tor(hosts);
            assert!(
                t.spines as u64 * t.uplink_bps >= t.hosts_per_rack as u64 * t.host_link_bps,
                "{hosts}-host fabric oversubscribed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "multi_tor")]
    fn multi_tor_rejects_awkward_host_counts() {
        let _ = Topology::multi_tor(17);
    }

    #[test]
    fn rtt_bytes_close_to_paper() {
        // The paper reports ~7.8us control->data RTT and ~9.7 KB RTTbytes
        // on the Figure 11 fabric with full-size (1538B wire) data packets.
        let t = Topology::paper_fabric();
        let rtt = t.control_data_rtt(64, 1538);
        let us = rtt.as_micros_f64();
        assert!((6.0..9.5).contains(&us), "rtt {us}us out of expected band");
        let rb = t.rtt_bytes(64, 1538);
        assert!((7_500..12_000).contains(&rb), "rtt_bytes {rb} out of expected band");
    }

    #[test]
    fn unloaded_single_packet_latency_close_to_paper() {
        // Paper: minimum one-way time for a small message is 2.3us on the
        // simulated fabric.
        let t = Topology::paper_fabric();
        let d = t.unloaded_one_way(100, 1400, 60);
        let us = d.as_micros_f64();
        assert!((1.9..2.9).contains(&us), "unloaded {us}us out of expected band");
    }

    #[test]
    fn unloaded_latency_monotone_in_size() {
        let t = Topology::paper_fabric();
        let mut prev = SimDuration::ZERO;
        for len in [1u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let d = t.unloaded_one_way(len, 1400, 60);
            assert!(d >= prev, "latency not monotone at {len}");
            prev = d;
        }
    }

    #[test]
    fn unloaded_large_message_dominated_by_line_rate() {
        let t = Topology::paper_fabric();
        let len = 10_000_000u64;
        let d = t.unloaded_one_way(len, 1400, 60);
        // 10 MB at 10 Gbps is 8ms of pure serialization; overheads add a
        // few percent but the total must be within 10%.
        let pure = 8.0e-3;
        assert!((d.as_secs_f64() - pure).abs() / pure < 0.10);
    }

    #[test]
    fn single_switch_unloaded_is_shorter() {
        let big = Topology::paper_fabric();
        let small = Topology::single_switch(16);
        assert!(small.unloaded_one_way(100, 1400, 60) < big.unloaded_one_way(100, 1400, 60));
    }

    #[test]
    fn fat_tree_shapes() {
        let t = Topology::fat_tree(4);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (8, 2, 16));
        assert_eq!((t.num_aggs(), t.num_cores(), t.spines), (8, 4, 12));
        assert_eq!(t.tor_uplinks(), 2);
        assert_eq!(t.tor_ports(), 4);

        let t = Topology::fat_tree(16);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (128, 8, 1024));
        assert_eq!((t.num_aggs(), t.num_cores(), t.spines), (128, 64, 192));
        assert_eq!(t.tor_uplinks(), 8);
    }

    #[test]
    fn fat_tree_uplink_peers_and_pods() {
        let t = Topology::fat_tree(4);
        // Rack 0 and 1 form pod 0; rack 2 and 3 form pod 1; ...
        assert_eq!(t.pod_of_rack(0), 0);
        assert_eq!(t.pod_of_rack(1), 0);
        assert_eq!(t.pod_of_rack(2), 1);
        assert_eq!(t.pod_of_rack(7), 3);
        // Pod-local aggregation switches, down port = rack index in pod.
        assert_eq!(t.tor_uplink_peer(0, 0), (0, 0));
        assert_eq!(t.tor_uplink_peer(0, 1), (1, 0));
        assert_eq!(t.tor_uplink_peer(1, 0), (0, 1));
        assert_eq!(t.tor_uplink_peer(3, 1), (3, 1));
        assert_eq!(t.tor_uplink_peer(7, 1), (7, 1));
        // Leaf–spine wiring unchanged: spine j, down port = rack.
        let ls = Topology::multi_tor(40);
        assert_eq!(ls.tor_uplink_peer(2, 1), (1, 2));
        assert_eq!(ls.pod_of_rack(3), 0);
    }

    #[test]
    fn fat_tree_path_classes() {
        let t = Topology::fat_tree(4); // hpr=2, racks of pods {0,1},{2,3},...
        assert_eq!(t.path_class(HostId(0), HostId(1)), PathClass::SameRack);
        assert_eq!(t.path_class(HostId(0), HostId(2)), PathClass::IntraPod);
        assert_eq!(t.path_class(HostId(0), HostId(4)), PathClass::InterPod);
        let ls = Topology::paper_fabric();
        assert_eq!(ls.path_class(HostId(0), HostId(1)), PathClass::SameRack);
        assert_eq!(ls.path_class(HostId(0), HostId(16)), PathClass::InterPod);
    }

    #[test]
    fn fat_tree_unloaded_ordering() {
        let t = Topology::fat_tree(16);
        for len in [100u64, 10_000, 1_000_000] {
            let same = t.unloaded_one_way_class(len, 1400, 60, PathClass::SameRack);
            let intra = t.unloaded_one_way_class(len, 1400, 60, PathClass::IntraPod);
            let inter = t.unloaded_one_way_class(len, 1400, 60, PathClass::InterPod);
            assert!(same < intra, "same-rack not shortest at {len}");
            assert!(intra < inter, "intra-pod not shorter than cross-pod at {len}");
        }
        // On a leaf–spine fabric InterPod and IntraPod are the same path,
        // and unloaded_one_way keeps its historical (cross-rack) value.
        let ls = Topology::paper_fabric();
        assert_eq!(
            ls.unloaded_one_way_class(100, 1400, 60, PathClass::IntraPod),
            ls.unloaded_one_way_class(100, 1400, 60, PathClass::InterPod)
        );
        assert_eq!(
            ls.unloaded_one_way(100, 1400, 60),
            ls.unloaded_one_way_path(100, 1400, 60, true)
        );
    }

    #[test]
    fn try_constructors_report_errors() {
        assert_eq!(Topology::try_multi_tor(17), Err(TopologyError::AwkwardHostCount(17)));
        assert!(Topology::try_multi_tor(17).unwrap_err().to_string().contains("multi_tor"));
        assert_eq!(Topology::try_fat_tree(3), Err(TopologyError::BadFatTreeArity(3)));
        assert_eq!(Topology::try_fat_tree(5), Err(TopologyError::BadFatTreeArity(5)));
        assert!(Topology::try_fat_tree(2).unwrap_err().to_string().contains("fat_tree"));
        assert!(Topology::try_fat_tree(4).is_ok());
        assert!(Topology::try_multi_tor(40).is_ok());
    }

    #[test]
    #[should_panic(expected = "fat_tree")]
    fn fat_tree_rejects_odd_arity() {
        let _ = Topology::fat_tree(5);
    }

    #[test]
    fn fat_tree_rtt_larger_than_leaf_spine() {
        let ft = Topology::fat_tree(16);
        let ls = Topology::paper_fabric();
        assert!(ft.control_data_rtt(64, 1538) > ls.control_data_rtt(64, 1538));
        assert!(ft.rtt_bytes(64, 1538) > ls.rtt_bytes(64, 1538));
    }
}
