//! Network topologies.
//!
//! The paper evaluates Homa on two fabrics:
//!
//! * **Implementation cluster** (Figures 8–10): 16 hosts on one 10 Gbps
//!   switch — [`Topology::single_switch`].
//! * **Simulation fabric** (Figure 11, used for Figures 12–21 and Table 1):
//!   144 hosts in 9 racks of 16, a TOR per rack, 4 spine (aggregation)
//!   switches, 10 Gbps host links and 40 Gbps TOR↔spine links, 250 ns of
//!   switch delay, zero propagation delay, and 1.5 µs of host software
//!   turnaround — [`Topology::paper_fabric`].
//!
//! Both are instances of a two-level leaf–spine parameterized here. Packets
//! travelling between racks are sprayed uniformly across spine uplinks
//! (per-packet load balancing, §2.2 of the paper).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a host (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// An end host.
    Host(HostId),
    /// Top-of-rack switch for rack `r`.
    Tor(u32),
    /// Spine (aggregation) switch `s`.
    Spine(u32),
}

/// A leaf–spine fabric description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of racks (each with one TOR switch).
    pub racks: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
    /// Number of spine switches (0 for a single-rack cluster).
    pub spines: u32,
    /// Host↔TOR link speed in bits/second.
    pub host_link_bps: u64,
    /// TOR↔spine link speed in bits/second.
    pub uplink_bps: u64,
    /// Per-switch internal (processing) delay.
    pub switch_delay: SimDuration,
    /// Host software turnaround: delay from a packet fully arriving at a
    /// host NIC until the transport can react to it.
    pub host_sw_delay: SimDuration,
    /// Per-link propagation delay (0 in the paper's simulations).
    pub prop_delay: SimDuration,
}

impl Topology {
    /// The Figure 11 fabric: 9 racks x 16 hosts, 4 spines, 10/40 Gbps,
    /// 250 ns switch delay, 1.5 µs host software delay, zero propagation.
    pub fn paper_fabric() -> Self {
        Topology {
            racks: 9,
            hosts_per_rack: 16,
            spines: 4,
            host_link_bps: 10_000_000_000,
            uplink_bps: 40_000_000_000,
            switch_delay: SimDuration::from_nanos(250),
            host_sw_delay: SimDuration::from_nanos(1_500),
            prop_delay: SimDuration::ZERO,
        }
    }

    /// A scaled-down leaf–spine fabric with the paper's link speeds and
    /// delays, for faster experiments. Uplink capacity is kept
    /// non-oversubscribed like the paper's fabric.
    pub fn scaled_fabric(racks: u32, hosts_per_rack: u32, spines: u32) -> Self {
        Topology { racks, hosts_per_rack, spines, ..Topology::paper_fabric() }
    }

    /// A multi-TOR fabric for `hosts` hosts (40, 100, 160, ...), with the
    /// paper's link speeds and delays. Hosts are grouped into racks of 10
    /// (or 16/8 when 10 does not divide `hosts`), and the spine layer is
    /// sized so the fabric is not oversubscribed — the shape the scale
    /// experiments and the `perf-smoke` CI gate run on.
    ///
    /// # Panics
    /// If no rack size of 10, 16 or 8 divides `hosts` into at least two
    /// racks (so `hosts` must be ≥ 16 and divisible by one of them;
    /// counts like 8 or 10 make a single rack — use
    /// [`single_switch`](Self::single_switch) for those).
    pub fn multi_tor(hosts: u32) -> Self {
        let hosts_per_rack = [10u32, 16, 8]
            .into_iter()
            .find(|hpr| hosts % hpr == 0 && hosts / hpr >= 2)
            .unwrap_or_else(|| {
                panic!("multi_tor: pick a host count >= 16 divisible by 10, 16 or 8, got {hosts}")
            });
        let racks = hosts / hosts_per_rack;
        let base = Topology::paper_fabric();
        // Enough spine bandwidth that a rack's full uplink demand fits:
        // hosts_per_rack * 10G <= spines * 40G.
        let spines = (hosts_per_rack as u64 * base.host_link_bps).div_ceil(base.uplink_bps) as u32;
        Topology { racks, hosts_per_rack, spines, ..base }
    }

    /// The implementation cluster of §5.1: `n` hosts on a single 10 Gbps
    /// switch.
    pub fn single_switch(n: u32) -> Self {
        Topology {
            racks: 1,
            hosts_per_rack: n,
            spines: 0,
            host_link_bps: 10_000_000_000,
            uplink_bps: 40_000_000_000,
            switch_delay: SimDuration::from_nanos(250),
            host_sw_delay: SimDuration::from_nanos(1_500),
            prop_delay: SimDuration::ZERO,
        }
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.racks * self.hosts_per_rack
    }

    /// Rack index of a host.
    pub fn rack_of(&self, h: HostId) -> u32 {
        h.0 / self.hosts_per_rack
    }

    /// Index of `h` within its rack (the TOR's downlink port number).
    pub fn index_in_rack(&self, h: HostId) -> u32 {
        h.0 % self.hosts_per_rack
    }

    /// Number of egress ports on a TOR switch (down + up).
    pub fn tor_ports(&self) -> u32 {
        self.hosts_per_rack + self.spines
    }

    /// The minimum delay for a transmitted packet to *arrive* at the next
    /// switch: propagation plus the switch's internal delay (250 ns on
    /// the paper fabric). This is the smallest latency by which any event
    /// in one rack group can influence another group, which makes it both
    /// the conservative-window lookahead of the parallel dispatcher and
    /// the natural calendar bucket width of the event engine.
    pub fn min_forward_delay(&self) -> SimDuration {
        self.prop_delay + self.switch_delay
    }

    /// All hosts in the fabric.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.num_hosts()).map(HostId)
    }

    /// The minimum one-way network latency for a message of `len`
    /// application bytes between hosts in *different* racks on an idle
    /// network, per the store-and-forward model: full wire serialization on
    /// the sender's host link plus per-hop forwarding of the final packet,
    /// plus the receiver's software delay. `per_packet_payload` and
    /// `per_packet_overhead` describe the transport's segmentation.
    ///
    /// Used as the slowdown denominator (slowdown = observed / this).
    pub fn unloaded_one_way(
        &self,
        len: u64,
        per_packet_payload: u64,
        per_packet_overhead: u64,
    ) -> SimDuration {
        self.unloaded_one_way_path(len, per_packet_payload, per_packet_overhead, self.spines > 0)
    }

    /// [`unloaded_one_way`](Self::unloaded_one_way) with explicit path
    /// selection: `cross_rack = false` computes the two-hop, single-switch
    /// path for hosts in the same rack.
    pub fn unloaded_one_way_path(
        &self,
        len: u64,
        per_packet_payload: u64,
        per_packet_overhead: u64,
        cross_rack: bool,
    ) -> SimDuration {
        let full_pkts = len / per_packet_payload;
        let tail = len % per_packet_payload;
        let npkts = full_pkts + (tail > 0) as u64;
        let npkts = npkts.max(1);
        let last_pkt_bytes = if tail > 0 {
            tail + per_packet_overhead
        } else {
            per_packet_payload + per_packet_overhead
        };
        let wire_total = len + npkts * per_packet_overhead;

        // All bytes serialize onto the host uplink back-to-back; the *last*
        // packet then store-and-forwards across the remaining hops.
        let first_link = SimDuration::serialization(wire_total, self.host_link_bps);
        let mut rest = SimDuration::ZERO;
        if cross_rack {
            // TOR -> spine -> TOR -> host: two uplink-speed hops + one
            // host-speed hop + three switch delays.
            rest += self.switch_delay * 3;
            rest += SimDuration::serialization(last_pkt_bytes, self.uplink_bps) * 2;
            rest += SimDuration::serialization(last_pkt_bytes, self.host_link_bps);
        } else {
            // Single switch: one more host-speed hop + one switch delay.
            rest += self.switch_delay;
            rest += SimDuration::serialization(last_pkt_bytes, self.host_link_bps);
        }
        let prop_hops = if cross_rack { 4 } else { 2 };
        first_link + rest + self.prop_delay * prop_hops + self.host_sw_delay
    }

    /// Round-trip time for a minimal control packet exchange: a small
    /// packet (e.g. a grant of `ctrl_bytes`) travelling one way, the peer's
    /// software turnaround, and a full-size data packet (`data_bytes` on the
    /// wire) travelling back. This is the quantity the paper uses to define
    /// `RTTbytes` (§2.2: "about 9.7 Kbytes" on the simulated fabric).
    pub fn control_data_rtt(&self, ctrl_bytes: u64, data_bytes: u64) -> SimDuration {
        let one_way = |bytes: u64| -> SimDuration {
            let mut d = SimDuration::ZERO;
            if self.spines > 0 {
                d += SimDuration::serialization(bytes, self.host_link_bps) * 2;
                d += SimDuration::serialization(bytes, self.uplink_bps) * 2;
                d += self.switch_delay * 3;
                d += self.prop_delay * 4;
            } else {
                d += SimDuration::serialization(bytes, self.host_link_bps) * 2;
                d += self.switch_delay;
                d += self.prop_delay * 2;
            }
            d
        };
        one_way(ctrl_bytes) + self.host_sw_delay + one_way(data_bytes) + self.host_sw_delay
    }

    /// The bandwidth-delay product of the fabric in bytes, rounded up to
    /// whole bytes: `RTTbytes` in the paper's terminology.
    pub fn rtt_bytes(&self, ctrl_bytes: u64, data_bytes: u64) -> u64 {
        let rtt = self.control_data_rtt(ctrl_bytes, data_bytes);
        let bits = rtt.as_nanos() as u128 * self.host_link_bps as u128 / 1_000_000_000;
        (bits / 8) as u64
    }
}

/// Sanity checks used by `Network` at construction.
pub(crate) fn validate(t: &Topology) {
    assert!(t.racks >= 1, "need at least one rack");
    assert!(t.hosts_per_rack >= 2, "need at least two hosts");
    assert!(t.racks == 1 || t.spines >= 1, "multi-rack fabrics need spines");
    assert!(t.host_link_bps > 0 && t.uplink_bps > 0);
}

/// Convenience conversion so tests can write `HostId::from(3)`.
impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// A timestamp helper: `SimTime::ZERO` re-export used around the crate.
pub(crate) const T0: SimTime = SimTime::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fabric_shape() {
        let t = Topology::paper_fabric();
        assert_eq!(t.num_hosts(), 144);
        assert_eq!(t.tor_ports(), 20);
        assert_eq!(t.rack_of(HostId(0)), 0);
        assert_eq!(t.rack_of(HostId(15)), 0);
        assert_eq!(t.rack_of(HostId(16)), 1);
        assert_eq!(t.index_in_rack(HostId(17)), 1);
        assert_eq!(t.rack_of(HostId(143)), 8);
    }

    #[test]
    fn multi_tor_shapes() {
        let t = Topology::multi_tor(40);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (4, 10, 40));
        assert!(t.spines >= 3, "oversubscribed: {} spines", t.spines);
        let t = Topology::multi_tor(100);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (10, 10, 100));
        let t = Topology::multi_tor(160);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (16, 10, 160));
        let t = Topology::multi_tor(16);
        assert_eq!((t.racks, t.hosts_per_rack, t.num_hosts()), (2, 8, 16));
        // Spine bandwidth covers a full rack's uplink demand.
        for hosts in [40, 100, 160] {
            let t = Topology::multi_tor(hosts);
            assert!(
                t.spines as u64 * t.uplink_bps >= t.hosts_per_rack as u64 * t.host_link_bps,
                "{hosts}-host fabric oversubscribed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "multi_tor")]
    fn multi_tor_rejects_awkward_host_counts() {
        let _ = Topology::multi_tor(17);
    }

    #[test]
    fn rtt_bytes_close_to_paper() {
        // The paper reports ~7.8us control->data RTT and ~9.7 KB RTTbytes
        // on the Figure 11 fabric with full-size (1538B wire) data packets.
        let t = Topology::paper_fabric();
        let rtt = t.control_data_rtt(64, 1538);
        let us = rtt.as_micros_f64();
        assert!((6.0..9.5).contains(&us), "rtt {us}us out of expected band");
        let rb = t.rtt_bytes(64, 1538);
        assert!((7_500..12_000).contains(&rb), "rtt_bytes {rb} out of expected band");
    }

    #[test]
    fn unloaded_single_packet_latency_close_to_paper() {
        // Paper: minimum one-way time for a small message is 2.3us on the
        // simulated fabric.
        let t = Topology::paper_fabric();
        let d = t.unloaded_one_way(100, 1400, 60);
        let us = d.as_micros_f64();
        assert!((1.9..2.9).contains(&us), "unloaded {us}us out of expected band");
    }

    #[test]
    fn unloaded_latency_monotone_in_size() {
        let t = Topology::paper_fabric();
        let mut prev = SimDuration::ZERO;
        for len in [1u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let d = t.unloaded_one_way(len, 1400, 60);
            assert!(d >= prev, "latency not monotone at {len}");
            prev = d;
        }
    }

    #[test]
    fn unloaded_large_message_dominated_by_line_rate() {
        let t = Topology::paper_fabric();
        let len = 10_000_000u64;
        let d = t.unloaded_one_way(len, 1400, 60);
        // 10 MB at 10 Gbps is 8ms of pure serialization; overheads add a
        // few percent but the total must be within 10%.
        let pure = 8.0e-3;
        assert!((d.as_secs_f64() - pure).abs() / pure < 0.10);
    }

    #[test]
    fn single_switch_unloaded_is_shorter() {
        let big = Topology::paper_fabric();
        let small = Topology::single_switch(16);
        assert!(small.unloaded_one_way(100, 1400, 60) < big.unloaded_one_way(100, 1400, 60));
    }
}
