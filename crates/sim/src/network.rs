//! The simulation engine: hosts, switches, links, and the event loop.
//!
//! [`Network`] owns one transport instance per host plus the fabric state
//! (ports, queues, in-flight transmissions) and advances everything through
//! a single deterministic event queue.
//!
//! Life of a packet:
//!
//! 1. A transport's `next_packet` hands the packet to its host NIC when the
//!    uplink goes idle (pull model, so sender-side SRPT is exact).
//! 2. Serialization occupies the link for `wire_bytes * 8 / rate`.
//! 3. The TOR receives it after the switch's internal delay
//!    (store-and-forward), routes it — directly to a rack-local host port,
//!    or sprayed across a random spine uplink — and offers it to the egress
//!    port's [`PortQueue`].
//! 4. Ports drain their queues as fast as the link allows; each hop
//!    accumulates delay attribution into the packet.
//! 5. When the packet fully arrives at the destination host, the host
//!    software delay elapses and the receiving transport's `on_packet`
//!    runs.
//!
//! ## State partitioning and parallel dispatch
//!
//! Fabric state is partitioned into *groups*: one `RackState` per rack
//! (the rack's hosts and their TOR — every host↔TOR interaction stays
//! inside the group) and one boundary `SpineState` holding all spine
//! switches. Every event touches exactly one group's state, and the only
//! cross-group influence is a `SwitchArrive` scheduled
//! [`Topology::min_forward_delay`] in the future (TOR→spine and
//! spine→TOR hops). That delay is therefore a conservative-PDES
//! lookahead: all events in a window `[T, T + lookahead)` can be
//! dispatched group-by-group in parallel, because nothing dispatched in
//! the window can create an event for *another* group inside it.
//!
//! [`EngineKind::ParallelHier`] enables this mode. Per window, the
//! network drains the window's events from the calendar queue (grouping
//! them by rack), runs each group's sub-window on a worker thread
//! (`std::thread::scope`; same-group events spawned inside the window —
//! timers, back-to-back `TxDone`s — are dispatched in-window from a
//! per-group overlay), then *merges* every group's emissions back in
//! exact `(time, seq)` order, assigning the same global sequence numbers
//! sequential dispatch would have. Spray randomness is pre-drawn during
//! the drain — in global pop order, which provably equals sequential
//! dispatch order because a `SwitchArrive` is always created at least one
//! lookahead before it fires and therefore is never dispatched inside the
//! window that created it. The result is *bit-identical* to both
//! sequential engines; `tests/determinism.rs` proves it end-to-end.

use crate::arena::{trim_capacity, HighWater, Recycle};
use crate::events::{EngineKind, EngineStats, EventEngine, LaneId, TimerToken};
use crate::faults::{Fault, FaultPlan, LinkId};
use crate::packet::{CtrlKind, Packet, PacketMeta};
use crate::queues::{PortQueue, QueueDiscipline};
use crate::stats::{PortClass, PortStats, RunStats, StreamingStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{self, FabricKind, HostId, NodeId, Topology};
use crate::trace::{FlightRecorder, TraceEvent, TraceRecord};
use crate::transport::{AppEvent, Transport, TransportActions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Fabric-wide configuration knobs that are not part of the topology.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Seed for all fabric randomness (packet spraying).
    pub seed: u64,
    /// Queue discipline for TOR→host ports (where Homa's queueing lives).
    pub tor_down: QueueDiscipline,
    /// Queue discipline for TOR→spine ports.
    pub tor_up: QueueDiscipline,
    /// Queue discipline for spine→TOR ports.
    pub spine_down: QueueDiscipline,
    /// Which event engine drives the simulation. All engines produce
    /// bit-identical runs; the calendar engine is faster on large
    /// fabrics, and [`EngineKind::ParallelHier`] additionally dispatches
    /// rack groups on worker threads (see [`crate::events`]).
    pub engine: EngineKind,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // 1 MB shared buffer per port, 8 strict priorities: a generous
        // commodity switch, per the paper's observation that Homa's peak
        // occupancy (146 KB) is well within typical switch capacity.
        NetworkConfig {
            seed: 1,
            tor_down: QueueDiscipline::strict8(1 << 20),
            tor_up: QueueDiscipline::strict8(1 << 20),
            spine_down: QueueDiscipline::strict8(1 << 20),
            engine: EngineKind::default(),
        }
    }
}

impl NetworkConfig {
    /// Same discipline on every switch port.
    pub fn uniform(seed: u64, disc: QueueDiscipline) -> Self {
        NetworkConfig {
            seed,
            tor_down: disc,
            tor_up: disc,
            spine_down: disc,
            engine: EngineKind::default(),
        }
    }

    /// The same configuration on a different event engine.
    pub fn with_engine(self, engine: EngineKind) -> Self {
        NetworkConfig { engine, ..self }
    }
}

enum Ev<M> {
    /// A port finished serializing its current packet.
    TxDone { node: NodeId, port: u32 },
    /// A packet fully arrived at a switch (post internal delay).
    SwitchArrive { node: NodeId, pkt: Packet<M> },
    /// A packet is delivered to a host transport (post software delay).
    HostDeliver { host: HostId, pkt: Packet<M> },
    /// A transport timer fired.
    Timer { host: HostId, token: TimerToken },
    /// A scheduled fault takes effect (see [`crate::faults`]).
    Fault { node: NodeId, port: u32, action: FaultAction },
}

/// A [`Fault`] resolved against the topology at install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    LinkDown,
    LinkUp,
    SetRate(u64),
    RestoreRate,
    PauseRx,
    ResumeRx,
}

struct Port<M> {
    queue: PortQueue<M>,
    rate_bps: u64,
    /// The topology-configured rate, restored after a rate-limit fault.
    base_rate_bps: u64,
    /// Link state; a downed port neither serves its queue nor accepts
    /// newly-routed packets (they are fault-dropped).
    up: bool,
    peer: NodeId,
    class: PortClass,
    /// The packet currently being serialized, with its completion time.
    sending: Option<(Packet<M>, SimTime)>,
    stats: PortStats,
}

impl<M: PacketMeta> Port<M> {
    fn new(disc: QueueDiscipline, rate_bps: u64, peer: NodeId, class: PortClass) -> Self {
        Port {
            queue: PortQueue::new(disc),
            rate_bps,
            base_rate_bps: rate_bps,
            up: true,
            peer,
            class,
            sending: None,
            stats: PortStats::default(),
        }
    }

    fn busy(&self) -> bool {
        self.sending.is_some()
    }

    fn in_flight_view(&self) -> Option<(&M, SimTime)> {
        self.sending.as_ref().map(|(p, t)| (&p.meta, *t))
    }
}

struct SwitchNode<M> {
    ports: Vec<Port<M>>,
    /// Deterministic-spray counter for fat-tree uplink selection: mixed
    /// with the packet's flow key per decision (see [`GroupMut::spray_next`]).
    /// Per-switch state, so it replays identically under window dispatch
    /// (each switch's events are totally ordered within its group).
    spray: u64,
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used for
/// deterministic ECMP-style spray.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Counters accumulated inside one dispatch group (summed at harvest).
#[derive(Debug, Clone, Copy, Default)]
struct GroupCounters {
    faults_applied: u64,
    fault_drops: u64,
    deferred_deliveries: u64,
}

/// One rack's partition of the fabric: its hosts and their TOR. All
/// host↔TOR traffic is group-internal, which is what makes the rack a
/// unit of parallel dispatch.
///
/// Host state is struct-of-arrays: the hot fields (ports in the TxDone
/// path, transports in the delivery path) are contiguous per rack
/// instead of interleaved in one node struct, and the cold pause state
/// does not pad the hot cache lines.
struct RackState<M, T> {
    /// First host id in this rack (hosts are rack-major and dense).
    base_host: u32,
    /// One transport per host, indexed by [`slot`](Self::slot).
    transports: Vec<T>,
    /// Host NIC egress ports, parallel to `transports`.
    host_ports: Vec<Port<M>>,
    /// Receiver-pause flags, parallel to `transports`.
    paused: Vec<bool>,
    /// Packets buffered while paused (delivered in order on resume).
    pause_bufs: Vec<Vec<Packet<M>>>,
    tor: SwitchNode<M>,
    /// Reusable transport-callback action buffer.
    scratch: TransportActions,
    counters: GroupCounters,
}

impl<M, T> RackState<M, T> {
    fn slot(&self, h: HostId) -> usize {
        (h.0 - self.base_host) as usize
    }
}

/// The boundary group: every spine switch. Spines only talk to TORs, and
/// always across a [`Topology::min_forward_delay`] hop, so one shared
/// group is safe (and keeps the group count small).
struct SpineState<M> {
    spines: Vec<SwitchNode<M>>,
    counters: GroupCounters,
}

/// A mutable view of one dispatch group.
enum GroupMut<'a, M: PacketMeta, T: Transport<M>> {
    Rack(&'a mut RackState<M, T>),
    Spine(&'a mut SpineState<M>),
}

impl<M: PacketMeta, T: Transport<M>> GroupMut<'_, M, T> {
    fn counters_mut(&mut self) -> &mut GroupCounters {
        match self {
            GroupMut::Rack(r) => &mut r.counters,
            GroupMut::Spine(s) => &mut s.counters,
        }
    }

    fn port_mut(&mut self, node: NodeId, port: u32) -> &mut Port<M> {
        match (self, node) {
            (GroupMut::Rack(r), NodeId::Host(h)) => {
                let i = r.slot(h);
                &mut r.host_ports[i]
            }
            (GroupMut::Rack(r), NodeId::Tor(_)) => &mut r.tor.ports[port as usize],
            (GroupMut::Spine(s), NodeId::Spine(sp)) => {
                &mut s.spines[sp as usize].ports[port as usize]
            }
            _ => unreachable!("event routed to the wrong dispatch group"),
        }
    }

    /// Draw the next deterministic spray decision at switch `node` for a
    /// `src → dst` packet: the flow key hashed with a per-switch counter,
    /// reduced to `0..n`. Pure per-group state — no global RNG — so
    /// window dispatch replays it bit-identically without pre-drawing.
    fn spray_next(&mut self, node: NodeId, src: HostId, dst: HostId, n: u32) -> u32 {
        let sw = match (self, node) {
            (GroupMut::Rack(r), NodeId::Tor(_)) => &mut r.tor,
            (GroupMut::Spine(s), NodeId::Spine(sp)) => &mut s.spines[sp as usize],
            _ => unreachable!("spray at a non-switch node"),
        };
        let c = sw.spray;
        sw.spray = sw.spray.wrapping_add(1);
        let key = ((src.0 as u64) << 32) | dst.0 as u64;
        (splitmix64(key ^ c.wrapping_mul(0xD1B54A32D192ED03)) % n as u64) as u32
    }
}

/// Cheap lane → dispatch-group mapping (groups: rack 0..racks, then the
/// spine boundary group).
#[derive(Debug, Clone, Copy)]
struct LaneMap {
    hosts: u32,
    hosts_per_rack: u32,
    racks: u32,
}

impl LaneMap {
    fn group_of_lane(self, lane: LaneId) -> u32 {
        if lane.0 < self.hosts {
            lane.0 / self.hosts_per_rack
        } else if lane.0 < self.hosts + self.racks {
            lane.0 - self.hosts
        } else {
            self.racks
        }
    }
}

/// The event lane a node's events are routed to: hosts get one lane
/// each; a TOR's ports share one lane per rack; spines one per switch.
fn lane_of(topo: &Topology, node: NodeId) -> LaneId {
    match node {
        NodeId::Host(h) => LaneId(h.0),
        NodeId::Tor(r) => LaneId(topo.num_hosts() + r),
        NodeId::Spine(s) => LaneId(topo.num_hosts() + topo.racks + s),
    }
}

fn group_of_node(topo: &Topology, node: NodeId) -> usize {
    match node {
        NodeId::Host(h) => topo.rack_of(h) as usize,
        NodeId::Tor(r) => r as usize,
        NodeId::Spine(_) => topo.racks as usize,
    }
}

fn group_of_ev<M>(topo: &Topology, ev: &Ev<M>) -> usize {
    match ev {
        Ev::TxDone { node, .. } | Ev::SwitchArrive { node, .. } | Ev::Fault { node, .. } => {
            group_of_node(topo, *node)
        }
        Ev::HostDeliver { host, .. } | Ev::Timer { host, .. } => topo.rack_of(*host) as usize,
    }
}

/// Where dispatch side effects go: the sequential loop writes straight
/// into the queue and app-event log; window dispatch records them for the
/// deterministic merge.
trait EmitSink<M> {
    fn schedule(&mut self, lane: LaneId, at: SimTime, ev: Ev<M>);
    fn app(&mut self, at: SimTime, host: HostId, ev: AppEvent);
    /// Whether the flight recorder wants events. Constant-folds to
    /// `false` when the `trace` cargo feature is compiled out, so every
    /// guarded emit site vanishes from the binary; with the feature on
    /// it is one bool test. Call sites must guard with this before
    /// constructing a [`TraceEvent`].
    fn tracing(&self) -> bool {
        false
    }
    /// Record one trace event at `at` (a no-op unless [`Self::tracing`]).
    fn trace(&mut self, at: SimTime, ev: TraceEvent) {
        let _ = (at, ev);
    }
}

struct DirectSink<'a, M: PacketMeta> {
    queue: &'a mut EventEngine<Ev<M>>,
    app_events: &'a mut Vec<(SimTime, HostId, AppEvent)>,
    tracer: Option<&'a mut FlightRecorder>,
}

impl<M: PacketMeta> EmitSink<M> for DirectSink<'_, M> {
    fn schedule(&mut self, lane: LaneId, at: SimTime, ev: Ev<M>) {
        self.queue.schedule(lane, at, ev);
    }
    fn app(&mut self, at: SimTime, host: HostId, ev: AppEvent) {
        self.app_events.push((at, host, ev));
    }
    fn tracing(&self) -> bool {
        cfg!(feature = "trace") && self.tracer.is_some()
    }
    fn trace(&mut self, at: SimTime, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(at, ev);
        }
    }
}

/// One drained window event: its original `(time, seq)` key, the payload,
/// and — for cross-rack TOR arrivals — the spray decision pre-drawn from
/// the global RNG in exact sequential order.
struct WItem<M> {
    at: SimTime,
    ord: u64,
    ev: Ev<M>,
    hint: Option<u32>,
}

/// An event created *and* dispatched inside the current window (timer at
/// `now`, back-to-back `TxDone`): ordered by `(at, ord)` where `ord` is a
/// provisional number above every pre-window sequence.
struct OEntry<M> {
    at: SimTime,
    ord: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for OEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.ord) == (other.at, other.ord)
    }
}
impl<M> Eq for OEntry<M> {}
impl<M> PartialOrd for OEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for OEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: BinaryHeap pops the earliest first.
        (other.at, other.ord).cmp(&(self.at, self.ord))
    }
}

/// One recorded emission of a window dispatch.
enum Emit<M> {
    /// Scheduled into this group's own overlay and consumed in-window;
    /// the merge burns one global sequence number for it (in exactly the
    /// position sequential dispatch would have).
    Local,
    /// Scheduled beyond the window (or into another group); the merge
    /// assigns its global sequence number and inserts it into the queue.
    Defer { lane: LaneId, at: SimTime, ev: Ev<M> },
    /// An application event; the merge appends it in global order.
    App { host: HostId, ev: AppEvent },
    /// A trace event; the merge records it at its log entry's time
    /// (every trace emission happens at the dispatching event's `now`,
    /// which *is* the entry's time — so the merged recording order is
    /// exactly sequential dispatch's, byte-identical across engines).
    Trace(TraceEvent),
}

/// One dispatched event of a group's sub-window, in dispatch order. Its
/// emissions live in the group's shared emit buffer as the range
/// `[previous entry's emits_end, emits_end)` — a flat cumulative index
/// instead of a per-event `Vec`, which was the engine's hottest
/// allocation at scale.
struct LogEntry {
    at: SimTime,
    /// Real sequence (< the window's provisional base) or provisional.
    ord: u64,
    /// Exclusive end of this entry's emissions in `GroupBufs::emits`.
    emits_end: u32,
}

/// One dispatch group's recycled window buffers: the drained items, the
/// dispatch log with its flat emit buffer, the in-window overlay heap,
/// and the merge's provisional-sequence table. All are emptied in place
/// between windows ([`Recycle`]) so steady state allocates nothing —
/// in threaded mode the whole set rides the job/result channels so the
/// same allocations serve every window.
struct GroupBufs<M> {
    items: Vec<WItem<M>>,
    entries: Vec<LogEntry>,
    emits: Vec<Emit<M>>,
    overlay: BinaryHeap<OEntry<M>>,
    /// Final sequence numbers of this group's provisional (in-window)
    /// events, filled during the merge.
    provs: Vec<u64>,
    /// Merge cursors into `entries` / `emits`.
    next_entry: usize,
    next_emit: usize,
    /// Occupancy tracker driving the periodic capacity trim below.
    hw: HighWater,
    /// Times the trim released burst capacity (surfaced in
    /// [`EngineStats::buffer_trims`]).
    trims: u64,
}

impl<M> Default for GroupBufs<M> {
    fn default() -> Self {
        GroupBufs {
            items: Vec::new(),
            entries: Vec::new(),
            emits: Vec::new(),
            overlay: BinaryHeap::new(),
            provs: Vec::new(),
            next_entry: 0,
            next_emit: 0,
            hw: HighWater::default(),
            trims: 0,
        }
    }
}

impl<M> Recycle for GroupBufs<M> {
    fn recycle(&mut self) {
        // The window's dispatch-log length bounds every buffer's working
        // set; feed it to the high-water tracker so a one-off burst (an
        // incast window) stops pinning peak capacity once it ages out.
        let occupancy = self.entries.len().max(self.emits.len());
        self.items.clear();
        self.entries.clear();
        self.emits.clear();
        self.overlay.clear();
        self.provs.clear();
        self.next_entry = 0;
        self.next_emit = 0;
        if let Some(target) = self.hw.observe(occupancy) {
            let mut trimmed = trim_capacity(&mut self.items, target);
            trimmed |= trim_capacity(&mut self.entries, target);
            trimmed |= trim_capacity(&mut self.emits, target);
            trimmed |= trim_capacity(&mut self.provs, target);
            if trimmed {
                self.trims += 1;
            }
        }
    }
}

struct WindowSink<'a, M> {
    lanes: LaneMap,
    group: u32,
    base: u64,
    wmax: SimTime,
    /// Whether the network has a flight recorder installed (workers
    /// never touch the recorder itself — trace events ride the emit log
    /// and are recorded by the merge, preserving global order).
    tracing: bool,
    nprov: &'a mut u64,
    overlay: &'a mut BinaryHeap<OEntry<M>>,
    emits: &'a mut Vec<Emit<M>>,
}

impl<M: PacketMeta> EmitSink<M> for WindowSink<'_, M> {
    fn schedule(&mut self, lane: LaneId, at: SimTime, ev: Ev<M>) {
        if self.lanes.group_of_lane(lane) == self.group && at <= self.wmax {
            let ord = self.base + *self.nprov;
            *self.nprov += 1;
            self.overlay.push(OEntry { at, ord, ev });
            self.emits.push(Emit::Local);
        } else {
            // The conservative-window contract: an emission for another
            // group must land beyond the window bound (cross-group paths
            // all carry `min_forward_delay`). A violation here would mean
            // the merge re-queues an event that sequential dispatch would
            // already have run — catch it at the source.
            debug_assert!(
                at > self.wmax || self.lanes.group_of_lane(lane) == self.group,
                "cross-group emission inside the conservative window (at {at}, wmax {})",
                self.wmax
            );
            self.emits.push(Emit::Defer { lane, at, ev });
        }
    }
    fn app(&mut self, _at: SimTime, host: HostId, ev: AppEvent) {
        self.emits.push(Emit::App { host, ev });
    }
    fn tracing(&self) -> bool {
        cfg!(feature = "trace") && self.tracing
    }
    fn trace(&mut self, _at: SimTime, ev: TraceEvent) {
        self.emits.push(Emit::Trace(ev));
    }
}

// ---------------------------------------------------------------------
// Dispatch: one code path shared by the sequential loop and the window
// workers, parameterized over the emission sink.
// ---------------------------------------------------------------------

fn dispatch_event<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    topo: &Topology,
    g: &mut GroupMut<'_, M, T>,
    now: SimTime,
    ev: Ev<M>,
    hint: Option<u32>,
    rng: Option<&mut StdRng>,
    sink: &mut S,
) {
    match ev {
        Ev::TxDone { node, port } => on_tx_done(topo, g, now, node, port, sink),
        Ev::SwitchArrive { node, pkt } => {
            on_switch_arrive(topo, g, now, node, pkt, hint, rng, sink)
        }
        Ev::HostDeliver { host, pkt } => {
            let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
            let i = rack.slot(host);
            if rack.paused[i] {
                rack.pause_bufs[i].push(pkt);
                rack.counters.deferred_deliveries += 1;
                return;
            }
            deliver_to_host(rack, topo, now, host, pkt, sink);
        }
        Ev::Fault { node, port, action } => apply_fault(topo, g, now, node, port, action, sink),
        Ev::Timer { host, token } => {
            let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
            let mut act = std::mem::take(&mut rack.scratch);
            act.reset();
            let i = rack.slot(host);
            rack.transports[i].on_timer(now, token, &mut act);
            apply_actions(rack, topo, now, host, act, sink);
        }
    }
}

/// Hand a fully-arrived packet to a host's transport (the tail of the
/// `HostDeliver` path, also used when a paused receiver resumes).
fn deliver_to_host<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    rack: &mut RackState<M, T>,
    topo: &Topology,
    now: SimTime,
    host: HostId,
    pkt: Packet<M>,
    sink: &mut S,
) {
    if sink.tracing() {
        if let Some(CtrlKind::Grant { offset, prio }) = pkt.meta.ctrl_kind() {
            sink.trace(now, TraceEvent::GrantReceived { host, from: pkt.src, offset, prio });
        }
    }
    let mut act = std::mem::take(&mut rack.scratch);
    act.reset();
    let i = rack.slot(host);
    rack.transports[i].on_packet(now, pkt, &mut act);
    apply_actions(rack, topo, now, host, act, sink);
}

fn apply_actions<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    rack: &mut RackState<M, T>,
    topo: &Topology,
    now: SimTime,
    host: HostId,
    mut act: TransportActions,
    sink: &mut S,
) {
    for (at, token) in act.drain_timers() {
        debug_assert!(at >= now, "timer scheduled in the past");
        sink.schedule(LaneId(host.0), at.max(now), Ev::Timer { host, token });
    }
    for ev in act.drain_events() {
        if sink.tracing() {
            if let AppEvent::MessageDelivered { src, tag, len } = &ev {
                sink.trace(now, TraceEvent::MsgDelivered { host, src: *src, tag: *tag, len: *len });
            }
        }
        sink.app(now, host, ev);
    }
    let kick = act.take_tx_kick();
    act.reset();
    rack.scratch = act;
    if kick {
        poll_host_tx(rack, topo, now, host, sink);
    }
}

/// If the host uplink is idle, pull the next packet from the transport.
fn poll_host_tx<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    rack: &mut RackState<M, T>,
    _topo: &Topology,
    now: SimTime,
    host: HostId,
    sink: &mut S,
) {
    let i = rack.slot(host);
    let port = &mut rack.host_ports[i];
    if port.busy() || !port.up {
        return;
    }
    if let Some(pkt) = rack.transports[i].next_packet(now) {
        debug_assert_eq!(pkt.src, host, "transport emitted packet with wrong source");
        if sink.tracing() {
            // Grants and resends are protocol-level control packets; the
            // fabric learns their meaning via [`PacketMeta::ctrl_kind`]
            // at the one place every transmission passes through.
            match pkt.meta.ctrl_kind() {
                Some(CtrlKind::Grant { offset, prio }) => {
                    sink.trace(
                        now,
                        TraceEvent::GrantIssued { from: host, to: pkt.dst, offset, prio },
                    );
                }
                Some(CtrlKind::Resend { offset, len }) => {
                    sink.trace(now, TraceEvent::Resend { from: host, to: pkt.dst, offset, len });
                }
                _ => {}
            }
        }
        let done_at = begin_tx(now, NodeId::Host(host), 0, &mut rack.host_ports[i], pkt, sink);
        sink.schedule(LaneId(host.0), done_at, Ev::TxDone { node: NodeId::Host(host), port: 0 });
    }
}

/// Occupy `port` (egress `port_idx` of `node`) with `pkt`; returns the
/// completion time, which the caller must schedule as a `TxDone` for the
/// port. Emits the packet's one [`TraceEvent::TxStart`] when tracing.
fn begin_tx<M: PacketMeta, S: EmitSink<M>>(
    now: SimTime,
    node: NodeId,
    port_idx: u32,
    port: &mut Port<M>,
    pkt: Packet<M>,
    sink: &mut S,
) -> SimTime {
    debug_assert!(!port.busy(), "begin_tx on busy port");
    let dur = SimDuration::serialization(pkt.wire_bytes() as u64, port.rate_bps);
    let done_at = now + dur;
    port.stats.busy_ns += dur.as_nanos();
    port.stats.wire_bytes += pkt.wire_bytes() as u64;
    port.stats.goodput_bytes += pkt.meta.goodput_bytes() as u64;
    port.stats.packets += 1;
    port.stats.bytes_by_prio[(pkt.priority() as usize).min(7)] += pkt.wire_bytes() as u64;
    if sink.tracing() {
        sink.trace(
            now,
            TraceEvent::TxStart {
                node,
                port: port_idx,
                src: pkt.src,
                dst: pkt.dst,
                prio: pkt.priority(),
                bytes: pkt.wire_bytes(),
                dur_ns: dur.as_nanos(),
            },
        );
    }
    // Preemption-lag accounting for everything still waiting.
    port.queue.on_tx_start(&pkt, dur);
    port.sending = Some((pkt, done_at));
    done_at
}

/// Emit the [`TraceEvent::Dequeue`] for a packet just popped from
/// `port`'s queue (callers guard with `sink.tracing()`). The wait split
/// comes from [`PortQueue::last_wait`]: pure queueing behind
/// equal-or-higher traffic vs. preemption lag.
fn trace_dequeue<M: PacketMeta, S: EmitSink<M>>(
    now: SimTime,
    node: NodeId,
    port_idx: u32,
    port: &Port<M>,
    pkt: &Packet<M>,
    sink: &mut S,
) {
    let (waited, lag) = port.queue.last_wait();
    sink.trace(
        now,
        TraceEvent::Dequeue {
            node,
            port: port_idx,
            src: pkt.src,
            dst: pkt.dst,
            prio: pkt.priority(),
            bytes: pkt.wire_bytes(),
            waited_ns: waited.as_nanos(),
            lag_ns: lag.as_nanos(),
            qbytes: port.queue.bytes(),
        },
    );
}

fn on_tx_done<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    topo: &Topology,
    g: &mut GroupMut<'_, M, T>,
    now: SimTime,
    node: NodeId,
    port_idx: u32,
    sink: &mut S,
) {
    let (prop_delay, host_sw_delay, switch_delay) =
        (topo.prop_delay, topo.host_sw_delay, topo.switch_delay);
    let (pkt, peer) = {
        let port = g.port_mut(node, port_idx);
        let (pkt, _) = port.sending.take().expect("TxDone without transmission");
        (pkt, port.peer)
    };

    // Deliver to the peer. Switch arrivals are the *only* emission that
    // can cross dispatch groups, and they always carry the full
    // `min_forward_delay` — the invariant the conservative window relies
    // on.
    match peer {
        NodeId::Host(h) => {
            let at = now + prop_delay + host_sw_delay;
            sink.schedule(LaneId(h.0), at, Ev::HostDeliver { host: h, pkt });
        }
        sw @ (NodeId::Tor(_) | NodeId::Spine(_)) => {
            let at = now + prop_delay + switch_delay;
            sink.schedule(lane_of(topo, sw), at, Ev::SwitchArrive { node: sw, pkt });
        }
    }

    // Keep the port busy with the next packet, if any.
    match node {
        NodeId::Host(h) => {
            let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
            poll_host_tx(rack, topo, now, h, sink);
        }
        _ => {
            let port = g.port_mut(node, port_idx);
            // A downed link finishes its in-flight packet but does not
            // start another; service resumes on the LinkUp fault.
            if !port.up {
                return;
            }
            if let Some(next) = port.queue.dequeue(now) {
                if sink.tracing() {
                    trace_dequeue(now, node, port_idx, port, &next, sink);
                }
                let done_at = begin_tx(now, node, port_idx, port, next, sink);
                sink.schedule(lane_of(topo, node), done_at, Ev::TxDone { node, port: port_idx });
            }
        }
    }
}

/// Pick the egress port for a `src → dst` packet at switch `node`.
///
/// Leaf–spine: cross-rack traffic at a TOR is sprayed across spine
/// uplinks from the *global* RNG — sequential dispatch draws here;
/// window dispatch passes the decision in as `hint`, pre-drawn during
/// the drain in the same global order.
///
/// Fat tree: up-facing hops (TOR → agg, agg → core) spray via the
/// switch's own deterministic counter hash ([`GroupMut::spray_next`]);
/// down-facing hops are fully determined by `dst`. No global RNG, so no
/// pre-drawing is needed and the hint stays `None`.
fn route<M: PacketMeta, T: Transport<M>>(
    topo: &Topology,
    g: &mut GroupMut<'_, M, T>,
    hint: Option<u32>,
    rng: Option<&mut StdRng>,
    node: NodeId,
    src: HostId,
    dst: HostId,
) -> u32 {
    let dst_rack = topo.rack_of(dst);
    match (node, topo.kind) {
        (NodeId::Tor(r), _) if dst_rack == r => topo.index_in_rack(dst),
        (NodeId::Tor(_), FabricKind::LeafSpine) => {
            if let Some(h) = hint {
                h
            } else {
                let rng = rng.expect("window dispatch must pre-draw spray decisions");
                topo.hosts_per_rack + rng.gen_range(0..topo.spines)
            }
        }
        (NodeId::Tor(_), FabricKind::FatTree { k }) => {
            topo.hosts_per_rack + g.spray_next(node, src, dst, k / 2)
        }
        (NodeId::Spine(_), FabricKind::LeafSpine) => dst_rack,
        (NodeId::Spine(s), FabricKind::FatTree { k }) => {
            let half = k / 2;
            if s < topo.num_aggs() {
                // Aggregation switch: down to the pod-local edge, or up
                // across its core uplinks (ports half..k).
                if topo.pod_of_rack(dst_rack) == s / half {
                    dst_rack % half
                } else {
                    half + g.spray_next(node, src, dst, half)
                }
            } else {
                // Core switch: one down port per pod.
                topo.pod_of_rack(dst_rack)
            }
        }
        (NodeId::Host(_), _) => unreachable!("hosts do not route"),
    }
}

#[allow(clippy::too_many_arguments)]
fn on_switch_arrive<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    topo: &Topology,
    g: &mut GroupMut<'_, M, T>,
    now: SimTime,
    node: NodeId,
    mut pkt: Packet<M>,
    hint: Option<u32>,
    rng: Option<&mut StdRng>,
    sink: &mut S,
) {
    let port_idx = route(topo, g, hint, rng, node, pkt.src, pkt.dst);
    let lane = lane_of(topo, node);

    // Link-state check: packets routed to a downed egress are lost
    // (the switch has nowhere to forward them); transports recover
    // via their own retransmission machinery.
    if !g.port_mut(node, port_idx).up {
        if sink.tracing() {
            sink.trace(
                now,
                TraceEvent::FaultDrop {
                    node,
                    port: port_idx,
                    src: pkt.src,
                    dst: pkt.dst,
                    prio: pkt.priority(),
                },
            );
        }
        g.counters_mut().fault_drops += 1;
        return;
    }
    let port = g.port_mut(node, port_idx);

    // Hot-path bypass: an idle port with an empty queue transmits the
    // packet immediately; `pass_through` performs the byte/ECN
    // accounting of an enqueue-then-dequeue pair without touching the
    // per-level FIFOs (observable state is identical). No enqueue or
    // dequeue trace events fire here — the packet never waited; its
    // `TxStart` is the whole story.
    if !port.busy() && port.queue.pass_through(now, &mut pkt) {
        let done_at = begin_tx(now, node, port_idx, port, pkt, sink);
        sink.schedule(lane, done_at, Ev::TxDone { node, port: port_idx });
        return;
    }

    if sink.tracing() {
        // Preemption, observed at the moment it begins: the arrival
        // outranks the packet occupying the link and will wait out its
        // residual serialization (Fig. 14's preemption lag).
        if let Some((m, ends_at)) = port.in_flight_view() {
            if ends_at > now && port.queue.would_outrank(&pkt.meta, pkt.was_trimmed, m) {
                sink.trace(
                    now,
                    TraceEvent::Preempted {
                        node,
                        port: port_idx,
                        prio: pkt.priority(),
                        over_prio: m.priority(),
                        lag_ns: ends_at.saturating_since(now).as_nanos(),
                    },
                );
            }
        }
    }

    let in_flight = port.in_flight_view().map(|(m, t)| (m.clone(), t));
    let (src, dst, prio) = (pkt.src, pkt.dst, pkt.priority());
    let qbytes_before = port.queue.bytes();
    let outcome = port.queue.enqueue(now, pkt, in_flight.as_ref().map(|(m, t)| (m, *t)));
    if sink.tracing() {
        sink.trace(
            now,
            TraceEvent::Enqueue {
                node,
                port: port_idx,
                src,
                dst,
                prio,
                bytes: port.queue.bytes().saturating_sub(qbytes_before) as u32,
                qpkts: port.queue.len() as u32,
                qbytes: port.queue.bytes(),
                outcome,
            },
        );
    }
    if !port.busy() {
        if let Some(next) = port.queue.dequeue(now) {
            if sink.tracing() {
                trace_dequeue(now, node, port_idx, port, &next, sink);
            }
            let done_at = begin_tx(now, node, port_idx, port, next, sink);
            sink.schedule(lane, done_at, Ev::TxDone { node, port: port_idx });
        }
    }
}

fn apply_fault<M: PacketMeta, T: Transport<M>, S: EmitSink<M>>(
    topo: &Topology,
    g: &mut GroupMut<'_, M, T>,
    now: SimTime,
    node: NodeId,
    port_idx: u32,
    action: FaultAction,
    sink: &mut S,
) {
    g.counters_mut().faults_applied += 1;
    match action {
        FaultAction::LinkDown => g.port_mut(node, port_idx).up = false,
        FaultAction::LinkUp => {
            g.port_mut(node, port_idx).up = true;
            // Restart service: a host pulls from its transport, a
            // switch port from its (preserved) queue.
            match node {
                NodeId::Host(h) => {
                    let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
                    poll_host_tx(rack, topo, now, h, sink);
                }
                _ => {
                    let port = g.port_mut(node, port_idx);
                    if !port.busy() {
                        if let Some(next) = port.queue.dequeue(now) {
                            if sink.tracing() {
                                trace_dequeue(now, node, port_idx, port, &next, sink);
                            }
                            let done_at = begin_tx(now, node, port_idx, port, next, sink);
                            sink.schedule(
                                lane_of(topo, node),
                                done_at,
                                Ev::TxDone { node, port: port_idx },
                            );
                        }
                    }
                }
            }
        }
        FaultAction::SetRate(bps) => g.port_mut(node, port_idx).rate_bps = bps,
        FaultAction::RestoreRate => {
            let port = g.port_mut(node, port_idx);
            port.rate_bps = port.base_rate_bps;
        }
        FaultAction::PauseRx => {
            let NodeId::Host(h) = node else { unreachable!("pause resolved to a host") };
            let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
            let i = rack.slot(h);
            rack.paused[i] = true;
        }
        FaultAction::ResumeRx => {
            let NodeId::Host(h) = node else { unreachable!("resume resolved to a host") };
            let GroupMut::Rack(rack) = g else { unreachable!("host event in spine group") };
            let i = rack.slot(h);
            rack.paused[i] = false;
            // Deliver everything buffered while paused, in arrival
            // order, at the resume instant. The buffer is swapped back
            // after draining so its allocation is reused next pause.
            let mut buf = std::mem::take(&mut rack.pause_bufs[i]);
            for pkt in buf.drain(..) {
                deliver_to_host(rack, topo, now, h, pkt, sink);
            }
            rack.pause_bufs[i] = buf;
        }
    }
}

// ---------------------------------------------------------------------
// Conservative-window machinery (drain → per-group runs → ordered merge).
// ---------------------------------------------------------------------

/// Counters for the window dispatcher, merged into [`EngineStats`].
#[derive(Debug, Clone, Copy, Default)]
struct WinCounters {
    windows: u64,
    window_events: u64,
    max_window_events: u64,
    /// Windows whose drained events all hit one dispatch group, run
    /// inline through [`DirectSink`] (no per-group log, no merge).
    fast_windows: u64,
    /// Bookkeeping batches of consecutive windows (see
    /// [`Network::batch_size`]).
    batches: u64,
}

/// Threaded mode: a window whose drained events total fewer than this
/// runs on the calling thread — the cross-thread handoff and wakeup
/// cost dwarfs that little work. Purely a performance threshold: every
/// path (fast, inline, shipped) produces bit-identical results, so the
/// value can never affect a run's outcome.
const INLINE_WINDOW_EVENTS: usize = 96;

/// One group's work for one window (threaded mode): the group's mutable
/// state and buffer set travel to the worker with the drained items
/// inside and return with the dispatch log filled, so every allocation
/// round-trips and the main thread can run any group inline between
/// shipments.
struct GroupJob<'a, M: PacketMeta, T: Transport<M>> {
    gidx: usize,
    base: u64,
    wmax: SimTime,
    bufs: GroupBufs<M>,
    gm: GroupMut<'a, M, T>,
}

/// Static window-dispatch parameters (shape of the fabric's groups plus
/// the conservative lookahead), fixed at network construction.
#[derive(Debug, Clone, Copy)]
struct WindowCfg {
    lanes: LaneMap,
    lookahead: SimDuration,
}

/// One drained window, ready for per-group dispatch (the per-group item
/// batches live in the caller's recycled [`GroupBufs`]).
struct WindowDrain {
    /// Provisional-numbering base: above every pending sequence number.
    base: u64,
    /// Inclusive upper time bound of the window.
    wmax: SimTime,
}

/// Pop every event with `time <= wmax` (where `wmax` is the conservative
/// window bound derived from the first pending event), partitioned into
/// each group's `bufs.items`, with leaf–spine spray decisions pre-drawn
/// in global pop order. Group indices that received at least one item
/// are appended to `active` (so the run and merge stages touch only
/// those groups, never scanning the whole fabric). Returns `None` when
/// no event is pending at or before `limit`.
fn drain_window<M: PacketMeta>(
    topo: &Topology,
    queue: &mut EventEngine<Ev<M>>,
    rng: &mut StdRng,
    cfg: WindowCfg,
    limit: SimTime,
    bufs: &mut [GroupBufs<M>],
    active: &mut Vec<usize>,
) -> Option<WindowDrain> {
    debug_assert!(active.is_empty(), "active-group scratch not consumed");
    let EventEngine::Hierarchical(q) = queue else {
        unreachable!("window dispatch requires the calendar engine")
    };
    let first = q.pop_entry_if_before(limit)?;
    let tmin = first.1;
    debug_assert!(cfg.lookahead.as_nanos() >= 1, "windows need positive lookahead");
    let wmax = limit.min(tmin + SimDuration::from_nanos(cfg.lookahead.as_nanos() - 1));
    let lanes = cfg.lanes;
    let mut push = |lane: LaneId, at: SimTime, seq: u64, ev: Ev<M>, rng: &mut StdRng| {
        // Pre-draw the spray decision for cross-rack TOR arrivals on a
        // leaf–spine fabric (the only kind that sprays from the global
        // RNG). Drain order is global `(time, seq)` order, and a
        // `SwitchArrive` is never dispatched inside the window that
        // created it (its delay *is* the lookahead), so this consumes
        // the RNG stream in exactly the order sequential dispatch would.
        let hint = match &ev {
            Ev::SwitchArrive { node: NodeId::Tor(r), pkt }
                if matches!(topo.kind, FabricKind::LeafSpine) && topo.rack_of(pkt.dst) != *r =>
            {
                Some(topo.hosts_per_rack + rng.gen_range(0..topo.spines))
            }
            _ => None,
        };
        let g = lanes.group_of_lane(lane) as usize;
        let b = &mut bufs[g];
        if b.items.is_empty() {
            active.push(g);
        }
        b.items.push(WItem { at, ord: seq, ev, hint });
    };
    push(first.0, first.1, first.2, first.3, rng);
    while let Some((lane, at, seq, ev)) = q.pop_entry_if_before(wmax) {
        push(lane, at, seq, ev, rng);
    }
    Some(WindowDrain { base: q.seq_floor(), wmax })
}

/// Dispatch one group's sub-window: its drained events (in
/// `bufs.items`) plus everything they spawn inside the window (served
/// from the overlay), in exact `(time, order)` sequence. The dispatch
/// log is left in `bufs.entries`/`bufs.emits` for the merge; every
/// buffer's allocation survives for the next window.
#[allow(clippy::too_many_arguments)]
fn run_group<M: PacketMeta, T: Transport<M>>(
    topo: &Topology,
    lanes: LaneMap,
    g: &mut GroupMut<'_, M, T>,
    group: u32,
    base: u64,
    wmax: SimTime,
    tracing: bool,
    bufs: &mut GroupBufs<M>,
) {
    debug_assert!(bufs.entries.is_empty() && bufs.emits.is_empty() && bufs.overlay.is_empty());
    let mut nprov: u64 = 0;
    let mut items = std::mem::take(&mut bufs.items);
    {
        let mut it = items.drain(..).peekable();
        loop {
            let take_item = match (it.peek(), bufs.overlay.peek()) {
                (Some(a), Some(o)) => (a.at, a.ord) <= (o.at, o.ord),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (at, ord, ev, hint) = if take_item {
                let a = it.next().expect("peeked");
                (a.at, a.ord, a.ev, a.hint)
            } else {
                let o = bufs.overlay.pop().expect("peeked");
                (o.at, o.ord, o.ev, None)
            };
            let mut sink = WindowSink {
                lanes,
                group,
                base,
                wmax,
                tracing,
                nprov: &mut nprov,
                overlay: &mut bufs.overlay,
                emits: &mut bufs.emits,
            };
            dispatch_event(topo, g, at, ev, hint, None, &mut sink);
            bufs.entries.push(LogEntry { at, ord, emits_end: bufs.emits.len() as u32 });
        }
    }
    bufs.items = items;
}

/// Run a window whose drained events all hit one dispatch group,
/// inline on the calling thread through [`DirectSink`] — no per-group
/// log, no provisional numbering, no merge. This replays *exactly* what
/// sequential dispatch would do: for each drained item, first pop and
/// dispatch every queued event strictly before it (an in-window spawn
/// from an earlier dispatch; equal-time spawns carry sequence numbers
/// above the drained item's and therefore follow it), then dispatch the
/// item; afterwards drain the remaining in-window spawns up to `wmax`.
/// `DirectSink` assigns sequence numbers in dispatch order, which *is*
/// sequential order, so the result — records, RNG stream, trace bytes —
/// is bit-identical to every other path. In-window spawns never carry a
/// spray decision (a cross-rack `SwitchArrive` always lands beyond the
/// lookahead window), so no RNG handle is needed.
fn run_window_fast<M: PacketMeta, T: Transport<M>>(
    topo: &Topology,
    gm: &mut GroupMut<'_, M, T>,
    bufs: &mut GroupBufs<M>,
    queue: &mut EventEngine<Ev<M>>,
    app_events: &mut Vec<(SimTime, HostId, AppEvent)>,
    mut tracer: Option<&mut FlightRecorder>,
    wmax: SimTime,
) -> (u64, SimTime) {
    let mut n = 0u64;
    let mut last_at = SimTime::ZERO;
    let mut items = std::mem::take(&mut bufs.items);
    for item in items.drain(..) {
        if item.at.as_nanos() > 0 {
            let strictly_before = SimTime::from_nanos(item.at.as_nanos() - 1);
            while let Some((at, ev)) = queue.pop_if_before(strictly_before) {
                let mut sink = DirectSink { queue, app_events, tracer: tracer.as_deref_mut() };
                dispatch_event(topo, gm, at, ev, None, None, &mut sink);
                n += 1;
            }
        }
        let mut sink = DirectSink { queue, app_events, tracer: tracer.as_deref_mut() };
        dispatch_event(topo, gm, item.at, item.ev, item.hint, None, &mut sink);
        n += 1;
        last_at = item.at;
    }
    bufs.items = items;
    while let Some((at, ev)) = queue.pop_if_before(wmax) {
        let mut sink = DirectSink { queue, app_events, tracer: tracer.as_deref_mut() };
        dispatch_event(topo, gm, at, ev, None, None, &mut sink);
        n += 1;
        last_at = at;
    }
    (n, last_at)
}

/// Run a multi-group window inline on the calling thread, in exact
/// global `(time, ord)` order through [`DirectSink`] — the
/// single-threaded engine's window path, where the per-group dispatch
/// log and the merge buy nothing (there is no parallelism to earn back
/// their cost). `drain_window` left each active group's items in
/// global order, so a best-head scan across the active groups (the
/// same shape as `merge_window`'s entry scan, but over items, before
/// dispatch instead of after) reconstructs the exact sequential
/// sequence; in-window spawns are popped from the queue around each
/// item exactly as [`run_window_fast`] does, and the same soundness
/// argument applies — equal-time spawns order behind drained items by
/// sequence number, and spawns never carry a spray decision. Consumes
/// `active`, recycling each group's buffers as it drains them.
#[allow(clippy::too_many_arguments)]
fn run_window_seq<M: PacketMeta, T: Transport<M>>(
    topo: &Topology,
    racks: &mut [RackState<M, T>],
    spine: &mut SpineState<M>,
    bufs: &mut [GroupBufs<M>],
    active: &mut Vec<usize>,
    queue: &mut EventEngine<Ev<M>>,
    app_events: &mut Vec<(SimTime, HostId, AppEvent)>,
    mut tracer: Option<&mut FlightRecorder>,
    wmax: SimTime,
) -> (u64, SimTime) {
    // Reverse each group's items so the global-order walk can `pop()`
    // true moves off the tails instead of shifting or cloning.
    for &g in active.iter() {
        bufs[g].items.reverse();
    }
    let mut n = 0u64;
    let mut last_at = SimTime::ZERO;
    loop {
        let mut i = 0;
        while i < active.len() {
            if bufs[active[i]].items.is_empty() {
                bufs[active[i]].recycle();
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let Some(&first) = active.first() else { break };
        let mut bg = first;
        if active.len() > 1 {
            let head = bufs[bg].items.last().expect("retired above");
            let mut best = (head.at, head.ord);
            for &g in &active[1..] {
                let it = bufs[g].items.last().expect("retired above");
                if (it.at, it.ord) < best {
                    best = (it.at, it.ord);
                    bg = g;
                }
            }
        }
        let item = bufs[bg].items.pop().expect("retired above");
        if item.at.as_nanos() > 0 {
            let strictly_before = SimTime::from_nanos(item.at.as_nanos() - 1);
            while let Some((at, ev)) = queue.pop_if_before(strictly_before) {
                dispatch_seq(
                    topo,
                    racks,
                    spine,
                    queue,
                    app_events,
                    tracer.as_deref_mut(),
                    at,
                    ev,
                    None,
                );
                n += 1;
            }
        }
        dispatch_seq(
            topo,
            racks,
            spine,
            queue,
            app_events,
            tracer.as_deref_mut(),
            item.at,
            item.ev,
            item.hint,
        );
        n += 1;
        last_at = item.at;
    }
    while let Some((at, ev)) = queue.pop_if_before(wmax) {
        dispatch_seq(topo, racks, spine, queue, app_events, tracer.as_deref_mut(), at, ev, None);
        n += 1;
        last_at = at;
    }
    (n, last_at)
}

/// Dispatch one event directly into the queue, picking the owning
/// group per event — [`run_window_seq`]'s per-event body. No RNG
/// handle: window items carry pre-drawn spray hints and in-window
/// spawns never spray.
#[allow(clippy::too_many_arguments)]
fn dispatch_seq<M: PacketMeta, T: Transport<M>>(
    topo: &Topology,
    racks: &mut [RackState<M, T>],
    spine: &mut SpineState<M>,
    queue: &mut EventEngine<Ev<M>>,
    app_events: &mut Vec<(SimTime, HostId, AppEvent)>,
    tracer: Option<&mut FlightRecorder>,
    at: SimTime,
    ev: Ev<M>,
    hint: Option<u32>,
) {
    let gidx = group_of_ev(topo, &ev);
    let mut gm =
        if gidx < racks.len() { GroupMut::Rack(&mut racks[gidx]) } else { GroupMut::Spine(spine) };
    let mut sink = DirectSink { queue, app_events, tracer };
    dispatch_event(topo, &mut gm, at, ev, hint, None, &mut sink);
}

/// Merge the groups' dispatch logs back into one global order and apply
/// their emissions: application events append in `(time, seq)` order and
/// deferred events receive exactly the sequence numbers sequential
/// dispatch would have assigned. Consumes `active` (the groups
/// `drain_window` filled), recycling exactly those groups' logs — idle
/// groups are never touched, so merge cost scales with the window's
/// footprint, not the fabric size. Returns `(events_merged, last_time)`.
fn merge_window<M: PacketMeta>(
    queue: &mut EventEngine<Ev<M>>,
    app_events: &mut Vec<(SimTime, HostId, AppEvent)>,
    bufs: &mut [GroupBufs<M>],
    active: &mut Vec<usize>,
    base: u64,
    mut tracer: Option<&mut FlightRecorder>,
) -> (u64, SimTime) {
    let EventEngine::Hierarchical(q) = queue else {
        unreachable!("window dispatch requires the calendar engine")
    };
    // `provs[i]` (per group): final sequence number of the group's i-th
    // provisional (in-window) event, filled in creation order, which the
    // merge walk visits parents-first.
    for b in bufs.iter_mut() {
        debug_assert!(b.provs.is_empty() && b.next_entry == 0 && b.next_emit == 0);
    }
    let mut merged = 0u64;
    let mut last_at = SimTime::ZERO;
    loop {
        // Retire exhausted groups (recycling their buffers) so the
        // best-entry scan below only ever walks groups with log entries
        // left — and degenerates to no comparisons at all once a single
        // source remains.
        let mut i = 0;
        while i < active.len() {
            let b = &mut bufs[active[i]];
            if b.next_entry >= b.entries.len() {
                b.recycle();
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let Some(&first) = active.first() else { break };
        let mut g = first;
        if active.len() > 1 {
            let mut best: Option<(SimTime, u64)> = None;
            for &cand in active.iter() {
                let b = &bufs[cand];
                let e = &b.entries[b.next_entry];
                let ord = if e.ord < base {
                    e.ord
                } else {
                    *b.provs
                        .get((e.ord - base) as usize)
                        .expect("provisional event merged before its parent")
                };
                if best.is_none_or(|bk| (e.at, ord) < bk) {
                    best = Some((e.at, ord));
                    g = cand;
                }
            }
        }
        let b = &mut bufs[g];
        let at = b.entries[b.next_entry].at;
        let emits_end = b.entries[b.next_entry].emits_end as usize;
        b.next_entry += 1;
        for i in b.next_emit..emits_end {
            // Move the emission out of the flat buffer; `Local` is a
            // payload-free placeholder, so the swap is cheap.
            match std::mem::replace(&mut b.emits[i], Emit::Local) {
                Emit::Local => {
                    let s = q.assign_seq();
                    b.provs.push(s);
                }
                Emit::Defer { lane, at: eat, ev } => {
                    let s = q.assign_seq();
                    q.schedule_with_seq(lane, eat, s, ev);
                }
                Emit::App { host, ev } => app_events.push((at, host, ev)),
                Emit::Trace(ev) => {
                    if let Some(t) = tracer.as_deref_mut() {
                        t.record(at, ev);
                    }
                }
            }
        }
        b.next_emit = emits_end;
        merged += 1;
        last_at = at;
    }
    (merged, last_at)
}

/// Summary of one `run_until` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutput {
    /// Number of events processed.
    pub events: u64,
}

/// Wall-clock profile of the engine's dispatch phases, collected only
/// with the `engine-profile` cargo feature (all fields stay zero
/// otherwise). Times come from the host's monotonic clock — they are
/// **not** deterministic and exist to find engine bottlenecks, never to
/// produce results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Conservative windows (window engines) or `drive_events` batches
    /// (sequential engines) timed.
    pub samples: u64,
    /// Nanoseconds draining window events out of the calendar queue,
    /// including spray pre-drawing.
    pub drain_ns: u64,
    /// Nanoseconds dispatching group sub-windows. Inline mode: the
    /// per-group run loop. Threaded mode: the main thread's
    /// ship-and-collect span, i.e. the wall time each window spent on
    /// worker threads.
    pub run_ns: u64,
    /// Nanoseconds merging group logs back into global `(time, seq)`
    /// order.
    pub merge_ns: u64,
    /// Nanoseconds inside sequential (non-window) dispatch loops.
    pub dispatch_ns: u64,
    /// Window batches dispatched: each batch is one bookkeeping
    /// round-trip covering up to K consecutive windows.
    pub batches: u64,
    /// Events dispatched across all batches (per-batch density is
    /// `batch_events / batches`).
    pub batch_events: u64,
    /// Nanoseconds the calendar engine spent sorting epoch buckets (the
    /// engine's dominant cost at scale; zero on the legacy heap).
    pub epoch_sort_ns: u64,
}

/// The simulated network: fabric plus one transport per host, partitioned
/// into per-rack dispatch groups and a spine boundary group.
pub struct Network<M: PacketMeta, T: Transport<M>> {
    topo: Topology,
    cfg: NetworkConfig,
    now: SimTime,
    queue: EventEngine<Ev<M>>,
    racks: Vec<RackState<M, T>>,
    spine: SpineState<M>,
    rng: StdRng,
    app_events: Vec<(SimTime, HostId, AppEvent)>,
    events_processed: u64,
    /// `Some(worker_threads)` when conservative-window dispatch is
    /// active (resolved to >= 1; `1` runs windows inline).
    par_threads: Option<u32>,
    /// Windows batched per bookkeeping round-trip; `0` means adaptive
    /// (sized at runtime from drained-event density). Resolved from the
    /// engine's `batch` field, falling back to `HOMA_SIM_BATCH`.
    par_batch: u32,
    /// Cross-group lookahead: [`Topology::min_forward_delay`].
    lookahead: SimDuration,
    win: WinCounters,
    /// One recycled buffer set per dispatch group (racks + spine):
    /// windows drain into, dispatch from, and merge out of these, so the
    /// steady-state window loop performs no heap allocation.
    window_bufs: Vec<GroupBufs<M>>,
    /// Recycled scratch: indices of the groups the current window
    /// actually drained into (filled by `drain_window`, consumed by the
    /// run/merge stages or the single-group fast path).
    win_active: Vec<usize>,
    /// The flight recorder, when [`Self::enable_trace`] installed one.
    /// `None` costs at most one branch per guarded emit site; without
    /// the `trace` feature the sites are compiled out entirely.
    tracer: Option<FlightRecorder>,
    /// Dispatch-phase wall times (only written under `engine-profile`).
    profile: EngineProfile,
}

impl<M: PacketMeta, T: Transport<M>> Network<M, T> {
    /// Build a network over `topo` with a transport per host produced by
    /// `make_transport`.
    pub fn new(
        topo: Topology,
        cfg: NetworkConfig,
        mut make_transport: impl FnMut(HostId) -> T,
    ) -> Self {
        topology::validate(&topo);
        let racks: Vec<RackState<M, T>> = (0..topo.racks)
            .map(|r| {
                let base_host = r * topo.hosts_per_rack;
                let n = topo.hosts_per_rack as usize;
                let mut transports = Vec::with_capacity(n);
                let mut host_ports = Vec::with_capacity(n);
                for i in 0..topo.hosts_per_rack {
                    let h = HostId(base_host + i);
                    transports.push(make_transport(h));
                    host_ports.push(Port::new(
                        // Host NIC egress: the transport is the queue
                        // (pull model); discipline here is irrelevant
                        // but harmless.
                        QueueDiscipline::strict8(u64::MAX),
                        topo.host_link_bps,
                        NodeId::Tor(r),
                        PortClass::HostUp,
                    ));
                }
                let mut ports = Vec::with_capacity(topo.tor_ports() as usize);
                for i in 0..topo.hosts_per_rack {
                    let h = HostId(base_host + i);
                    ports.push(Port::new(
                        cfg.tor_down,
                        topo.host_link_bps,
                        NodeId::Host(h),
                        PortClass::TorDown,
                    ));
                }
                for j in 0..topo.tor_uplinks() {
                    let (spine, _) = topo.tor_uplink_peer(r, j);
                    ports.push(Port::new(
                        cfg.tor_up,
                        topo.uplink_bps,
                        NodeId::Spine(spine),
                        PortClass::TorUp,
                    ));
                }
                RackState {
                    base_host,
                    transports,
                    host_ports,
                    paused: vec![false; n],
                    pause_bufs: (0..n).map(|_| Vec::new()).collect(),
                    tor: SwitchNode { ports, spray: 0 },
                    scratch: TransportActions::new(),
                    counters: GroupCounters::default(),
                }
            })
            .collect();

        // Upper-tier switches. Leaf–spine: every spine has one downlink
        // per rack. Fat tree: aggregation switch `a` (pod `a / (k/2)`)
        // has k/2 downlinks to its pod's edges then k/2 uplinks to its
        // core column; core `c` has one downlink per pod, to aggregation
        // switch `c / (k/2)` of that pod.
        let spine_switch = |s: u32| -> SwitchNode<M> {
            let ports = match topo.kind {
                FabricKind::LeafSpine => (0..topo.racks)
                    .map(|r| {
                        Port::new(
                            cfg.spine_down,
                            topo.uplink_bps,
                            NodeId::Tor(r),
                            PortClass::SpineDown,
                        )
                    })
                    .collect(),
                FabricKind::FatTree { k } => {
                    let half = k / 2;
                    let naggs = topo.num_aggs();
                    if s < naggs {
                        let pod = s / half;
                        let col = s % half;
                        let mut ports = Vec::with_capacity(k as usize);
                        for i in 0..half {
                            ports.push(Port::new(
                                cfg.spine_down,
                                topo.uplink_bps,
                                NodeId::Tor(pod * half + i),
                                PortClass::SpineDown,
                            ));
                        }
                        for j in 0..half {
                            // Agg → core carries the same up-facing role
                            // (and discipline) as TOR → agg.
                            ports.push(Port::new(
                                cfg.tor_up,
                                topo.uplink_bps,
                                NodeId::Spine(naggs + col * half + j),
                                PortClass::TorUp,
                            ));
                        }
                        ports
                    } else {
                        let col = (s - naggs) / half;
                        (0..k)
                            .map(|pod| {
                                Port::new(
                                    cfg.spine_down,
                                    topo.uplink_bps,
                                    NodeId::Spine(pod * half + col),
                                    PortClass::SpineDown,
                                )
                            })
                            .collect()
                    }
                }
            };
            SwitchNode { ports, spray: 0 }
        };
        let spine = SpineState {
            spines: (0..topo.spines).map(spine_switch).collect(),
            counters: GroupCounters::default(),
        };

        let rng = StdRng::seed_from_u64(cfg.seed);
        // One event lane per host, plus one per TOR (batching all of a
        // rack's port events) and one per spine switch. Calendar buckets
        // are sized from the fabric's minimum forward delay.
        let lanes = topo.num_hosts() + topo.racks + topo.spines;
        let lookahead = topo.min_forward_delay();
        let queue = EventEngine::with_bucket_width(cfg.engine, lanes, lookahead.as_nanos().max(1));
        // Conservative windows need a positive lookahead (with zero, a
        // same-instant cross-group emission would be possible); fall back
        // to sequential dispatch otherwise, and when the `parallel`
        // feature is compiled out.
        let (par_threads, par_batch) = match cfg.engine {
            EngineKind::ParallelHier { threads, batch }
                if cfg!(feature = "parallel") && lookahead.as_nanos() > 0 =>
            {
                let n = if threads == 0 {
                    std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1)
                } else {
                    threads
                };
                // Batch resolution: explicit engine field, else the
                // HOMA_SIM_BATCH environment knob, else 0 = adaptive.
                // Whatever wins, results are bit-identical — the batch
                // size only moves bookkeeping boundaries.
                let b = if batch == 0 {
                    std::env::var("HOMA_SIM_BATCH")
                        .ok()
                        .and_then(|v| v.parse::<u32>().ok())
                        .unwrap_or(0)
                } else {
                    batch
                };
                (Some(n.max(1)), b)
            }
            _ => (None, 0),
        };
        let ngroups = racks.len() + 1;
        Network {
            queue,
            topo,
            cfg,
            now: topology::T0,
            racks,
            spine,
            rng,
            app_events: Vec::new(),
            events_processed: 0,
            par_threads,
            par_batch,
            lookahead,
            win: WinCounters::default(),
            window_bufs: (0..ngroups).map(|_| GroupBufs::default()).collect(),
            win_active: Vec::new(),
            tracer: None,
            profile: EngineProfile::default(),
        }
    }

    /// Install a [`FlightRecorder`] retaining at most `cap` records
    /// (see [`FlightRecorder::DEFAULT_CAP`]). Tracing changes **no**
    /// simulation state: event counts, statistics, and delivery times
    /// are bit-identical with tracing on or off, and the recorded byte
    /// stream is identical across every engine kind. Without the
    /// `trace` cargo feature the recorder is installed but the fabric
    /// never writes to it (the emit sites compile to nothing).
    pub fn enable_trace(&mut self, cap: usize) {
        self.tracer = Some(FlightRecorder::new(cap));
    }

    /// Whether a flight recorder is installed *and* the `trace` feature
    /// is compiled in.
    pub fn trace_enabled(&self) -> bool {
        cfg!(feature = "trace") && self.tracer.is_some()
    }

    /// Drain the recorded trace, in emission order (global `(time,
    /// seq)` dispatch order). Empty when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.tracer.as_mut().map(FlightRecorder::take).unwrap_or_default()
    }

    /// Oldest trace records evicted because the recorder's ring filled.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, FlightRecorder::dropped)
    }

    /// Wall-clock dispatch-phase profile. All zeros unless the
    /// `engine-profile` cargo feature is enabled.
    pub fn engine_profile(&self) -> EngineProfile {
        let mut p = self.profile;
        p.epoch_sort_ns = self.queue.epoch_sort_ns();
        p
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology this network was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn lane_map(&self) -> LaneMap {
        LaneMap {
            hosts: self.topo.num_hosts(),
            hosts_per_rack: self.topo.hosts_per_rack,
            racks: self.topo.racks,
        }
    }

    /// Read access to a host's transport.
    pub fn transport(&self, h: HostId) -> &T {
        let rack = &self.racks[self.topo.rack_of(h) as usize];
        &rack.transports[self.topo.index_in_rack(h) as usize]
    }

    /// Mutate a host's transport through a closure; any actions it records
    /// (timers, tx kicks, app events) are applied afterwards.
    pub fn with_transport<R>(
        &mut self,
        h: HostId,
        f: impl FnOnce(&mut T, SimTime, &mut TransportActions) -> R,
    ) -> R {
        let now = self.now;
        let mut act = TransportActions::new();
        let r = {
            let rack = &mut self.racks[self.topo.rack_of(h) as usize];
            let i = rack.slot(h);
            f(&mut rack.transports[i], now, &mut act)
        };
        let Self { topo, racks, queue, app_events, tracer, .. } = self;
        let rack = &mut racks[topo.rack_of(h) as usize];
        let mut sink = DirectSink { queue, app_events, tracer: tracer.as_mut() };
        apply_actions(rack, topo, now, h, act, &mut sink);
        r
    }

    /// Begin a one-way message from `src` to `dst` at the current time.
    pub fn inject_message(&mut self, src: HostId, dst: HostId, len: u64, tag: u64) {
        assert_ne!(src, dst, "self-messages not modelled");
        if cfg!(feature = "trace") {
            if let Some(t) = self.tracer.as_mut() {
                t.record(self.now, TraceEvent::MsgStart { src, dst, len, tag });
            }
        }
        self.with_transport(src, |t, now, act| t.inject_message(now, dst, len, tag, act));
    }

    /// Begin an RPC from `client` to `server` at the current time.
    pub fn inject_rpc(&mut self, client: HostId, server: HostId, req_len: u64, tag: u64) {
        assert_ne!(client, server, "self-RPCs not modelled");
        self.with_transport(client, |t, now, act| t.inject_rpc(now, server, req_len, tag, act));
    }

    /// Send an RPC response from `server` back to `client`.
    pub fn inject_response(&mut self, server: HostId, client: HostId, rpc: u64, resp_len: u64) {
        self.with_transport(server, |t, now, act| {
            t.inject_response(now, client, rpc, resp_len, act)
        });
    }

    fn dispatch_direct(&mut self, ev: Ev<M>) {
        let now = self.now;
        let Self { topo, racks, spine, queue, rng, app_events, tracer, .. } = self;
        let gidx = group_of_ev(topo, &ev);
        let mut gm = if gidx < racks.len() {
            GroupMut::Rack(&mut racks[gidx])
        } else {
            GroupMut::Spine(spine)
        };
        let mut sink = DirectSink { queue, app_events, tracer: tracer.as_mut() };
        dispatch_event(topo, &mut gm, now, ev, None, Some(rng), &mut sink);
    }

    /// Run exactly one conservative window. When every drained event
    /// hits one dispatch group — the overwhelmingly common case at ~2–3
    /// events per window — the whole window runs inline through
    /// [`run_window_fast`], skipping the log/merge machinery. Returns
    /// `(events, last_time, took_fast_path)`, or `None` if nothing was
    /// pending at or before `limit`. Clock and counter bookkeeping is
    /// the caller's job ([`Self::note_batch`]).
    fn run_window_once(&mut self, limit: SimTime) -> Option<(u64, SimTime, bool)> {
        let lanes = self.lane_map();
        let cfg = WindowCfg { lanes, lookahead: self.lookahead };
        #[cfg(feature = "engine-profile")]
        let t0 = std::time::Instant::now();
        let WindowDrain { base: _, wmax } = {
            let Self { topo, queue, rng, window_bufs, win_active, .. } = self;
            drain_window(topo, queue, rng, cfg, limit, window_bufs, win_active)?
        };
        #[cfg(feature = "engine-profile")]
        let t1 = std::time::Instant::now();
        let n;
        let last_at;
        let fast = self.win_active.len() == 1;
        if fast {
            let Self {
                topo, racks, spine, queue, app_events, window_bufs, win_active, tracer, ..
            } = &mut *self;
            let g = win_active[0];
            win_active.clear();
            let mut gm = if g < racks.len() {
                GroupMut::Rack(&mut racks[g])
            } else {
                GroupMut::Spine(spine)
            };
            let r = run_window_fast(
                topo,
                &mut gm,
                &mut window_bufs[g],
                queue,
                app_events,
                tracer.as_mut(),
                wmax,
            );
            n = r.0;
            last_at = r.1;
            #[cfg(feature = "engine-profile")]
            {
                self.profile.samples += 1;
                self.profile.drain_ns += (t1 - t0).as_nanos() as u64;
                self.profile.run_ns += t1.elapsed().as_nanos() as u64;
            }
        } else {
            // Single-threaded engine: replay the whole window inline in
            // exact global order — the per-group log and merge only pay
            // for themselves when workers run groups concurrently.
            let r = {
                let Self {
                    topo,
                    racks,
                    spine,
                    queue,
                    app_events,
                    window_bufs,
                    win_active,
                    tracer,
                    ..
                } = &mut *self;
                run_window_seq(
                    topo,
                    racks,
                    spine,
                    window_bufs,
                    win_active,
                    queue,
                    app_events,
                    tracer.as_mut(),
                    wmax,
                )
            };
            n = r.0;
            last_at = r.1;
            #[cfg(feature = "engine-profile")]
            {
                self.profile.samples += 1;
                self.profile.drain_ns += (t1 - t0).as_nanos() as u64;
                self.profile.run_ns += t1.elapsed().as_nanos() as u64;
            }
        }
        debug_assert!(n > 0, "window drained at least one event");
        Some((n, last_at, fast))
    }

    /// Roll one batch of windows into the clock and counters. Batches
    /// are bookkeeping only: their size derives from deterministic
    /// counters (never wall time) and can never change event order.
    fn note_batch(&mut self, windows: u64, events: u64, max_one: u64, fast: u64, last_at: SimTime) {
        self.now = last_at.max(self.now);
        self.events_processed += events;
        self.win.windows += windows;
        self.win.window_events += events;
        self.win.max_window_events = self.win.max_window_events.max(max_one);
        self.win.fast_windows += fast;
        self.win.batches += 1;
        #[cfg(feature = "engine-profile")]
        {
            self.profile.batches += 1;
            self.profile.batch_events += events;
        }
    }

    /// Windows per bookkeeping batch: the explicit engine/`HOMA_SIM_BATCH`
    /// setting, or an adaptive size targeting ~4096 drained events per
    /// batch (dense incast windows batch less, sparse windows batch
    /// more). Derived only from deterministic event counters, so the
    /// adaptive choice replays identically run-to-run.
    fn batch_size(&self) -> u64 {
        if self.par_batch > 0 {
            return self.par_batch as u64;
        }
        let w = self.win.windows.max(1);
        let avg = (self.win.window_events / w).max(1);
        (4096 / avg).clamp(1, 64)
    }

    /// The window loop with scoped worker threads. The main thread
    /// drains and merges; a window's group sub-runs are shipped to
    /// workers only when the window is big enough to amortize the
    /// handoff — single-group windows run through [`run_window_fast`]
    /// and small multi-group windows run inline, both on the calling
    /// thread. Each group's mutable state lives in a slot on the main
    /// thread and rides a [`GroupJob`] to worker `g % threads` while
    /// that group's sub-window runs, so affinity (and cache warmth) is
    /// preserved without giving workers permanent ownership. Workers
    /// spawn lazily on the first shipped window: calls dominated by the
    /// fast/inline paths never pay thread spawn at all.
    fn run_windows_threaded(&mut self, limit: SimTime, threads: usize) -> u64 {
        use std::sync::mpsc;
        // Don't set up the scope when nothing is pending in the window
        // (drivers call `run_until` once per injected message, and many
        // of those calls are empty).
        if self.queue.peek_time().is_none_or(|t| t > limit) {
            return 0;
        }
        let lanes = self.lane_map();
        let tracing = self.trace_enabled();
        let cfg = WindowCfg { lanes, lookahead: self.lookahead };
        let par_batch = self.par_batch;
        let win0 = self.win;
        let mut total = 0u64;
        let mut windows = 0u64;
        let mut maxev = 0u64;
        let mut fastn = 0u64;
        let mut batches = 0u64;
        let mut in_batch = 0u64;
        let mut last_at = SimTime::ZERO;
        #[cfg(feature = "engine-profile")]
        let mut prof = EngineProfile::default();
        {
            let Self {
                topo,
                racks,
                spine,
                queue,
                rng,
                app_events,
                window_bufs,
                win_active,
                tracer,
                ..
            } = &mut *self;
            let topo: &Topology = topo;
            // Group g lives in `slots[g]` while on the main thread and
            // rides its job while a worker runs its sub-window.
            let mut slots: Vec<Option<GroupMut<'_, M, T>>> =
                racks.iter_mut().map(|r| Some(GroupMut::Rack(r))).collect();
            slots.push(Some(GroupMut::Spine(spine)));

            std::thread::scope(|s| {
                // One result channel *per worker*: if a worker panics
                // mid-window, its channel disconnects and the collection
                // loop below fails fast instead of blocking forever on a
                // shared channel other workers keep open (the scope then
                // propagates the original worker panic on unwind).
                let mut job_txs: Vec<mpsc::Sender<GroupJob<'_, M, T>>> = Vec::new();
                let mut res_rxs: Vec<mpsc::Receiver<GroupJob<'_, M, T>>> = Vec::new();
                let mut shipped: Vec<usize> = vec![0; threads];

                // Not a `while let`: the profiling timestamps must
                // bracket the drain call itself.
                #[allow(clippy::while_let_loop)]
                loop {
                    #[cfg(feature = "engine-profile")]
                    let t0 = std::time::Instant::now();
                    let Some(WindowDrain { base, wmax }) =
                        drain_window(topo, queue, rng, cfg, limit, window_bufs, win_active)
                    else {
                        break;
                    };
                    #[cfg(feature = "engine-profile")]
                    let t1 = std::time::Instant::now();
                    let n;
                    let at;
                    if win_active.len() == 1 {
                        let g = win_active[0];
                        win_active.clear();
                        let gm = slots[g].as_mut().expect("group slot on main thread");
                        let r = run_window_fast(
                            topo,
                            gm,
                            &mut window_bufs[g],
                            queue,
                            app_events,
                            tracer.as_mut(),
                            wmax,
                        );
                        n = r.0;
                        at = r.1;
                        fastn += 1;
                        #[cfg(feature = "engine-profile")]
                        {
                            prof.samples += 1;
                            prof.drain_ns += (t1 - t0).as_nanos() as u64;
                            prof.run_ns += t1.elapsed().as_nanos() as u64;
                        }
                    } else {
                        let drained: usize =
                            win_active.iter().map(|&g| window_bufs[g].items.len()).sum();
                        if drained < INLINE_WINDOW_EVENTS {
                            // Too little work to amortize a handoff: run
                            // every group's sub-window on this thread.
                            for &g in win_active.iter() {
                                let gm = slots[g].as_mut().expect("group slot on main thread");
                                run_group(
                                    topo,
                                    lanes,
                                    gm,
                                    g as u32,
                                    base,
                                    wmax,
                                    tracing,
                                    &mut window_bufs[g],
                                );
                            }
                        } else {
                            if job_txs.is_empty() {
                                for _ in 0..threads {
                                    let (tx, rx) = mpsc::channel::<GroupJob<'_, M, T>>();
                                    let (res_tx, res_rx) = mpsc::channel::<GroupJob<'_, M, T>>();
                                    job_txs.push(tx);
                                    res_rxs.push(res_rx);
                                    s.spawn(move || {
                                        while let Ok(mut job) = rx.recv() {
                                            run_group(
                                                topo,
                                                lanes,
                                                &mut job.gm,
                                                job.gidx as u32,
                                                job.base,
                                                job.wmax,
                                                tracing,
                                                &mut job.bufs,
                                            );
                                            if res_tx.send(job).is_err() {
                                                return;
                                            }
                                        }
                                    });
                                }
                            }
                            // Ship each active group's state and buffers
                            // (items inside) to its worker; they come
                            // back with the log filled.
                            shipped.iter_mut().for_each(|c| *c = 0);
                            for &g in win_active.iter() {
                                let w = g % threads;
                                let job = GroupJob {
                                    gidx: g,
                                    base,
                                    wmax,
                                    bufs: std::mem::take(&mut window_bufs[g]),
                                    gm: slots[g].take().expect("group slot on main thread"),
                                };
                                job_txs[w].send(job).expect("window worker exited early");
                                shipped[w] += 1;
                            }
                            for (w, &cnt) in shipped.iter().enumerate() {
                                for _ in 0..cnt {
                                    let job = res_rxs[w].recv().expect("window worker panicked");
                                    let GroupJob { gidx, bufs, gm, .. } = job;
                                    window_bufs[gidx] = bufs;
                                    slots[gidx] = Some(gm);
                                }
                            }
                        }
                        #[cfg(feature = "engine-profile")]
                        let t2 = std::time::Instant::now();
                        let r = merge_window(
                            queue,
                            app_events,
                            window_bufs,
                            win_active,
                            base,
                            tracer.as_mut(),
                        );
                        n = r.0;
                        at = r.1;
                        #[cfg(feature = "engine-profile")]
                        {
                            prof.samples += 1;
                            prof.drain_ns += (t1 - t0).as_nanos() as u64;
                            prof.run_ns += (t2 - t1).as_nanos() as u64;
                            prof.merge_ns += t2.elapsed().as_nanos() as u64;
                        }
                    }
                    total += n;
                    windows += 1;
                    maxev = maxev.max(n);
                    last_at = at.max(last_at);
                    // Deterministic batch bookkeeping, shared with the
                    // inline loop (`batch_size` reads only counters).
                    in_batch += 1;
                    let k = if par_batch > 0 {
                        par_batch as u64
                    } else {
                        let w = (win0.windows + windows).max(1);
                        let avg = ((win0.window_events + total) / w).max(1);
                        (4096 / avg).clamp(1, 64)
                    };
                    if in_batch >= k {
                        batches += 1;
                        in_batch = 0;
                    }
                }
                drop(job_txs);
            });
        }
        if in_batch > 0 {
            batches += 1;
        }
        self.now = last_at.max(self.now);
        self.events_processed += total;
        self.win.windows += windows;
        self.win.window_events += total;
        self.win.max_window_events = self.win.max_window_events.max(maxev);
        self.win.fast_windows += fastn;
        self.win.batches += batches;
        #[cfg(feature = "engine-profile")]
        {
            self.profile.samples += prof.samples;
            self.profile.drain_ns += prof.drain_ns;
            self.profile.run_ns += prof.run_ns;
            self.profile.merge_ns += prof.merge_ns;
            self.profile.batches += batches;
            self.profile.batch_events += total;
        }
        total
    }

    /// Process all events up to and including time `t`, then advance the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) -> StepOutput {
        let out = self.drive_events(t);
        if t > self.now {
            self.now = t;
        }
        out
    }

    /// Run until the event queue drains completely (use with care on open
    /// workloads) or `limit` is reached. Unlike
    /// [`run_until`](Self::run_until), the clock is left at the last
    /// dispatched event rather than advanced to `limit`.
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> StepOutput {
        self.drive_events(limit)
    }

    /// Dispatch every event at or before `limit` on whichever engine mode
    /// is active — the one loop `run_until` and `run_to_quiescence`
    /// share.
    fn drive_events(&mut self, limit: SimTime) -> StepOutput {
        let mut out = StepOutput::default();
        match self.par_threads {
            Some(threads) if threads > 1 => {
                out.events += self.run_windows_threaded(limit, threads as usize);
            }
            Some(_) => {
                // Inline window mode, batched: run up to K consecutive
                // windows per bookkeeping rollup so the clock/counter
                // updates amortize across the batch. Batch size moves
                // only bookkeeping boundaries, never event order.
                loop {
                    let k = self.batch_size();
                    let mut windows = 0u64;
                    let mut events = 0u64;
                    let mut maxev = 0u64;
                    let mut fast = 0u64;
                    let mut last_at = SimTime::ZERO;
                    while windows < k {
                        let Some((n, at, was_fast)) = self.run_window_once(limit) else {
                            break;
                        };
                        windows += 1;
                        events += n;
                        maxev = maxev.max(n);
                        fast += was_fast as u64;
                        last_at = at.max(last_at);
                    }
                    if windows == 0 {
                        break;
                    }
                    self.note_batch(windows, events, maxev, fast, last_at);
                    out.events += events;
                    if windows < k {
                        break;
                    }
                }
            }
            None => {
                #[cfg(feature = "engine-profile")]
                let t0 = std::time::Instant::now();
                while let Some((at, ev)) = self.queue.pop_if_before(limit) {
                    debug_assert!(at >= self.now, "event in the past");
                    self.now = at;
                    self.dispatch_direct(ev);
                    out.events += 1;
                    self.events_processed += 1;
                }
                #[cfg(feature = "engine-profile")]
                if out.events > 0 {
                    self.profile.samples += 1;
                    self.profile.dispatch_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        out
    }

    /// Process the next pending event *batch* — every event at the
    /// earliest pending timestamp at or before `limit`, plus anything
    /// dispatched there that lands at the same instant — and return that
    /// timestamp (`now` afterwards). One queue probe replaces the
    /// `next_event_time`-then-`run_until` pair the experiment drivers
    /// used to do; returns `None` (leaving `now` untouched) when nothing
    /// is pending in the window.
    pub fn run_next_before(&mut self, limit: SimTime) -> Option<SimTime> {
        // One code path for every engine, parallel included: a
        // single-timestamp step has nothing to parallelize, and direct
        // sequential dispatch is bit-identical to window dispatch by the
        // engine contract — so the window machinery (drain, per-group
        // log, merge) would be pure overhead here. Stepping drivers call
        // this millions of times; it must cost exactly what the
        // sequential engines pay. `now` advances identically across
        // engines, which drivers rely on when injecting between steps.
        let (at, ev) = self.queue.pop_if_before(limit)?;
        self.now = at;
        self.dispatch_direct(ev);
        self.events_processed += 1;
        let mut n = 1u64;
        while let Some((at2, ev2)) = self.queue.pop_if_before(at) {
            self.now = at2;
            self.dispatch_direct(ev2);
            self.events_processed += 1;
            n += 1;
        }
        self.now = at;
        if self.par_threads.is_some() {
            // Account the step as one inline fast window so the window
            // counters stay meaningful for stepping-heavy drivers.
            self.win.windows += 1;
            self.win.window_events += n;
            self.win.max_window_events = self.win.max_window_events.max(n);
            self.win.fast_windows += 1;
            self.win.batches += 1;
        }
        Some(at)
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Behavior counters of the underlying event engine, including the
    /// conservative-window counters when parallel dispatch is active.
    pub fn engine_stats(&self) -> EngineStats {
        let mut s = self.queue.stats();
        s.windows = self.win.windows;
        s.window_events = self.win.window_events;
        s.max_window_events = self.win.max_window_events;
        s.fast_windows = self.win.fast_windows;
        s.batches = self.win.batches;
        // The queue's own counter covers epoch-bucket trims; add the
        // window buffers' trims on top.
        s.buffer_trims += self.window_bufs.iter().map(|b| b.trims).sum::<u64>();
        s
    }

    /// Drain application events accumulated since the last call.
    pub fn take_app_events(&mut self) -> Vec<(SimTime, HostId, AppEvent)> {
        std::mem::take(&mut self.app_events)
    }

    /// True when host `h`'s TOR→host downlink is idle (nothing serializing,
    /// nothing queued). Used by the Figure 16 wasted-bandwidth probe.
    pub fn downlink_idle(&self, h: HostId) -> bool {
        let r = self.topo.rack_of(h) as usize;
        let p = self.topo.index_in_rack(h) as usize;
        let port = &self.racks[r].tor.ports[p];
        !port.busy() && port.queue.is_empty()
    }

    /// True when host `h`'s uplink is currently serializing a packet.
    pub fn uplink_busy(&self, h: HostId) -> bool {
        let rack = &self.racks[self.topo.rack_of(h) as usize];
        rack.host_ports[self.topo.index_in_rack(h) as usize].busy()
    }

    /// Utilization of host `h`'s TOR→host downlink so far.
    pub fn downlink_utilization(&self, h: HostId) -> f64 {
        let r = self.topo.rack_of(h) as usize;
        let p = self.topo.index_in_rack(h) as usize;
        self.racks[r].tor.ports[p].stats.utilization(self.now)
    }

    /// Total wire bytes transmitted on host uplinks per priority level
    /// (Figure 21's traffic-by-priority accounting).
    pub fn uplink_bytes_by_prio(&self) -> [u64; 8] {
        let mut out = [0u64; 8];
        for rack in &self.racks {
            for p in &rack.host_ports {
                for (i, b) in p.stats.bytes_by_prio.iter().enumerate() {
                    out[i] += b;
                }
            }
        }
        out
    }

    /// Install a declarative fault plan: each fault becomes an event on
    /// the affected node's lane, so fault-laden runs replay bit-identically
    /// on every engine. Composite faults (whole-rack / whole-spine
    /// outages) expand into one event per member link at the same
    /// instant, in a fixed canonical order. May be called repeatedly;
    /// faults must not be scheduled in the past.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (at, fault) in plan.sorted_events() {
            assert!(at >= self.now, "fault scheduled in the past: {fault:?} at {at:?}");
            for (node, port, action) in self.resolve_fault(fault) {
                let lane = lane_of(&self.topo, node);
                self.queue.schedule(lane, at, Ev::Fault { node, port, action });
            }
        }
    }

    /// Every egress port a whole-rack outage touches, in canonical order:
    /// per host its uplink then its downlink, then per TOR uplink the
    /// uplink itself and the upper switch's downlink into the rack.
    fn rack_member_ports(&self, rack: u32) -> Vec<(NodeId, u32)> {
        assert!(rack < self.topo.racks, "no such rack {rack}");
        let mut out = Vec::new();
        for i in 0..self.topo.hosts_per_rack {
            let h = HostId(rack * self.topo.hosts_per_rack + i);
            out.push((NodeId::Host(h), 0));
            out.push((NodeId::Tor(rack), i));
        }
        for j in 0..self.topo.tor_uplinks() {
            let (spine, down) = self.topo.tor_uplink_peer(rack, j);
            out.push((NodeId::Tor(rack), self.topo.hosts_per_rack + j));
            out.push((NodeId::Spine(spine), down));
        }
        out
    }

    /// Every egress port a whole-spine (upper-switch) outage touches, in
    /// canonical order: each of the switch's links as (its own port, the
    /// peer's port back). On a fat tree `spine` may be an aggregation
    /// switch (pod edge links + core uplinks) or a core (one link per
    /// pod).
    fn spine_member_ports(&self, spine: u32) -> Vec<(NodeId, u32)> {
        assert!(spine < self.topo.spines, "no such spine {spine}");
        let mut out = Vec::new();
        match self.topo.kind {
            FabricKind::LeafSpine => {
                for r in 0..self.topo.racks {
                    out.push((NodeId::Spine(spine), r));
                    out.push((NodeId::Tor(r), self.topo.hosts_per_rack + spine));
                }
            }
            FabricKind::FatTree { k } => {
                let half = k / 2;
                let naggs = self.topo.num_aggs();
                if spine < naggs {
                    let (pod, col) = (spine / half, spine % half);
                    for i in 0..half {
                        out.push((NodeId::Spine(spine), i));
                        out.push((NodeId::Tor(pod * half + i), self.topo.hosts_per_rack + col));
                    }
                    for j in 0..half {
                        out.push((NodeId::Spine(spine), half + j));
                        out.push((NodeId::Spine(naggs + col * half + j), pod));
                    }
                } else {
                    let cc = spine - naggs;
                    let (col, j) = (cc / half, cc % half);
                    for pod in 0..k {
                        out.push((NodeId::Spine(spine), pod));
                        out.push((NodeId::Spine(pod * half + col), half + j));
                    }
                }
            }
        }
        out
    }

    /// Resolve a declarative fault against the topology, validating ids.
    /// Composite faults expand to one action per member link.
    fn resolve_fault(&self, fault: Fault) -> Vec<(NodeId, u32, FaultAction)> {
        let link_port = |link: LinkId| -> (NodeId, u32) {
            match link {
                LinkId::HostUplink(h) => {
                    assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                    (NodeId::Host(h), 0)
                }
                LinkId::HostDownlink(h) => {
                    assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                    (NodeId::Tor(self.topo.rack_of(h)), self.topo.index_in_rack(h))
                }
                LinkId::TorUplink { rack, spine } => {
                    assert!(rack < self.topo.racks && spine < self.topo.spines);
                    match self.topo.kind {
                        FabricKind::LeafSpine => {
                            (NodeId::Tor(rack), self.topo.hosts_per_rack + spine)
                        }
                        FabricKind::FatTree { k } => {
                            // A TOR only uplinks to its pod's aggregation
                            // switches.
                            assert!(
                                spine < self.topo.num_aggs()
                                    && spine / (k / 2) == self.topo.pod_of_rack(rack),
                                "agg {spine} is not in rack {rack}'s pod"
                            );
                            (NodeId::Tor(rack), self.topo.hosts_per_rack + spine % (k / 2))
                        }
                    }
                }
                LinkId::SpineDownlink { spine, rack } => {
                    assert!(rack < self.topo.racks && spine < self.topo.spines);
                    match self.topo.kind {
                        FabricKind::LeafSpine => (NodeId::Spine(spine), rack),
                        FabricKind::FatTree { k } => {
                            // Only pod-local aggregation switches have a
                            // downlink to a rack's edge (cores link to
                            // aggs, not TORs).
                            assert!(
                                spine < self.topo.num_aggs()
                                    && spine / (k / 2) == self.topo.pod_of_rack(rack),
                                "agg {spine} has no downlink into rack {rack}"
                            );
                            (NodeId::Spine(spine), rack % (k / 2))
                        }
                    }
                }
            }
        };
        let all = |ports: Vec<(NodeId, u32)>, action: FaultAction| {
            ports.into_iter().map(|(n, p)| (n, p, action)).collect::<Vec<_>>()
        };
        match fault {
            Fault::LinkDown(l) => {
                let (n, p) = link_port(l);
                vec![(n, p, FaultAction::LinkDown)]
            }
            Fault::LinkUp(l) => {
                let (n, p) = link_port(l);
                vec![(n, p, FaultAction::LinkUp)]
            }
            Fault::RateLimit { link, bps } => {
                assert!(bps > 0, "rate limit must be positive");
                let (n, p) = link_port(link);
                vec![(n, p, FaultAction::SetRate(bps))]
            }
            Fault::RateRestore(l) => {
                let (n, p) = link_port(l);
                vec![(n, p, FaultAction::RestoreRate)]
            }
            Fault::PauseReceiver(h) => {
                assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                vec![(NodeId::Host(h), 0, FaultAction::PauseRx)]
            }
            Fault::ResumeReceiver(h) => {
                assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                vec![(NodeId::Host(h), 0, FaultAction::ResumeRx)]
            }
            Fault::RackOutage { rack } => all(self.rack_member_ports(rack), FaultAction::LinkDown),
            Fault::RackRestore { rack } => all(self.rack_member_ports(rack), FaultAction::LinkUp),
            Fault::SpineOutage { spine } => {
                all(self.spine_member_ports(spine), FaultAction::LinkDown)
            }
            Fault::SpineRestore { spine } => {
                all(self.spine_member_ports(spine), FaultAction::LinkUp)
            }
        }
    }

    /// Whether host `h`'s transport is withholding grants right now
    /// (Figure 16 probe; see [`Transport::withholding_grants`]).
    pub fn withholding(&self, h: HostId) -> bool {
        self.transport(h).withholding_grants(self.now)
    }

    /// Collect fabric-level statistics.
    pub fn harvest_stats(&self) -> RunStats {
        let counters =
            self.racks.iter().map(|r| r.counters).chain(std::iter::once(self.spine.counters)).fold(
                GroupCounters::default(),
                |a, b| GroupCounters {
                    faults_applied: a.faults_applied + b.faults_applied,
                    fault_drops: a.fault_drops + b.fault_drops,
                    deferred_deliveries: a.deferred_deliveries + b.deferred_deliveries,
                },
            );
        let mut stats = RunStats {
            events_processed: self.events_processed,
            faults_applied: counters.faults_applied,
            fault_drops: counters.fault_drops,
            deferred_deliveries: counters.deferred_deliveries,
            ..RunStats::default()
        };
        let now = self.now;
        let classes =
            [PortClass::HostUp, PortClass::TorUp, PortClass::SpineDown, PortClass::TorDown];
        let mut means: Vec<(PortClass, StreamingStats)> =
            classes.iter().map(|&c| (c, StreamingStats::default())).collect();
        let mut maxes: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();
        let mut drops: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();
        let mut trims: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();

        let mut visit = |port: &Port<M>| {
            let idx = classes.iter().position(|&c| c == port.class).expect("known class");
            means[idx].1.push(port.queue.mean_bytes(now));
            maxes[idx].1 = maxes[idx].1.max(port.queue.max_bytes_seen());
            drops[idx].1 += port.queue.drops;
            trims[idx].1 += port.queue.trims;
            match port.class {
                PortClass::HostUp => stats.host_up_wire_bytes += port.stats.wire_bytes,
                PortClass::TorDown => {
                    stats.tor_down_wire_bytes += port.stats.wire_bytes;
                    stats.tor_down_goodput_bytes += port.stats.goodput_bytes;
                    stats.mean_downlink_utilization += port.stats.utilization(now);
                }
                _ => {}
            }
        };

        for rack in &self.racks {
            for p in &rack.host_ports {
                visit(p);
            }
            for p in &rack.tor.ports {
                visit(p);
            }
        }
        for sw in &self.spine.spines {
            for p in &sw.ports {
                visit(p);
            }
        }
        let nhosts = self.topo.num_hosts();
        if nhosts > 0 {
            stats.mean_downlink_utilization /= nhosts as f64;
        }
        for rack in &self.racks {
            for t in &rack.transports {
                stats.grants.merge(&t.grant_stats());
            }
        }
        stats.queue_means = means;
        stats.queue_maxes = maxes;
        stats.drops = drops;
        stats.trims = trims;
        stats
    }

    /// Seed used by this network's RNG (for reporting).
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::testutil::TestMeta;

    /// A trivially simple transport used to exercise the fabric: it sends
    /// each injected message as a single packet and reports delivery.
    struct Echoless {
        me: HostId,
        outbox: std::collections::VecDeque<Packet<TestMeta>>,
        delivered: u64,
    }

    impl Transport<TestMeta> for Echoless {
        fn on_packet(&mut self, _now: SimTime, pkt: Packet<TestMeta>, act: &mut TransportActions) {
            self.delivered += pkt.meta.goodput_bytes() as u64;
            act.event(AppEvent::MessageDelivered {
                src: pkt.src,
                tag: pkt.meta.bytes as u64,
                len: pkt.meta.goodput_bytes() as u64,
            });
        }
        fn on_timer(&mut self, _now: SimTime, _token: TimerToken, _act: &mut TransportActions) {}
        fn next_packet(&mut self, _now: SimTime) -> Option<Packet<TestMeta>> {
            self.outbox.pop_front()
        }
        fn inject_message(
            &mut self,
            _now: SimTime,
            dst: HostId,
            len: u64,
            _tag: u64,
            act: &mut TransportActions,
        ) {
            self.outbox.push_back(Packet::new(self.me, dst, TestMeta::data(len as u32 + 60, 0)));
            act.kick_tx();
        }
        fn delivered_bytes(&self) -> u64 {
            self.delivered
        }
    }

    fn simple_net(topo: Topology) -> Network<TestMeta, Echoless> {
        Network::new(topo, NetworkConfig::default(), |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        })
    }

    #[test]
    fn single_packet_crosses_single_switch() {
        let mut net = simple_net(Topology::single_switch(4));
        net.inject_message(HostId(0), HostId(1), 100, 7);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        let (at, host, ev) = &evs[0];
        assert_eq!(*host, HostId(1));
        assert!(
            matches!(ev, AppEvent::MessageDelivered { src, len: 100, .. } if *src == HostId(0))
        );
        // 160B on the wire at 10G = 128ns per host link; two links, one
        // switch delay (250ns), plus 1.5us software delay.
        let expect = 128 + 250 + 128 + 1500;
        assert_eq!(at.as_nanos(), expect);
    }

    #[test]
    fn cross_rack_goes_through_spine() {
        let topo = Topology::scaled_fabric(2, 2, 1);
        let mut net = simple_net(topo);
        net.inject_message(HostId(0), HostId(3), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        // Wire 1060B: host link 848ns, uplink (40G) 212ns x2, host link
        // 848ns, 3 switch delays, 1.5us software.
        let expect = 848 + 250 + 212 + 250 + 212 + 250 + 848 + 1500;
        assert_eq!(evs[0].0.as_nanos(), expect);
    }

    #[test]
    fn two_senders_share_one_downlink() {
        let mut net = simple_net(Topology::single_switch(4));
        net.inject_message(HostId(0), HostId(2), 1000, 1);
        net.inject_message(HostId(1), HostId(2), 1000, 2);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        // Both packets arrive at the TOR simultaneously; the second must
        // wait for the first to serialize on the downlink (848ns for
        // 1060B).
        let gap = evs[1].0.as_nanos() - evs[0].0.as_nanos();
        assert_eq!(gap, 848);
    }

    #[test]
    fn stats_track_utilization_and_queues() {
        let mut net = simple_net(Topology::single_switch(4));
        for i in 0..50 {
            net.inject_message(HostId(0), HostId(2), 1400, i);
            net.inject_message(HostId(1), HostId(2), 1400, 100 + i);
        }
        net.run_until(SimTime::from_millis(1));
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0);
        // The shared downlink must have queued somewhere along the way.
        assert!(stats.max_queue_bytes(PortClass::TorDown).unwrap() > 0);
        assert!(stats.tor_down_wire_bytes >= 100 * 1460);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = Topology::scaled_fabric(2, 4, 2);
            let mut net = simple_net(topo);
            for i in 0..20 {
                net.inject_message(
                    HostId(i % 8),
                    HostId((i + 3) % 8),
                    500 + (i as u64) * 7,
                    i as u64,
                );
                net.run_until(SimTime::from_micros(5 * (i as u64 + 1)));
            }
            net.run_until(SimTime::from_millis(2));
            net.take_app_events()
                .into_iter()
                .map(|(t, h, _)| (t.as_nanos(), h.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    fn scripted_run(engine: EngineKind) -> (Vec<(u64, u32)>, u64) {
        let topo = Topology::multi_tor(40);
        let cfg = NetworkConfig::default().with_engine(engine);
        let mut net = Network::new(topo, cfg, |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        });
        for i in 0..200u32 {
            net.inject_message(
                HostId(i % 40),
                HostId((i * 7 + 1) % 40),
                300 + (i as u64) * 13,
                i as u64,
            );
            net.run_until(SimTime::from_micros(2 * (i as u64 + 1)));
        }
        net.run_until(SimTime::from_millis(5));
        let evs: Vec<_> =
            net.take_app_events().into_iter().map(|(t, h, _)| (t.as_nanos(), h.0)).collect();
        (evs, net.events_processed())
    }

    #[test]
    fn engines_agree_event_for_event() {
        // The calendar engine must replay the legacy heap's run
        // bit-for-bit: same delivery times, same hosts, same event count.
        let hier = scripted_run(EngineKind::Hierarchical);
        let legacy = scripted_run(EngineKind::LegacyHeap);
        assert_eq!(hier, legacy);
        assert!(hier.1 > 500, "only {} events", hier.1);
    }

    #[test]
    fn parallel_windows_agree_event_for_event() {
        // Conservative-window dispatch — inline, two workers, and four
        // workers — must all replay the legacy heap bit-for-bit.
        let legacy = scripted_run(EngineKind::LegacyHeap);
        for threads in [1u32, 2, 4] {
            for batch in [0u32, 1, 4, 16] {
                let par = scripted_run(EngineKind::ParallelHier { threads, batch });
                assert_eq!(par, legacy, "ParallelHier x{threads} batch {batch} diverged");
            }
        }
    }

    #[test]
    #[cfg(feature = "parallel")] // without it ParallelHier degrades to sequential: no windows
    fn parallel_windows_report_window_stats() {
        let topo = Topology::multi_tor(40);
        let cfg =
            NetworkConfig::default().with_engine(EngineKind::ParallelHier { threads: 1, batch: 0 });
        let mut net = Network::new(topo, cfg, |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        });
        for i in 0..40u32 {
            net.inject_message(HostId(i), HostId((i + 11) % 40), 2_000, i as u64);
        }
        net.run_until(SimTime::from_millis(5));
        let s = net.engine_stats();
        assert!(s.windows > 0, "no windows dispatched: {s:?}");
        assert_eq!(s.window_events, net.events_processed());
        assert!(s.max_window_events >= 1);
    }

    #[test]
    fn hundred_host_fabric_delivers_all_to_all() {
        let topo = Topology::multi_tor(100);
        let mut net = Network::new(
            topo,
            // Pin the engine: the lane-count assertion below is about the
            // calendar engine regardless of the workspace default.
            NetworkConfig::default().with_engine(EngineKind::Hierarchical),
            |h| Echoless { me: h, outbox: Default::default(), delivered: 0 },
        );
        for i in 0..100u32 {
            net.inject_message(HostId(i), HostId((i + 37) % 100), 2_000, i as u64);
        }
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.take_app_events().len(), 100);
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0);
        assert_eq!(stats.events_processed, net.events_processed());
        // Host lanes + 10 TOR lanes + spine lanes.
        assert_eq!(net.engine_stats().lanes, 100 + 10 + net.topology().spines);
    }

    #[test]
    fn run_next_before_steps_one_timestamp() {
        let mut net = simple_net(Topology::single_switch(4));
        net.inject_message(HostId(0), HostId(1), 100, 1);
        // First batch: the host uplink TxDone at 128ns.
        let first = net.run_next_before(SimTime::from_millis(1)).expect("events pending");
        assert_eq!(first.as_nanos(), 128);
        assert_eq!(net.now(), first);
        // Stepping drains the run eventually and then reports None.
        let mut last = first;
        while let Some(at) = net.run_next_before(SimTime::from_millis(1)) {
            assert!(at >= last, "stepped backwards");
            last = at;
        }
        assert_eq!(net.take_app_events().len(), 1);
        assert_eq!(net.now(), last, "None leaves the clock at the last batch");
    }

    #[test]
    fn downed_link_drops_and_recovery_resumes_queue() {
        use crate::faults::{FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        // Host 2's downlink is down from 1µs to 100µs.
        net.install_faults(&FaultPlan::new().link_flaps(
            LinkId::HostDownlink(HostId(2)),
            1_000,
            99_000,
            1_000_000,
            1,
        ));
        // First message crosses before the fault.
        net.inject_message(HostId(0), HostId(2), 100, 1);
        net.run_until(SimTime::from_micros(5));
        assert_eq!(net.take_app_events().len(), 1);
        // Messages sent into the dark window are fault-dropped at the TOR.
        net.inject_message(HostId(0), HostId(2), 100, 2);
        net.inject_message(HostId(1), HostId(2), 100, 3);
        net.run_until(SimTime::from_millis(1));
        assert_eq!(net.take_app_events().len(), 0, "packets crossed a downed link");
        let stats = net.harvest_stats();
        assert_eq!(stats.fault_drops, 2);
        assert_eq!(stats.faults_applied, 2);
        // After link-up, traffic flows again.
        net.inject_message(HostId(0), HostId(2), 100, 4);
        net.run_until(SimTime::from_millis(2));
        assert_eq!(net.take_app_events().len(), 1);
    }

    #[test]
    fn downed_link_preserves_queued_packets() {
        use crate::faults::{Fault, FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        let link = LinkId::HostDownlink(HostId(2));
        // Two senders race onto host 2's downlink; the loser is queued at
        // the TOR when the link goes down mid-burst, and must survive.
        net.inject_message(HostId(0), HostId(2), 1000, 1);
        net.inject_message(HostId(1), HostId(2), 1000, 2);
        // Down just after the first packet starts serializing on the
        // downlink (~1100ns: 848ns uplink + 250ns switch delay).
        net.install_faults(
            &FaultPlan::new().at(1_200, Fault::LinkDown(link)).at(500_000, Fault::LinkUp(link)),
        );
        net.run_until(SimTime::from_micros(400));
        // Only the in-flight packet arrived during the outage.
        assert_eq!(net.take_app_events().len(), 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "queued packet lost across the flap");
        assert!(evs[0].0 >= SimTime::from_micros(500), "served before link-up");
        assert_eq!(net.harvest_stats().fault_drops, 0);
    }

    #[test]
    fn receiver_pause_defers_then_delivers_in_order() {
        use crate::faults::FaultPlan;
        let mut net = simple_net(Topology::single_switch(4));
        net.install_faults(&FaultPlan::new().receiver_pause(HostId(2), 1_000, 50_000));
        for i in 0..5u64 {
            net.inject_message(HostId(0), HostId(2), 200 + i, i);
        }
        net.run_until(SimTime::from_micros(40));
        assert_eq!(net.take_app_events().len(), 0, "paused host processed packets");
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 5);
        // All five delivered exactly at the resume instant, in send order.
        for (i, (at, host, ev)) in evs.iter().enumerate() {
            assert_eq!(at.as_nanos(), 50_000);
            assert_eq!(*host, HostId(2));
            assert!(
                matches!(ev, AppEvent::MessageDelivered { len, .. } if *len == 200 + i as u64),
                "out of order at {i}: {ev:?}"
            );
        }
        let stats = net.harvest_stats();
        assert_eq!(stats.deferred_deliveries, 5);
        assert_eq!(stats.faults_applied, 2);
    }

    #[test]
    fn rate_limit_slows_then_restores() {
        use crate::faults::{FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        // Cut host 0's uplink to 1 Gbps for the first 100µs.
        net.install_faults(&FaultPlan::new().rate_limit(
            LinkId::HostUplink(HostId(0)),
            0,
            100_000,
            1_000_000_000,
        ));
        // Advance past the fault instant so the SetRate event has fired
        // (injection at the same instant would race the event queue).
        net.run_until(SimTime::from_nanos(10));
        let t0 = net.now();
        net.inject_message(HostId(0), HostId(1), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        // 1060B at 1G = 8480ns first hop (vs 848ns at 10G), then 250ns
        // switch + 848ns downlink + 1.5µs software.
        assert_eq!((evs[0].0 - t0).as_nanos(), 8480 + 250 + 848 + 1500);
        // After restore, the same transfer is back to full speed.
        net.inject_message(HostId(0), HostId(1), 1000, 2);
        let t0 = net.now();
        net.run_until(SimTime::from_millis(2));
        let evs = net.take_app_events();
        assert_eq!((evs[0].0 - t0).as_nanos(), 848 + 250 + 848 + 1500);
    }

    #[test]
    fn downed_host_uplink_holds_packets_in_transport() {
        use crate::faults::{Fault, FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        let link = LinkId::HostUplink(HostId(0));
        net.install_faults(
            &FaultPlan::new().at(100, Fault::LinkDown(link)).at(200_000, Fault::LinkUp(link)),
        );
        net.run_until(SimTime::from_micros(1));
        // Injected while the uplink is down: the pull model keeps the
        // packet in the transport, so nothing is lost.
        net.inject_message(HostId(0), HostId(1), 500, 1);
        net.run_until(SimTime::from_micros(100));
        assert_eq!(net.take_app_events().len(), 0);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].0 >= SimTime::from_micros(200));
        assert_eq!(net.harvest_stats().fault_drops, 0);
    }

    fn faulted_run(engine: EngineKind) -> (Vec<(u64, u32)>, u64, String) {
        use crate::faults::{FaultPlan, LinkId};
        let topo = Topology::scaled_fabric(2, 4, 2);
        let cfg = NetworkConfig::default().with_engine(engine);
        let mut net = Network::new(topo, cfg, |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        });
        net.install_faults(
            &FaultPlan::new()
                .link_flaps(LinkId::HostDownlink(HostId(3)), 5_000, 20_000, 50_000, 4)
                .receiver_pause(HostId(1), 10_000, 120_000)
                .rate_limit(LinkId::TorUplink { rack: 0, spine: 0 }, 0, 300_000, 5_000_000_000),
        );
        for i in 0..120u32 {
            net.inject_message(
                HostId(i % 8),
                HostId((i * 3 + 1) % 8),
                400 + i as u64 * 11,
                i as u64,
            );
            net.run_until(SimTime::from_micros(3 * (i as u64 + 1)));
        }
        net.run_until(SimTime::from_millis(5));
        let evs: Vec<_> =
            net.take_app_events().into_iter().map(|(t, h, _)| (t.as_nanos(), h.0)).collect();
        (evs, net.events_processed(), format!("{:?}", net.harvest_stats()))
    }

    #[test]
    fn engines_agree_under_faults() {
        let hier = faulted_run(EngineKind::Hierarchical);
        let legacy = faulted_run(EngineKind::LegacyHeap);
        let parallel = faulted_run(EngineKind::ParallelHier { threads: 2, batch: 0 });
        assert_eq!(hier, legacy);
        assert_eq!(parallel, legacy);
        let stats_dbg = &hier.2;
        assert!(stats_dbg.contains("faults_applied: 12"), "fault count missing: {stats_dbg}");
    }

    #[test]
    fn rack_outage_downs_and_restores_all_member_links() {
        use crate::faults::FaultPlan;
        let topo = Topology::scaled_fabric(2, 2, 1);
        let mut net = simple_net(topo);
        // Rack 0 (hosts 0, 1) dark from 1µs to 300µs: 2 host uplinks +
        // 2 TOR downlinks + 1 TOR uplink + 1 spine downlink = 6 links
        // down, 6 back up.
        net.install_faults(&FaultPlan::new().rack_outage(0, 1_000, 300_000));
        net.run_until(SimTime::from_micros(2));
        // Into the rack: dropped at the spine's downed downlink.
        net.inject_message(HostId(2), HostId(0), 200, 1);
        // Out of the rack: held in the transport (downed uplink).
        net.inject_message(HostId(0), HostId(3), 200, 2);
        net.run_until(SimTime::from_micros(250));
        assert_eq!(net.take_app_events().len(), 0, "traffic crossed a dark rack");
        net.run_until(SimTime::from_millis(2));
        let evs = net.take_app_events();
        // The held outbound message delivers after restore; the inbound
        // one was wholly dropped.
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1, HostId(3));
        assert!(evs[0].0 >= SimTime::from_micros(300));
        let stats = net.harvest_stats();
        assert_eq!(stats.faults_applied, 12, "6 member links x down+up");
        assert!(stats.fault_drops >= 1);
    }

    #[test]
    fn spine_outage_reroutes_nothing_but_drops_sprayed_packets() {
        use crate::faults::FaultPlan;
        // 2 racks, 2 spines: a downed spine drops the packets sprayed
        // onto it while the other spine keeps carrying traffic.
        let topo = Topology::scaled_fabric(2, 2, 2);
        let mut net = simple_net(topo);
        net.install_faults(&FaultPlan::new().spine_outage(0, 1_000, 500_000));
        net.run_until(SimTime::from_micros(2));
        for i in 0..20u64 {
            net.inject_message(HostId(0), HostId(2), 300, i);
        }
        net.run_until(SimTime::from_millis(2));
        let delivered = net.take_app_events().len();
        let stats = net.harvest_stats();
        // 2 spine downlinks + 2 TOR uplinks, down then up.
        assert_eq!(stats.faults_applied, 8);
        assert_eq!(delivered as u64 + stats.fault_drops, 20, "packets unaccounted for");
        assert!(stats.fault_drops > 0, "no packet ever sprayed onto the dark spine");
        assert!(delivered > 0, "the healthy spine carried nothing");
    }

    #[test]
    fn fat_tree_cross_pod_latency_matches_model() {
        // k=4: racks of 2 hosts, pods of 2 racks. Host 0 (pod 0) to host
        // 14 (rack 7, pod 3) crosses TOR → agg → core → agg → TOR.
        let mut net = simple_net(Topology::fat_tree(4));
        net.inject_message(HostId(0), HostId(14), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1, HostId(14));
        // Wire 1060B: 848ns host link, 4 uplink hops at 40G (212ns), 5
        // switch delays, 848ns final host link, 1.5µs software.
        let expect = 848 + 5 * 250 + 4 * 212 + 848 + 1500;
        assert_eq!(evs[0].0.as_nanos(), expect);
        // And the unloaded model agrees exactly.
        let model =
            net.topology().unloaded_one_way_class(1000, 1400, 60, topology::PathClass::InterPod);
        assert_eq!(evs[0].0.as_nanos(), model.as_nanos());
    }

    #[test]
    fn fat_tree_intra_pod_latency_matches_model() {
        // Host 0 (rack 0) to host 2 (rack 1): same pod, one agg hop.
        let mut net = simple_net(Topology::fat_tree(4));
        net.inject_message(HostId(0), HostId(2), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        let expect = 848 + 3 * 250 + 2 * 212 + 848 + 1500;
        assert_eq!(evs[0].0.as_nanos(), expect);
        let model =
            net.topology().unloaded_one_way_class(1000, 1400, 60, topology::PathClass::IntraPod);
        assert_eq!(evs[0].0.as_nanos(), model.as_nanos());
    }

    fn fat_tree_scripted(engine: EngineKind) -> (Vec<(u64, u32)>, u64, String) {
        let topo = Topology::fat_tree(4);
        let cfg = NetworkConfig::default().with_engine(engine);
        let mut net = Network::new(topo, cfg, |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        });
        for i in 0..200u32 {
            net.inject_message(
                HostId(i % 16),
                HostId((i * 7 + 1) % 16),
                300 + (i as u64) * 13,
                i as u64,
            );
            net.run_until(SimTime::from_micros(2 * (i as u64 + 1)));
        }
        net.run_until(SimTime::from_millis(5));
        let evs: Vec<_> =
            net.take_app_events().into_iter().map(|(t, h, _)| (t.as_nanos(), h.0)).collect();
        (evs, net.events_processed(), format!("{:?}", net.harvest_stats()))
    }

    #[test]
    fn fat_tree_engines_agree_event_for_event() {
        // Deterministic counter spray means no RNG pre-draw: the fat
        // tree must still replay bit-identically on every engine.
        let legacy = fat_tree_scripted(EngineKind::LegacyHeap);
        assert_eq!(legacy.0.len(), 200, "fat tree lost messages");
        let hier = fat_tree_scripted(EngineKind::Hierarchical);
        assert_eq!(hier, legacy);
        for threads in [1u32, 2] {
            for batch in [0u32, 4] {
                let par = fat_tree_scripted(EngineKind::ParallelHier { threads, batch });
                assert_eq!(
                    par, legacy,
                    "ParallelHier x{threads} batch {batch} diverged on fat tree"
                );
            }
        }
    }

    #[test]
    fn fat_tree_spray_uses_every_uplink() {
        let topo = Topology::fat_tree(4);
        let hpr = topo.hosts_per_rack as usize;
        let mut net = simple_net(topo);
        // One flow, many packets: the counter-mixed hash must still
        // spread them across both of the TOR's agg uplinks (per-packet
        // spray, not per-flow ECMP).
        for i in 0..40u64 {
            net.inject_message(HostId(0), HostId(15), 500, i);
        }
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.take_app_events().len(), 40);
        let up: Vec<u64> = net.racks[0].tor.ports[hpr..].iter().map(|p| p.stats.packets).collect();
        assert!(up.iter().all(|&n| n > 0), "an uplink never carried traffic: {up:?}");
        assert_eq!(up.iter().sum::<u64>(), 40);
    }

    #[test]
    fn fat_tree_rack_outage_expands_to_all_member_links() {
        use crate::faults::FaultPlan;
        // k=4 rack: 2 host links (x2 ports) + 2 uplinks (x2 ports) = 8
        // ports down + 8 up.
        let mut net = simple_net(Topology::fat_tree(4));
        net.install_faults(&FaultPlan::new().rack_outage(0, 1_000, 300_000));
        net.run_until(SimTime::from_millis(1));
        assert_eq!(net.harvest_stats().faults_applied, 16);
    }

    #[test]
    fn fat_tree_agg_outage_drops_sprayed_packets_only() {
        use crate::faults::FaultPlan;
        // Down one of pod 0's aggregation switches: cross-rack traffic
        // sprayed onto it drops, the other agg keeps carrying.
        let mut net = simple_net(Topology::fat_tree(4));
        net.install_faults(&FaultPlan::new().spine_outage(0, 1_000, 2_000_000));
        net.run_until(SimTime::from_micros(2));
        for i in 0..20u64 {
            net.inject_message(HostId(0), HostId(2), 300, i);
        }
        net.run_until(SimTime::from_millis(1));
        let delivered = net.take_app_events().len();
        let stats = net.harvest_stats();
        // Agg 0: 2 edge links + 2 core links = 4 member links, down only
        // (restore is beyond the horizon).
        assert_eq!(stats.faults_applied, 8);
        assert_eq!(delivered as u64 + stats.fault_drops, 20, "packets unaccounted for");
        assert!(stats.fault_drops > 0 && delivered > 0);
    }

    #[test]
    fn fat_tree_tor_uplink_fault_resolves_to_pod_local_port() {
        use crate::faults::{FaultPlan, LinkId};
        let mut net = simple_net(Topology::fat_tree(4));
        // Rack 2 is in pod 1 (aggs 2 and 3); its uplink to agg 3 is the
        // TOR's second uplink port.
        net.install_faults(&FaultPlan::new().link_flaps(
            LinkId::TorUplink { rack: 2, spine: 3 },
            1_000,
            1_000,
            10_000,
            1,
        ));
        net.run_until(SimTime::from_millis(1));
        assert_eq!(net.harvest_stats().faults_applied, 2);
    }

    #[test]
    #[should_panic(expected = "pod")]
    fn fat_tree_rejects_cross_pod_uplink_fault() {
        use crate::faults::{Fault, FaultPlan, LinkId};
        let mut net = simple_net(Topology::fat_tree(4));
        // Agg 0 lives in pod 0; rack 2 is in pod 1 — no such link.
        net.install_faults(
            &FaultPlan::new().at(1_000, Fault::LinkDown(LinkId::TorUplink { rack: 2, spine: 0 })),
        );
    }

    #[test]
    fn downlink_idle_probe() {
        let mut net = simple_net(Topology::single_switch(4));
        assert!(net.downlink_idle(HostId(2)));
        net.inject_message(HostId(0), HostId(2), 14_000, 1);
        // Run a tiny amount: packet still serializing on uplink.
        net.run_until(SimTime::from_nanos(100));
        assert!(net.downlink_idle(HostId(2)));
        net.run_until(SimTime::from_millis(1));
        assert!(net.downlink_idle(HostId(2)));
        assert!(net.transport(HostId(2)).delivered_bytes() > 0);
    }
}
