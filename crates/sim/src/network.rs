//! The simulation engine: hosts, switches, links, and the event loop.
//!
//! [`Network`] owns one transport instance per host plus the fabric state
//! (ports, queues, in-flight transmissions) and advances everything through
//! a single deterministic event queue.
//!
//! Life of a packet:
//!
//! 1. A transport's `next_packet` hands the packet to its host NIC when the
//!    uplink goes idle (pull model, so sender-side SRPT is exact).
//! 2. Serialization occupies the link for `wire_bytes * 8 / rate`.
//! 3. The TOR receives it after the switch's internal delay
//!    (store-and-forward), routes it — directly to a rack-local host port,
//!    or sprayed across a random spine uplink — and offers it to the egress
//!    port's [`PortQueue`].
//! 4. Ports drain their queues as fast as the link allows; each hop
//!    accumulates delay attribution into the packet.
//! 5. When the packet fully arrives at the destination host, the host
//!    software delay elapses and the receiving transport's `on_packet`
//!    runs.

use crate::events::{EngineKind, EngineStats, EventEngine, LaneId, TimerToken};
use crate::faults::{Fault, FaultPlan, LinkId};
use crate::packet::{Packet, PacketMeta};
use crate::queues::{PortQueue, QueueDiscipline};
use crate::stats::{PortClass, PortStats, RunStats, StreamingStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{self, HostId, NodeId, Topology};
use crate::transport::{AppEvent, Transport, TransportActions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fabric-wide configuration knobs that are not part of the topology.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Seed for all fabric randomness (packet spraying).
    pub seed: u64,
    /// Queue discipline for TOR→host ports (where Homa's queueing lives).
    pub tor_down: QueueDiscipline,
    /// Queue discipline for TOR→spine ports.
    pub tor_up: QueueDiscipline,
    /// Queue discipline for spine→TOR ports.
    pub spine_down: QueueDiscipline,
    /// Which event engine drives the simulation. Both engines produce
    /// bit-identical runs; the hierarchical one is faster on large
    /// fabrics (see [`crate::events`]).
    pub engine: EngineKind,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // 1 MB shared buffer per port, 8 strict priorities: a generous
        // commodity switch, per the paper's observation that Homa's peak
        // occupancy (146 KB) is well within typical switch capacity.
        NetworkConfig {
            seed: 1,
            tor_down: QueueDiscipline::strict8(1 << 20),
            tor_up: QueueDiscipline::strict8(1 << 20),
            spine_down: QueueDiscipline::strict8(1 << 20),
            engine: EngineKind::default(),
        }
    }
}

impl NetworkConfig {
    /// Same discipline on every switch port.
    pub fn uniform(seed: u64, disc: QueueDiscipline) -> Self {
        NetworkConfig {
            seed,
            tor_down: disc,
            tor_up: disc,
            spine_down: disc,
            engine: EngineKind::default(),
        }
    }

    /// The same configuration on a different event engine.
    pub fn with_engine(self, engine: EngineKind) -> Self {
        NetworkConfig { engine, ..self }
    }
}

enum Ev<M> {
    /// A port finished serializing its current packet.
    TxDone { node: NodeId, port: u32 },
    /// A packet fully arrived at a switch (post internal delay).
    SwitchArrive { node: NodeId, pkt: Packet<M> },
    /// A packet is delivered to a host transport (post software delay).
    HostDeliver { host: HostId, pkt: Packet<M> },
    /// A transport timer fired.
    Timer { host: HostId, token: TimerToken },
    /// A scheduled fault takes effect (see [`crate::faults`]).
    Fault { node: NodeId, port: u32, action: FaultAction },
}

/// A [`Fault`] resolved against the topology at install time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    LinkDown,
    LinkUp,
    SetRate(u64),
    RestoreRate,
    PauseRx,
    ResumeRx,
}

struct Port<M> {
    queue: PortQueue<M>,
    rate_bps: u64,
    /// The topology-configured rate, restored after a rate-limit fault.
    base_rate_bps: u64,
    /// Link state; a downed port neither serves its queue nor accepts
    /// newly-routed packets (they are fault-dropped).
    up: bool,
    peer: NodeId,
    class: PortClass,
    /// The packet currently being serialized, with its completion time.
    sending: Option<(Packet<M>, SimTime)>,
    stats: PortStats,
}

impl<M: PacketMeta> Port<M> {
    fn new(disc: QueueDiscipline, rate_bps: u64, peer: NodeId, class: PortClass) -> Self {
        Port {
            queue: PortQueue::new(disc),
            rate_bps,
            base_rate_bps: rate_bps,
            up: true,
            peer,
            class,
            sending: None,
            stats: PortStats::default(),
        }
    }

    fn busy(&self) -> bool {
        self.sending.is_some()
    }

    fn in_flight_view(&self) -> Option<(&M, SimTime)> {
        self.sending.as_ref().map(|(p, t)| (&p.meta, *t))
    }
}

struct HostNode<M, T> {
    transport: T,
    port: Port<M>,
}

struct SwitchNode<M> {
    ports: Vec<Port<M>>,
}

/// Summary of one `run_until` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutput {
    /// Number of events processed.
    pub events: u64,
}

/// The simulated network: fabric plus one transport per host.
pub struct Network<M: PacketMeta, T: Transport<M>> {
    topo: Topology,
    cfg: NetworkConfig,
    now: SimTime,
    queue: EventEngine<Ev<M>>,
    hosts: Vec<HostNode<M, T>>,
    tors: Vec<SwitchNode<M>>,
    spines: Vec<SwitchNode<M>>,
    rng: StdRng,
    scratch: TransportActions,
    app_events: Vec<(SimTime, HostId, AppEvent)>,
    events_processed: u64,
    /// Per-host receiver-pause state and the packets buffered while
    /// paused (delivered in order on resume).
    paused: Vec<bool>,
    pause_buf: Vec<Vec<Packet<M>>>,
    faults_applied: u64,
    fault_drops: u64,
    deferred_deliveries: u64,
}

impl<M: PacketMeta, T: Transport<M>> Network<M, T> {
    /// Build a network over `topo` with a transport per host produced by
    /// `make_transport`.
    pub fn new(
        topo: Topology,
        cfg: NetworkConfig,
        mut make_transport: impl FnMut(HostId) -> T,
    ) -> Self {
        topology::validate(&topo);
        let hosts: Vec<HostNode<M, T>> = topo
            .hosts()
            .map(|h| HostNode {
                transport: make_transport(h),
                port: Port::new(
                    // Host NIC egress: the transport is the queue (pull
                    // model); discipline here is irrelevant but harmless.
                    QueueDiscipline::strict8(u64::MAX),
                    topo.host_link_bps,
                    NodeId::Tor(topo.rack_of(h)),
                    PortClass::HostUp,
                ),
            })
            .collect();

        let tors: Vec<SwitchNode<M>> = (0..topo.racks)
            .map(|r| {
                let mut ports = Vec::with_capacity(topo.tor_ports() as usize);
                for i in 0..topo.hosts_per_rack {
                    let h = HostId(r * topo.hosts_per_rack + i);
                    ports.push(Port::new(
                        cfg.tor_down,
                        topo.host_link_bps,
                        NodeId::Host(h),
                        PortClass::TorDown,
                    ));
                }
                for s in 0..topo.spines {
                    ports.push(Port::new(
                        cfg.tor_up,
                        topo.uplink_bps,
                        NodeId::Spine(s),
                        PortClass::TorUp,
                    ));
                }
                SwitchNode { ports }
            })
            .collect();

        let spines: Vec<SwitchNode<M>> = (0..topo.spines)
            .map(|_| SwitchNode {
                ports: (0..topo.racks)
                    .map(|r| {
                        Port::new(
                            cfg.spine_down,
                            topo.uplink_bps,
                            NodeId::Tor(r),
                            PortClass::SpineDown,
                        )
                    })
                    .collect(),
            })
            .collect();

        let rng = StdRng::seed_from_u64(cfg.seed);
        // One event lane per host, plus one per TOR (batching all of a
        // rack's port events) and one per spine switch.
        let lanes = topo.num_hosts() + topo.racks + topo.spines;
        let nhosts = topo.num_hosts() as usize;
        Network {
            queue: EventEngine::new(cfg.engine, lanes),
            topo,
            cfg,
            now: topology::T0,
            hosts,
            tors,
            spines,
            rng,
            scratch: TransportActions::new(),
            app_events: Vec::new(),
            events_processed: 0,
            paused: vec![false; nhosts],
            pause_buf: (0..nhosts).map(|_| Vec::new()).collect(),
            faults_applied: 0,
            fault_drops: 0,
            deferred_deliveries: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The event lane a node's events are routed to: hosts get one lane
    /// each; a TOR's ports share one lane per rack; spines one per switch.
    fn lane_of(&self, node: NodeId) -> LaneId {
        match node {
            NodeId::Host(h) => LaneId(h.0),
            NodeId::Tor(r) => LaneId(self.topo.num_hosts() + r),
            NodeId::Spine(s) => LaneId(self.topo.num_hosts() + self.topo.racks + s),
        }
    }

    /// The topology this network was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read access to a host's transport.
    pub fn transport(&self, h: HostId) -> &T {
        &self.hosts[h.0 as usize].transport
    }

    /// Mutate a host's transport through a closure; any actions it records
    /// (timers, tx kicks, app events) are applied afterwards.
    pub fn with_transport<R>(
        &mut self,
        h: HostId,
        f: impl FnOnce(&mut T, SimTime, &mut TransportActions) -> R,
    ) -> R {
        let mut act = TransportActions::new();
        let now = self.now;
        let r = f(&mut self.hosts[h.0 as usize].transport, now, &mut act);
        self.apply_actions(h, act);
        r
    }

    /// Begin a one-way message from `src` to `dst` at the current time.
    pub fn inject_message(&mut self, src: HostId, dst: HostId, len: u64, tag: u64) {
        assert_ne!(src, dst, "self-messages not modelled");
        self.with_transport(src, |t, now, act| t.inject_message(now, dst, len, tag, act));
    }

    /// Begin an RPC from `client` to `server` at the current time.
    pub fn inject_rpc(&mut self, client: HostId, server: HostId, req_len: u64, tag: u64) {
        assert_ne!(client, server, "self-RPCs not modelled");
        self.with_transport(client, |t, now, act| t.inject_rpc(now, server, req_len, tag, act));
    }

    /// Send an RPC response from `server` back to `client`.
    pub fn inject_response(&mut self, server: HostId, client: HostId, rpc: u64, resp_len: u64) {
        self.with_transport(server, |t, now, act| {
            t.inject_response(now, client, rpc, resp_len, act)
        });
    }

    /// Process all events up to and including time `t`, then advance the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) -> StepOutput {
        let mut out = StepOutput::default();
        while let Some((at, ev)) = self.queue.pop_if_before(t) {
            debug_assert!(at >= self.now, "event in the past");
            self.now = at;
            self.dispatch(ev);
            out.events += 1;
            self.events_processed += 1;
        }
        if t > self.now {
            self.now = t;
        }
        out
    }

    /// Run until the event queue drains completely (use with care on open
    /// workloads) or `limit` is reached.
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> StepOutput {
        let mut out = StepOutput::default();
        while let Some((at, ev)) = self.queue.pop_if_before(limit) {
            self.now = at;
            self.dispatch(ev);
            out.events += 1;
            self.events_processed += 1;
        }
        out
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Total events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Behavior counters of the underlying event engine.
    pub fn engine_stats(&self) -> EngineStats {
        self.queue.stats()
    }

    /// Drain application events accumulated since the last call.
    pub fn take_app_events(&mut self) -> Vec<(SimTime, HostId, AppEvent)> {
        std::mem::take(&mut self.app_events)
    }

    /// True when host `h`'s TOR→host downlink is idle (nothing serializing,
    /// nothing queued). Used by the Figure 16 wasted-bandwidth probe.
    pub fn downlink_idle(&self, h: HostId) -> bool {
        let r = self.topo.rack_of(h) as usize;
        let p = self.topo.index_in_rack(h) as usize;
        let port = &self.tors[r].ports[p];
        !port.busy() && port.queue.is_empty()
    }

    /// True when host `h`'s uplink is currently serializing a packet.
    pub fn uplink_busy(&self, h: HostId) -> bool {
        self.hosts[h.0 as usize].port.busy()
    }

    /// Utilization of host `h`'s TOR→host downlink so far.
    pub fn downlink_utilization(&self, h: HostId) -> f64 {
        let r = self.topo.rack_of(h) as usize;
        let p = self.topo.index_in_rack(h) as usize;
        self.tors[r].ports[p].stats.utilization(self.now)
    }

    /// Total wire bytes transmitted on host uplinks per priority level
    /// (Figure 21's traffic-by-priority accounting).
    pub fn uplink_bytes_by_prio(&self) -> [u64; 8] {
        let mut out = [0u64; 8];
        for h in &self.hosts {
            for (i, b) in h.port.stats.bytes_by_prio.iter().enumerate() {
                out[i] += b;
            }
        }
        out
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        match ev {
            Ev::TxDone { node, port } => self.on_tx_done(node, port),
            Ev::SwitchArrive { node, pkt } => self.on_switch_arrive(node, pkt),
            Ev::HostDeliver { host, pkt } => {
                if self.paused[host.0 as usize] {
                    self.pause_buf[host.0 as usize].push(pkt);
                    self.deferred_deliveries += 1;
                    return;
                }
                self.deliver_to_host(host, pkt);
            }
            Ev::Fault { node, port, action } => self.apply_fault(node, port, action),
            Ev::Timer { host, token } => {
                let mut act = std::mem::take(&mut self.scratch);
                act.reset();
                let now = self.now;
                self.hosts[host.0 as usize].transport.on_timer(now, token, &mut act);
                self.apply_actions(host, act);
            }
        }
    }

    /// Hand a fully-arrived packet to a host's transport (the tail of the
    /// `HostDeliver` path, also used when a paused receiver resumes).
    fn deliver_to_host(&mut self, host: HostId, pkt: Packet<M>) {
        let mut act = std::mem::take(&mut self.scratch);
        act.reset();
        let now = self.now;
        self.hosts[host.0 as usize].transport.on_packet(now, pkt, &mut act);
        self.apply_actions(host, act);
    }

    /// Install a declarative fault plan: each fault becomes an event on
    /// the affected node's lane, so fault-laden runs replay bit-identically
    /// on either engine. May be called repeatedly; faults must not be
    /// scheduled in the past.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (at, fault) in plan.sorted_events() {
            assert!(at >= self.now, "fault scheduled in the past: {fault:?} at {at:?}");
            let (node, port, action) = self.resolve_fault(fault);
            let lane = self.lane_of(node);
            self.queue.schedule(lane, at, Ev::Fault { node, port, action });
        }
    }

    /// Resolve a declarative fault against the topology, validating ids.
    fn resolve_fault(&self, fault: Fault) -> (NodeId, u32, FaultAction) {
        let link_port = |link: LinkId| -> (NodeId, u32) {
            match link {
                LinkId::HostUplink(h) => {
                    assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                    (NodeId::Host(h), 0)
                }
                LinkId::HostDownlink(h) => {
                    assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                    (NodeId::Tor(self.topo.rack_of(h)), self.topo.index_in_rack(h))
                }
                LinkId::TorUplink { rack, spine } => {
                    assert!(rack < self.topo.racks && spine < self.topo.spines);
                    (NodeId::Tor(rack), self.topo.hosts_per_rack + spine)
                }
                LinkId::SpineDownlink { spine, rack } => {
                    assert!(rack < self.topo.racks && spine < self.topo.spines);
                    (NodeId::Spine(spine), rack)
                }
            }
        };
        match fault {
            Fault::LinkDown(l) => {
                let (n, p) = link_port(l);
                (n, p, FaultAction::LinkDown)
            }
            Fault::LinkUp(l) => {
                let (n, p) = link_port(l);
                (n, p, FaultAction::LinkUp)
            }
            Fault::RateLimit { link, bps } => {
                assert!(bps > 0, "rate limit must be positive");
                let (n, p) = link_port(link);
                (n, p, FaultAction::SetRate(bps))
            }
            Fault::RateRestore(l) => {
                let (n, p) = link_port(l);
                (n, p, FaultAction::RestoreRate)
            }
            Fault::PauseReceiver(h) => {
                assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                (NodeId::Host(h), 0, FaultAction::PauseRx)
            }
            Fault::ResumeReceiver(h) => {
                assert!(h.0 < self.topo.num_hosts(), "no such host {h}");
                (NodeId::Host(h), 0, FaultAction::ResumeRx)
            }
        }
    }

    fn apply_fault(&mut self, node: NodeId, port_idx: u32, action: FaultAction) {
        self.faults_applied += 1;
        match action {
            FaultAction::LinkDown => self.port_mut(node, port_idx).up = false,
            FaultAction::LinkUp => {
                self.port_mut(node, port_idx).up = true;
                // Restart service: a host pulls from its transport, a
                // switch port from its (preserved) queue.
                match node {
                    NodeId::Host(h) => self.poll_host_tx(h),
                    _ => {
                        let now = self.now;
                        let lane = self.lane_of(node);
                        let port = self.port_mut(node, port_idx);
                        if !port.busy() {
                            if let Some(next) = port.queue.dequeue(now) {
                                let done_at = Self::begin_tx(now, port, next);
                                self.queue.schedule(
                                    lane,
                                    done_at,
                                    Ev::TxDone { node, port: port_idx },
                                );
                            }
                        }
                    }
                }
            }
            FaultAction::SetRate(bps) => self.port_mut(node, port_idx).rate_bps = bps,
            FaultAction::RestoreRate => {
                let port = self.port_mut(node, port_idx);
                port.rate_bps = port.base_rate_bps;
            }
            FaultAction::PauseRx => {
                let NodeId::Host(h) = node else { unreachable!("pause resolved to a host") };
                self.paused[h.0 as usize] = true;
            }
            FaultAction::ResumeRx => {
                let NodeId::Host(h) = node else { unreachable!("resume resolved to a host") };
                self.paused[h.0 as usize] = false;
                // Deliver everything buffered while paused, in arrival
                // order, at the resume instant.
                for pkt in std::mem::take(&mut self.pause_buf[h.0 as usize]) {
                    self.deliver_to_host(h, pkt);
                }
            }
        }
    }

    fn apply_actions(&mut self, host: HostId, mut act: TransportActions) {
        for (at, token) in act.drain_timers() {
            debug_assert!(at >= self.now, "timer scheduled in the past");
            self.queue.schedule(LaneId(host.0), at.max(self.now), Ev::Timer { host, token });
        }
        for ev in act.drain_events() {
            self.app_events.push((self.now, host, ev));
        }
        let kick = act.take_tx_kick();
        act.reset();
        self.scratch = act;
        if kick {
            self.poll_host_tx(host);
        }
    }

    /// If the host uplink is idle, pull the next packet from the transport.
    fn poll_host_tx(&mut self, host: HostId) {
        let hn = &mut self.hosts[host.0 as usize];
        if hn.port.busy() || !hn.port.up {
            return;
        }
        let now = self.now;
        if let Some(pkt) = hn.transport.next_packet(now) {
            debug_assert_eq!(pkt.src, host, "transport emitted packet with wrong source");
            let done_at = Self::begin_tx(now, &mut hn.port, pkt);
            self.queue.schedule(
                LaneId(host.0),
                done_at,
                Ev::TxDone { node: NodeId::Host(host), port: 0 },
            );
        }
    }

    /// Occupy `port` with `pkt`; returns the completion time, which the
    /// caller must schedule as a `TxDone` for the port.
    fn begin_tx(now: SimTime, port: &mut Port<M>, pkt: Packet<M>) -> SimTime {
        debug_assert!(!port.busy(), "begin_tx on busy port");
        let dur = SimDuration::serialization(pkt.wire_bytes() as u64, port.rate_bps);
        let done_at = now + dur;
        port.stats.busy_ns += dur.as_nanos();
        port.stats.wire_bytes += pkt.wire_bytes() as u64;
        port.stats.goodput_bytes += pkt.meta.goodput_bytes() as u64;
        port.stats.packets += 1;
        port.stats.bytes_by_prio[(pkt.priority() as usize).min(7)] += pkt.wire_bytes() as u64;
        // Preemption-lag accounting for everything still waiting.
        port.queue.on_tx_start(&pkt, dur);
        port.sending = Some((pkt, done_at));
        done_at
    }

    fn on_tx_done(&mut self, node: NodeId, port_idx: u32) {
        let (prop_delay, host_sw_delay, switch_delay) =
            (self.topo.prop_delay, self.topo.host_sw_delay, self.topo.switch_delay);
        let (pkt, peer) = {
            let port = self.port_mut(node, port_idx);
            let (pkt, _) = port.sending.take().expect("TxDone without transmission");
            (pkt, port.peer)
        };

        // Deliver to the peer.
        match peer {
            NodeId::Host(h) => {
                let at = self.now + prop_delay + host_sw_delay;
                self.queue.schedule(LaneId(h.0), at, Ev::HostDeliver { host: h, pkt });
            }
            sw @ (NodeId::Tor(_) | NodeId::Spine(_)) => {
                let at = self.now + prop_delay + switch_delay;
                let lane = self.lane_of(sw);
                self.queue.schedule(lane, at, Ev::SwitchArrive { node: sw, pkt });
            }
        }

        // Keep the port busy with the next packet, if any.
        match node {
            NodeId::Host(h) => self.poll_host_tx(h),
            _ => {
                let now = self.now;
                let lane = self.lane_of(node);
                let port = self.port_mut(node, port_idx);
                // A downed link finishes its in-flight packet but does not
                // start another; service resumes on the LinkUp fault.
                if !port.up {
                    return;
                }
                if let Some(next) = port.queue.dequeue(now) {
                    let done_at = Self::begin_tx(now, port, next);
                    self.queue.schedule(lane, done_at, Ev::TxDone { node, port: port_idx });
                }
            }
        }
    }

    fn on_switch_arrive(&mut self, node: NodeId, mut pkt: Packet<M>) {
        let port_idx = self.route(node, pkt.dst);
        let now = self.now;
        let lane = self.lane_of(node);

        // Link-state check: packets routed to a downed egress are lost
        // (the switch has nowhere to forward them); transports recover
        // via their own retransmission machinery.
        if !self.port_mut(node, port_idx).up {
            self.fault_drops += 1;
            return;
        }
        let port = self.port_mut(node, port_idx);

        // Hot-path bypass: an idle port with an empty queue transmits the
        // packet immediately; `pass_through` performs the byte/ECN
        // accounting of an enqueue-then-dequeue pair without touching the
        // per-level FIFOs (observable state is identical).
        if !port.busy() && port.queue.pass_through(now, &mut pkt) {
            let done_at = Self::begin_tx(now, port, pkt);
            self.queue.schedule(lane, done_at, Ev::TxDone { node, port: port_idx });
            return;
        }

        let in_flight = port.in_flight_view().map(|(m, t)| (m.clone(), t));
        let _outcome = port.queue.enqueue(now, pkt, in_flight.as_ref().map(|(m, t)| (m, *t)));
        if !port.busy() {
            if let Some(next) = port.queue.dequeue(now) {
                let done_at = Self::begin_tx(now, port, next);
                self.queue.schedule(lane, done_at, Ev::TxDone { node, port: port_idx });
            }
        }
    }

    fn route(&mut self, node: NodeId, dst: HostId) -> u32 {
        match node {
            NodeId::Tor(r) => {
                if self.topo.rack_of(dst) == r {
                    self.topo.index_in_rack(dst)
                } else {
                    // Per-packet spraying across spine uplinks.
                    self.topo.hosts_per_rack + self.rng.gen_range(0..self.topo.spines)
                }
            }
            NodeId::Spine(_) => self.topo.rack_of(dst),
            NodeId::Host(_) => unreachable!("hosts do not route"),
        }
    }

    fn port_mut(&mut self, node: NodeId, port: u32) -> &mut Port<M> {
        match node {
            NodeId::Host(h) => &mut self.hosts[h.0 as usize].port,
            NodeId::Tor(r) => &mut self.tors[r as usize].ports[port as usize],
            NodeId::Spine(s) => &mut self.spines[s as usize].ports[port as usize],
        }
    }

    /// Whether host `h`'s transport is withholding grants right now
    /// (Figure 16 probe; see [`Transport::withholding_grants`]).
    pub fn withholding(&self, h: HostId) -> bool {
        self.hosts[h.0 as usize].transport.withholding_grants(self.now)
    }

    /// Collect fabric-level statistics.
    pub fn harvest_stats(&self) -> RunStats {
        let mut stats = RunStats {
            events_processed: self.events_processed,
            faults_applied: self.faults_applied,
            fault_drops: self.fault_drops,
            deferred_deliveries: self.deferred_deliveries,
            ..RunStats::default()
        };
        let now = self.now;
        let classes =
            [PortClass::HostUp, PortClass::TorUp, PortClass::SpineDown, PortClass::TorDown];
        let mut means: Vec<(PortClass, StreamingStats)> =
            classes.iter().map(|&c| (c, StreamingStats::default())).collect();
        let mut maxes: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();
        let mut drops: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();
        let mut trims: Vec<(PortClass, u64)> = classes.iter().map(|&c| (c, 0)).collect();

        let mut visit = |port: &Port<M>| {
            let idx = classes.iter().position(|&c| c == port.class).expect("known class");
            means[idx].1.push(port.queue.mean_bytes(now));
            maxes[idx].1 = maxes[idx].1.max(port.queue.max_bytes_seen());
            drops[idx].1 += port.queue.drops;
            trims[idx].1 += port.queue.trims;
            match port.class {
                PortClass::HostUp => stats.host_up_wire_bytes += port.stats.wire_bytes,
                PortClass::TorDown => {
                    stats.tor_down_wire_bytes += port.stats.wire_bytes;
                    stats.tor_down_goodput_bytes += port.stats.goodput_bytes;
                    stats.mean_downlink_utilization += port.stats.utilization(now);
                }
                _ => {}
            }
        };

        for h in &self.hosts {
            visit(&h.port);
        }
        for sw in self.tors.iter().chain(self.spines.iter()) {
            for p in &sw.ports {
                visit(p);
            }
        }
        if !self.hosts.is_empty() {
            stats.mean_downlink_utilization /= self.hosts.len() as f64;
        }
        stats.queue_means = means;
        stats.queue_maxes = maxes;
        stats.drops = drops;
        stats.trims = trims;
        stats
    }

    /// Seed used by this network's RNG (for reporting).
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::testutil::TestMeta;

    /// A trivially simple transport used to exercise the fabric: it sends
    /// each injected message as a single packet and reports delivery.
    struct Echoless {
        me: HostId,
        outbox: std::collections::VecDeque<Packet<TestMeta>>,
        delivered: u64,
    }

    impl Transport<TestMeta> for Echoless {
        fn on_packet(&mut self, _now: SimTime, pkt: Packet<TestMeta>, act: &mut TransportActions) {
            self.delivered += pkt.meta.goodput_bytes() as u64;
            act.event(AppEvent::MessageDelivered {
                src: pkt.src,
                tag: pkt.meta.bytes as u64,
                len: pkt.meta.goodput_bytes() as u64,
            });
        }
        fn on_timer(&mut self, _now: SimTime, _token: TimerToken, _act: &mut TransportActions) {}
        fn next_packet(&mut self, _now: SimTime) -> Option<Packet<TestMeta>> {
            self.outbox.pop_front()
        }
        fn inject_message(
            &mut self,
            _now: SimTime,
            dst: HostId,
            len: u64,
            _tag: u64,
            act: &mut TransportActions,
        ) {
            self.outbox.push_back(Packet::new(self.me, dst, TestMeta::data(len as u32 + 60, 0)));
            act.kick_tx();
        }
        fn delivered_bytes(&self) -> u64 {
            self.delivered
        }
    }

    fn simple_net(topo: Topology) -> Network<TestMeta, Echoless> {
        Network::new(topo, NetworkConfig::default(), |h| Echoless {
            me: h,
            outbox: Default::default(),
            delivered: 0,
        })
    }

    #[test]
    fn single_packet_crosses_single_switch() {
        let mut net = simple_net(Topology::single_switch(4));
        net.inject_message(HostId(0), HostId(1), 100, 7);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        let (at, host, ev) = &evs[0];
        assert_eq!(*host, HostId(1));
        assert!(
            matches!(ev, AppEvent::MessageDelivered { src, len: 100, .. } if *src == HostId(0))
        );
        // 160B on the wire at 10G = 128ns per host link; two links, one
        // switch delay (250ns), plus 1.5us software delay.
        let expect = 128 + 250 + 128 + 1500;
        assert_eq!(at.as_nanos(), expect);
    }

    #[test]
    fn cross_rack_goes_through_spine() {
        let topo = Topology::scaled_fabric(2, 2, 1);
        let mut net = simple_net(topo);
        net.inject_message(HostId(0), HostId(3), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        // Wire 1060B: host link 848ns, uplink (40G) 212ns x2, host link
        // 848ns, 3 switch delays, 1.5us software.
        let expect = 848 + 250 + 212 + 250 + 212 + 250 + 848 + 1500;
        assert_eq!(evs[0].0.as_nanos(), expect);
    }

    #[test]
    fn two_senders_share_one_downlink() {
        let mut net = simple_net(Topology::single_switch(4));
        net.inject_message(HostId(0), HostId(2), 1000, 1);
        net.inject_message(HostId(1), HostId(2), 1000, 2);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        // Both packets arrive at the TOR simultaneously; the second must
        // wait for the first to serialize on the downlink (848ns for
        // 1060B).
        let gap = evs[1].0.as_nanos() - evs[0].0.as_nanos();
        assert_eq!(gap, 848);
    }

    #[test]
    fn stats_track_utilization_and_queues() {
        let mut net = simple_net(Topology::single_switch(4));
        for i in 0..50 {
            net.inject_message(HostId(0), HostId(2), 1400, i);
            net.inject_message(HostId(1), HostId(2), 1400, 100 + i);
        }
        net.run_until(SimTime::from_millis(1));
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0);
        // The shared downlink must have queued somewhere along the way.
        assert!(stats.max_queue_bytes(PortClass::TorDown).unwrap() > 0);
        assert!(stats.tor_down_wire_bytes >= 100 * 1460);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = Topology::scaled_fabric(2, 4, 2);
            let mut net = simple_net(topo);
            for i in 0..20 {
                net.inject_message(
                    HostId(i % 8),
                    HostId((i + 3) % 8),
                    500 + (i as u64) * 7,
                    i as u64,
                );
                net.run_until(SimTime::from_micros(5 * (i as u64 + 1)));
            }
            net.run_until(SimTime::from_millis(2));
            net.take_app_events()
                .into_iter()
                .map(|(t, h, _)| (t.as_nanos(), h.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engines_agree_event_for_event() {
        // The hierarchical engine must replay the legacy heap's run
        // bit-for-bit: same delivery times, same hosts, same event count.
        let run = |engine: EngineKind| {
            let topo = Topology::multi_tor(40);
            let cfg = NetworkConfig::default().with_engine(engine);
            let mut net = Network::new(topo, cfg, |h| Echoless {
                me: h,
                outbox: Default::default(),
                delivered: 0,
            });
            for i in 0..200u32 {
                net.inject_message(
                    HostId(i % 40),
                    HostId((i * 7 + 1) % 40),
                    300 + (i as u64) * 13,
                    i as u64,
                );
                net.run_until(SimTime::from_micros(2 * (i as u64 + 1)));
            }
            net.run_until(SimTime::from_millis(5));
            let evs: Vec<_> =
                net.take_app_events().into_iter().map(|(t, h, _)| (t.as_nanos(), h.0)).collect();
            (evs, net.events_processed())
        };
        let hier = run(EngineKind::Hierarchical);
        let legacy = run(EngineKind::LegacyHeap);
        assert_eq!(hier, legacy);
        assert!(hier.1 > 500, "only {} events", hier.1);
    }

    #[test]
    fn hundred_host_fabric_delivers_all_to_all() {
        let topo = Topology::multi_tor(100);
        let mut net = Network::new(
            topo,
            // Pin the engine: the lane-count assertion below is about the
            // hierarchical engine regardless of the workspace default.
            NetworkConfig::default().with_engine(EngineKind::Hierarchical),
            |h| Echoless { me: h, outbox: Default::default(), delivered: 0 },
        );
        for i in 0..100u32 {
            net.inject_message(HostId(i), HostId((i + 37) % 100), 2_000, i as u64);
        }
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.take_app_events().len(), 100);
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0);
        assert_eq!(stats.events_processed, net.events_processed());
        // Host lanes + 10 TOR lanes + spine lanes.
        assert_eq!(net.engine_stats().lanes, 100 + 10 + net.topology().spines);
    }

    #[test]
    fn downed_link_drops_and_recovery_resumes_queue() {
        use crate::faults::{FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        // Host 2's downlink is down from 1µs to 100µs.
        net.install_faults(&FaultPlan::new().link_flaps(
            LinkId::HostDownlink(HostId(2)),
            1_000,
            99_000,
            1_000_000,
            1,
        ));
        // First message crosses before the fault.
        net.inject_message(HostId(0), HostId(2), 100, 1);
        net.run_until(SimTime::from_micros(5));
        assert_eq!(net.take_app_events().len(), 1);
        // Messages sent into the dark window are fault-dropped at the TOR.
        net.inject_message(HostId(0), HostId(2), 100, 2);
        net.inject_message(HostId(1), HostId(2), 100, 3);
        net.run_until(SimTime::from_millis(1));
        assert_eq!(net.take_app_events().len(), 0, "packets crossed a downed link");
        let stats = net.harvest_stats();
        assert_eq!(stats.fault_drops, 2);
        assert_eq!(stats.faults_applied, 2);
        // After link-up, traffic flows again.
        net.inject_message(HostId(0), HostId(2), 100, 4);
        net.run_until(SimTime::from_millis(2));
        assert_eq!(net.take_app_events().len(), 1);
    }

    #[test]
    fn downed_link_preserves_queued_packets() {
        use crate::faults::{Fault, FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        let link = LinkId::HostDownlink(HostId(2));
        // Two senders race onto host 2's downlink; the loser is queued at
        // the TOR when the link goes down mid-burst, and must survive.
        net.inject_message(HostId(0), HostId(2), 1000, 1);
        net.inject_message(HostId(1), HostId(2), 1000, 2);
        // Down just after the first packet starts serializing on the
        // downlink (~1100ns: 848ns uplink + 250ns switch delay).
        net.install_faults(
            &FaultPlan::new().at(1_200, Fault::LinkDown(link)).at(500_000, Fault::LinkUp(link)),
        );
        net.run_until(SimTime::from_micros(400));
        // Only the in-flight packet arrived during the outage.
        assert_eq!(net.take_app_events().len(), 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "queued packet lost across the flap");
        assert!(evs[0].0 >= SimTime::from_micros(500), "served before link-up");
        assert_eq!(net.harvest_stats().fault_drops, 0);
    }

    #[test]
    fn receiver_pause_defers_then_delivers_in_order() {
        use crate::faults::FaultPlan;
        let mut net = simple_net(Topology::single_switch(4));
        net.install_faults(&FaultPlan::new().receiver_pause(HostId(2), 1_000, 50_000));
        for i in 0..5u64 {
            net.inject_message(HostId(0), HostId(2), 200 + i, i);
        }
        net.run_until(SimTime::from_micros(40));
        assert_eq!(net.take_app_events().len(), 0, "paused host processed packets");
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 5);
        // All five delivered exactly at the resume instant, in send order.
        for (i, (at, host, ev)) in evs.iter().enumerate() {
            assert_eq!(at.as_nanos(), 50_000);
            assert_eq!(*host, HostId(2));
            assert!(
                matches!(ev, AppEvent::MessageDelivered { len, .. } if *len == 200 + i as u64),
                "out of order at {i}: {ev:?}"
            );
        }
        let stats = net.harvest_stats();
        assert_eq!(stats.deferred_deliveries, 5);
        assert_eq!(stats.faults_applied, 2);
    }

    #[test]
    fn rate_limit_slows_then_restores() {
        use crate::faults::{FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        // Cut host 0's uplink to 1 Gbps for the first 100µs.
        net.install_faults(&FaultPlan::new().rate_limit(
            LinkId::HostUplink(HostId(0)),
            0,
            100_000,
            1_000_000_000,
        ));
        // Advance past the fault instant so the SetRate event has fired
        // (injection at the same instant would race the event queue).
        net.run_until(SimTime::from_nanos(10));
        let t0 = net.now();
        net.inject_message(HostId(0), HostId(1), 1000, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        // 1060B at 1G = 8480ns first hop (vs 848ns at 10G), then 250ns
        // switch + 848ns downlink + 1.5µs software.
        assert_eq!((evs[0].0 - t0).as_nanos(), 8480 + 250 + 848 + 1500);
        // After restore, the same transfer is back to full speed.
        net.inject_message(HostId(0), HostId(1), 1000, 2);
        let t0 = net.now();
        net.run_until(SimTime::from_millis(2));
        let evs = net.take_app_events();
        assert_eq!((evs[0].0 - t0).as_nanos(), 848 + 250 + 848 + 1500);
    }

    #[test]
    fn downed_host_uplink_holds_packets_in_transport() {
        use crate::faults::{Fault, FaultPlan, LinkId};
        let mut net = simple_net(Topology::single_switch(4));
        let link = LinkId::HostUplink(HostId(0));
        net.install_faults(
            &FaultPlan::new().at(100, Fault::LinkDown(link)).at(200_000, Fault::LinkUp(link)),
        );
        net.run_until(SimTime::from_micros(1));
        // Injected while the uplink is down: the pull model keeps the
        // packet in the transport, so nothing is lost.
        net.inject_message(HostId(0), HostId(1), 500, 1);
        net.run_until(SimTime::from_micros(100));
        assert_eq!(net.take_app_events().len(), 0);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].0 >= SimTime::from_micros(200));
        assert_eq!(net.harvest_stats().fault_drops, 0);
    }

    #[test]
    fn engines_agree_under_faults() {
        use crate::faults::{FaultPlan, LinkId};
        let run = |engine: EngineKind| {
            let topo = Topology::scaled_fabric(2, 4, 2);
            let cfg = NetworkConfig::default().with_engine(engine);
            let mut net = Network::new(topo, cfg, |h| Echoless {
                me: h,
                outbox: Default::default(),
                delivered: 0,
            });
            net.install_faults(
                &FaultPlan::new()
                    .link_flaps(LinkId::HostDownlink(HostId(3)), 5_000, 20_000, 50_000, 4)
                    .receiver_pause(HostId(1), 10_000, 120_000)
                    .rate_limit(LinkId::TorUplink { rack: 0, spine: 0 }, 0, 300_000, 5_000_000_000),
            );
            for i in 0..120u32 {
                net.inject_message(
                    HostId(i % 8),
                    HostId((i * 3 + 1) % 8),
                    400 + i as u64 * 11,
                    i as u64,
                );
                net.run_until(SimTime::from_micros(3 * (i as u64 + 1)));
            }
            net.run_until(SimTime::from_millis(5));
            let evs: Vec<_> =
                net.take_app_events().into_iter().map(|(t, h, _)| (t.as_nanos(), h.0)).collect();
            (evs, net.events_processed(), format!("{:?}", net.harvest_stats()))
        };
        let hier = run(EngineKind::Hierarchical);
        let legacy = run(EngineKind::LegacyHeap);
        assert_eq!(hier, legacy);
        let stats_dbg = &hier.2;
        assert!(stats_dbg.contains("faults_applied: 12"), "fault count missing: {stats_dbg}");
    }

    #[test]
    fn downlink_idle_probe() {
        let mut net = simple_net(Topology::single_switch(4));
        assert!(net.downlink_idle(HostId(2)));
        net.inject_message(HostId(0), HostId(2), 14_000, 1);
        // Run a tiny amount: packet still serializing on uplink.
        net.run_until(SimTime::from_nanos(100));
        assert!(net.downlink_idle(HostId(2)));
        net.run_until(SimTime::from_millis(1));
        assert!(net.downlink_idle(HostId(2)));
        assert!(net.transport(HostId(2)).delivered_bytes() > 0);
    }
}
