//! # homa-sim — a deterministic packet-level datacenter network simulator
//!
//! This crate is the simulation substrate used to reproduce the evaluation of
//! *Homa: A Receiver-Driven Low-Latency Transport Protocol Using Network
//! Priorities* (SIGCOMM 2018). It plays the role the authors' OMNeT++
//! simulator played: a packet-level, discrete-event model of a two-level
//! leaf–spine datacenter fabric with priority-queue switches.
//!
//! ## Model
//!
//! * **Store-and-forward** switching (the paper's simulated switches do not
//!   support cut-through), with a configurable per-switch internal delay
//!   (250 ns in the paper).
//! * **Zero propagation delay** (per the paper), configurable.
//! * **Per-packet spraying**: packets from a TOR to the spine layer pick a
//!   random uplink, so core congestion is negligible and queueing
//!   concentrates on TOR→host downlinks.
//! * **Host model**: unlimited software throughput but a fixed software
//!   turnaround delay (1.5 µs in the paper) between a packet arriving at a
//!   host NIC and the transport being able to react to it.
//! * **Egress queue disciplines** selectable per port class: strict priority
//!   (8 levels, the commodity-switch model Homa/PIAS/pHost use), pFabric's
//!   dequeue-smallest-remaining/drop-largest-remaining, NDP's
//!   trim-to-header, and plain drop-tail. ECN marking is supported for
//!   DCTCP-style baselines.
//!
//! ## Structure
//!
//! The simulator is generic over the protocol's packet metadata type
//! ([`PacketMeta`]), so each transport protocol (Homa and every baseline)
//! carries its own headers through the same fabric. Protocol state machines
//! implement [`Transport`] and are pulled for packets NIC-style whenever
//! their host uplink goes idle, which lets senders reorder traffic (SRPT)
//! without modelling a deep NIC queue.
//!
//! Determinism: all events are ordered by `(time, sequence)` and all
//! randomness derives from one seeded RNG, so a run is a pure function of
//! its configuration.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`topology`] | §5.2 two-level leaf–spine fabric (Figure 11's 144 hosts) |
//! | [`queues`] | §5.2 switch models: strict priority (Homa/PIAS/pHost), pFabric, NDP trimming, ECN |
//! | [`network`] / [`events`] | the discrete-event substrate standing in for OMNeT++ |
//! | [`transport`] | the protocol-facing driver API (pull-model NICs, §5.2 host model) |
//! | [`delay`] | Figure 14's per-packet delay attribution |
//! | [`stats`] | Table 1 queue statistics, §5 run accounting |
//! | [`faults`] | beyond-paper: link flaps, receiver pauses, rate limits (scenario stress) |
//! | [`packet`] / [`time`] | shared vocabulary types |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod delay;
pub mod events;
pub mod faults;
pub mod network;
pub mod packet;
pub mod queues;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;

pub use delay::DelayBreakdown;
pub use events::{
    EngineKind, EngineStats, EventEngine, EventQueue, HierEventQueue, LaneId, TimerToken,
};
pub use faults::{Fault, FaultPlan, FaultSpec, LinkId};
pub use network::{EngineProfile, Network, NetworkConfig, StepOutput};
pub use packet::{CtrlKind, Packet, PacketMeta};
pub use queues::{EcnConfig, QueueDiscipline, QueueKind};
pub use stats::{GrantStats, PortClass, PortStats, QuantileSketch, RunStats, StreamingStats};
pub use time::{SimDuration, SimTime};
pub use topology::{FabricKind, HostId, NodeId, PathClass, Topology, TopologyError};
pub use trace::{FlightRecorder, MsgLifecycle, Timeline, TraceEvent, TraceRecord};
pub use transport::{AppEvent, Transport, TransportActions};
