//! Packets and protocol metadata.
//!
//! The simulator moves [`Packet`] envelopes between hosts. The envelope
//! carries addressing, instrumentation (delay attribution for Figure 14 of
//! the paper) and flags the fabric may set (ECN, trimming). Everything the
//! *protocol* cares about lives in the generic metadata `M`, so Homa and
//! each baseline define their own headers while sharing the fabric.

use crate::delay::DelayBreakdown;
use crate::topology::HostId;

/// Protocol-visible meaning of a control packet, for the flight
/// recorder. The fabric is protocol-agnostic, but grant and resend
/// events are central to the paper's analysis; metadata types that have
/// them report their semantics here so the trace layer can emit
/// [`crate::trace::TraceEvent::GrantIssued`]-family events from the
/// shared dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlKind {
    /// A receiver-driven grant: credit up to byte `offset`, send at
    /// scheduled priority `prio`.
    Grant {
        /// Granted byte offset.
        offset: u64,
        /// Scheduled priority assigned by the receiver.
        prio: u8,
    },
    /// A retransmission request for `len` bytes starting at `offset`.
    Resend {
        /// First missing byte.
        offset: u64,
        /// Missing byte count.
        len: u64,
    },
    /// Any other control packet (acks, busy, cutoff updates, ...).
    Other,
}

/// Protocol-specific packet metadata carried through the fabric.
///
/// Implementations should be cheap to clone; simulated packets carry no
/// payload bytes, only sizes. Metadata is required to be `Send` so the
/// conservative-window parallel dispatcher can move in-flight packets to
/// worker threads.
pub trait PacketMeta: Clone + std::fmt::Debug + Send + 'static {
    /// Total size of this packet on the wire, in bytes, including protocol
    /// headers and link-layer framing. This is what serialization time and
    /// queue occupancy are computed from.
    fn wire_bytes(&self) -> u32;

    /// The in-network priority of this packet for strict-priority queues.
    /// Higher values are served first; commodity switches provide 8 levels
    /// (0–7). Protocols that do not use priorities return 0 for everything.
    fn priority(&self) -> u8;

    /// Fine-grained priority for pFabric-style switches: the number of
    /// bytes remaining in the packet's message, where *smaller is more
    /// urgent*. `None` means the packet is not participating in pFabric
    /// scheduling (e.g. a control packet, which is served first).
    fn fine_priority(&self) -> Option<u64> {
        None
    }

    /// Whether this is a control packet (grant, token, ack, ...). Control
    /// packets bypass data in several disciplines and are excluded from
    /// goodput accounting.
    fn is_control(&self) -> bool;

    /// Application payload bytes carried (for goodput accounting).
    fn goodput_bytes(&self) -> u32;

    /// NDP-style trimming: return a copy of this packet with its payload
    /// removed (header retained) if the protocol supports it. The trimmed
    /// copy's [`wire_bytes`](Self::wire_bytes) should be the header size.
    /// `None` (the default) means the packet is dropped instead.
    fn trimmed(&self) -> Option<Self> {
        None
    }

    /// What kind of control packet this is, for trace attribution.
    /// `None` (the default) means data or a protocol without
    /// grant/resend semantics; only consulted when tracing is enabled.
    fn ctrl_kind(&self) -> Option<CtrlKind> {
        None
    }
}

/// A packet in flight: envelope plus protocol metadata.
#[derive(Debug, Clone)]
pub struct Packet<M> {
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Protocol metadata (headers).
    pub meta: M,
    /// ECN congestion-experienced mark, set by the fabric when a queue
    /// exceeds its marking threshold (used by the PIAS/DCTCP baseline).
    pub ecn: bool,
    /// Set by the fabric if the packet's payload was trimmed in transit
    /// (NDP baseline).
    pub was_trimmed: bool,
    /// Accumulated queueing-delay attribution across all hops.
    pub delay: DelayBreakdown,
}

impl<M: PacketMeta> Packet<M> {
    /// A fresh packet from `src` to `dst` carrying `meta`.
    pub fn new(src: HostId, dst: HostId, meta: M) -> Self {
        Packet { src, dst, meta, ecn: false, was_trimmed: false, delay: DelayBreakdown::default() }
    }

    /// Wire size of the packet in bytes (delegates to the metadata).
    pub fn wire_bytes(&self) -> u32 {
        self.meta.wire_bytes()
    }

    /// Strict priority level of the packet (delegates to the metadata).
    pub fn priority(&self) -> u8 {
        self.meta.priority()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A minimal metadata type used by the simulator's own unit tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestMeta {
        pub bytes: u32,
        pub prio: u8,
        pub control: bool,
        pub remaining: Option<u64>,
    }

    impl TestMeta {
        pub fn data(bytes: u32, prio: u8) -> Self {
            TestMeta { bytes, prio, control: false, remaining: None }
        }
        pub fn control(bytes: u32, prio: u8) -> Self {
            TestMeta { bytes, prio, control: true, remaining: None }
        }
    }

    impl PacketMeta for TestMeta {
        fn wire_bytes(&self) -> u32 {
            self.bytes
        }
        fn priority(&self) -> u8 {
            self.prio
        }
        fn fine_priority(&self) -> Option<u64> {
            self.remaining
        }
        fn is_control(&self) -> bool {
            self.control
        }
        fn goodput_bytes(&self) -> u32 {
            if self.control {
                0
            } else {
                self.bytes.saturating_sub(60)
            }
        }
        fn trimmed(&self) -> Option<Self> {
            if self.control {
                None
            } else {
                Some(TestMeta {
                    bytes: 60,
                    prio: 7,
                    control: self.control,
                    remaining: self.remaining,
                })
            }
        }
    }

    pub fn pkt(src: u32, dst: u32, meta: TestMeta) -> Packet<TestMeta> {
        Packet::new(HostId(src), HostId(dst), meta)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn envelope_defaults() {
        let p = pkt(0, 1, TestMeta::data(1500, 3));
        assert!(!p.ecn);
        assert!(!p.was_trimmed);
        assert_eq!(p.wire_bytes(), 1500);
        assert_eq!(p.priority(), 3);
        assert_eq!(p.delay.total().as_nanos(), 0);
    }

    #[test]
    fn test_meta_trim_produces_header_only() {
        let m = TestMeta::data(1500, 0);
        let t = m.trimmed().unwrap();
        assert_eq!(t.bytes, 60);
        assert_eq!(t.prio, 7);
        let c = TestMeta::control(40, 7);
        assert!(c.trimmed().is_none());
    }
}
