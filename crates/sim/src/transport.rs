//! The interface between protocol state machines and the simulated fabric.
//!
//! A [`Transport`] is one host's protocol instance (Homa, pFabric, ...).
//! It is a pure state machine: the network calls it with packets and
//! timers, and *pulls* outgoing packets from it whenever the host's uplink
//! is free. The pull model mirrors the paper's implementation note (§4)
//! that Homa keeps the NIC queue nearly empty so the sender can reorder
//! outgoing packets — with a pull, sender-side SRPT is exact.

use crate::events::TimerToken;
use crate::packet::{Packet, PacketMeta};
use crate::time::{SimDuration, SimTime};
use crate::topology::HostId;

/// Events a transport reports up to the application / experiment driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// A one-way message arrived in full at this host.
    MessageDelivered {
        /// Sender of the message.
        src: HostId,
        /// The sender-assigned tag passed to `inject_message`.
        tag: u64,
        /// Message length in application bytes.
        len: u64,
    },
    /// An RPC issued from this host completed (response fully received).
    RpcCompleted {
        /// The server that executed the RPC.
        server: HostId,
        /// The tag passed to `inject_rpc`.
        tag: u64,
        /// Response length in bytes.
        response_len: u64,
    },
    /// A request arrived at this host acting as a server. The driver is
    /// expected to send the response via `Transport::inject_response`.
    RpcRequestArrived {
        /// The client that issued the RPC.
        client: HostId,
        /// Protocol-level identifier to pass back to `inject_response`.
        rpc: u64,
        /// Request length in bytes.
        request_len: u64,
    },
    /// An RPC or message was aborted after exhausting retries.
    Aborted {
        /// Peer of the failed exchange.
        peer: HostId,
        /// Tag of the failed message/RPC.
        tag: u64,
    },
}

/// Side effects produced by a transport callback.
///
/// The fields are private by contract: transports *request* effects
/// through the methods below, and only the fabric (this crate) consumes
/// them. This keeps the interface one-directional — a transport cannot
/// observe or retract another callback's pending actions.
#[derive(Debug, Default)]
pub struct TransportActions {
    /// Timers to schedule (absolute times). Timers are not cancellable;
    /// transports are expected to ignore stale fires (lazy cancellation).
    timers: Vec<(SimTime, TimerToken)>,
    /// Set when the transport may now have packets to transmit; the network
    /// will poll `next_packet` if the uplink is idle.
    tx_kick: bool,
    /// Application-visible events.
    events: Vec<AppEvent>,
}

impl TransportActions {
    /// Empty action set.
    pub fn new() -> Self {
        TransportActions::default()
    }

    /// Clear in place (the network reuses one instance per host).
    pub fn reset(&mut self) {
        self.timers.clear();
        self.tx_kick = false;
        self.events.clear();
    }

    /// Schedule a timer at the absolute time `at` with `token`. Timers
    /// cannot be cancelled; schedule sparingly and ignore stale fires.
    pub fn timer(&mut self, at: SimTime, token: TimerToken) {
        self.timers.push((at, token));
    }

    /// Schedule a timer `after` from `now` — the common relative form.
    pub fn timer_after(&mut self, now: SimTime, after: SimDuration, token: TimerToken) {
        self.timers.push((now + after, token));
    }

    /// Request a transmit poll.
    pub fn kick_tx(&mut self) {
        self.tx_kick = true;
    }

    /// Emit an application event.
    pub fn event(&mut self, ev: AppEvent) {
        self.events.push(ev);
    }

    /// Application events emitted so far this callback (read-only; used
    /// by drivers and tests that inspect a transport's output directly).
    pub fn events(&self) -> &[AppEvent] {
        &self.events
    }

    /// Whether a transmit poll has been requested.
    pub fn wants_tx(&self) -> bool {
        self.tx_kick
    }

    /// Fabric side: drain scheduled timers.
    pub(crate) fn drain_timers(&mut self) -> std::vec::Drain<'_, (SimTime, TimerToken)> {
        self.timers.drain(..)
    }

    /// Fabric side: drain emitted events.
    pub(crate) fn drain_events(&mut self) -> std::vec::Drain<'_, AppEvent> {
        self.events.drain(..)
    }

    /// Fabric side: consume the transmit-poll request.
    pub(crate) fn take_tx_kick(&mut self) -> bool {
        std::mem::take(&mut self.tx_kick)
    }
}

/// One host's protocol instance.
///
/// Transports are plain state machines over owned data, so they are
/// required to be `Send`: the conservative-window parallel dispatcher
/// (see [`crate::events::EngineKind::ParallelHier`]) moves each rack's
/// transports onto worker threads for the duration of a window.
pub trait Transport<M: PacketMeta>: Send {
    /// A packet addressed to this host has been received and the host
    /// software delay has elapsed.
    fn on_packet(&mut self, now: SimTime, pkt: Packet<M>, act: &mut TransportActions);

    /// A previously-scheduled timer fired.
    fn on_timer(&mut self, now: SimTime, token: TimerToken, act: &mut TransportActions);

    /// The uplink is idle: return the next packet to transmit, or `None`.
    /// Called again immediately after each transmission completes, so the
    /// transport can implement SRPT/pacing exactly.
    ///
    /// Contract: queued *control* packets (acks, grants, tokens, pulls)
    /// must be returned before any data packet — the fabric serves
    /// control at high priority, and a sender that buries control
    /// behind data deadlocks its own flow-control loop. Returned
    /// packets must carry this host as their source.
    fn next_packet(&mut self, now: SimTime) -> Option<Packet<M>>;

    /// Begin sending a one-way message of `len` bytes to `dst`. `tag` is
    /// opaque and is echoed in the receiver's
    /// [`AppEvent::MessageDelivered`].
    fn inject_message(
        &mut self,
        now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    );

    /// Begin an RPC: send a request of `req_len` bytes to `server`; the
    /// response is reported via [`AppEvent::RpcCompleted`] with `tag`.
    /// Transports that only support one-way messages may leave this
    /// unimplemented.
    fn inject_rpc(
        &mut self,
        _now: SimTime,
        _server: HostId,
        _req_len: u64,
        _tag: u64,
        _act: &mut TransportActions,
    ) {
        unimplemented!("this transport does not support RPCs")
    }

    /// Send the response for an RPC previously surfaced via
    /// [`AppEvent::RpcRequestArrived`].
    fn inject_response(
        &mut self,
        _now: SimTime,
        _client: HostId,
        _rpc: u64,
        _resp_len: u64,
        _act: &mut TransportActions,
    ) {
        unimplemented!("this transport does not support RPCs")
    }

    /// Instrumentation hook for the Figure 16 wasted-bandwidth metric:
    /// true when this host, as a *receiver*, has at least one incomplete
    /// inbound message to which it is currently *not* granting (i.e. work
    /// it is withholding because of overcommitment limits). Protocols
    /// without grant withholding return false.
    fn withholding_grants(&self, _now: SimTime) -> bool {
        false
    }

    /// Bytes of (application) goodput this transport has delivered to its
    /// local application. Used for throughput accounting.
    fn delivered_bytes(&self) -> u64 {
        0
    }

    /// Retrieve (and clear) the accumulated queueing-delay attribution for
    /// a delivered message, identified by its sender and tag. Transports
    /// that do not track attribution return the zero breakdown. Used by
    /// the Figure 14 analysis; tracking may need to be enabled explicitly
    /// on the transport.
    fn take_message_delay(&mut self, _src: HostId, _tag: u64) -> crate::delay::DelayBreakdown {
        crate::delay::DelayBreakdown::default()
    }

    /// Grant/overcommit credit this host has issued as a *receiver*,
    /// summed into [`crate::RunStats::grants`] at harvest. Protocols
    /// without receiver-driven grants report zeros.
    fn grant_stats(&self) -> crate::stats::GrantStats {
        crate::stats::GrantStats::default()
    }
}
