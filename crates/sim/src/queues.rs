//! Egress-port queue disciplines.
//!
//! Each switch output port owns one [`PortQueue`], configured with a
//! [`QueueKind`]:
//!
//! * [`QueueKind::StrictPriority`] — the commodity-switch model the paper
//!   builds on: one FIFO per priority level (8 on modern switches), higher
//!   levels strictly first. Used by Homa, pHost, PIAS, Basic and Stream.
//! * [`QueueKind::Pfabric`] — pFabric's idealized switch: dequeue the packet
//!   with the fewest remaining message bytes; on overflow drop the queued
//!   packet with the *most* remaining bytes. Control packets are served
//!   before data.
//! * [`QueueKind::NdpTrim`] — NDP's switch: a short FIFO for data packets;
//!   when it is full an arriving data packet has its payload trimmed off and
//!   the header joins a strictly-higher-priority control queue.
//! * [`QueueKind::DropTail`] — a single FIFO, for TCP-like baselines.
//!
//! All disciplines share a byte capacity, optional ECN marking (used by the
//! PIAS/DCTCP baseline) and the preemption-lag accounting that feeds
//! Figure 14: while a packet waits, time during which the link is occupied
//! by a *lower-priority* packet is accounted as preemption lag, the rest as
//! ordinary queueing delay.

use crate::packet::{Packet, PacketMeta};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which scheduling/drop policy a port uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueKind {
    /// One FIFO per priority level; strictly higher levels first.
    StrictPriority {
        /// Number of priority levels the port supports (8 on commodity
        /// switches). Packet priorities are clamped into range.
        levels: u8,
    },
    /// pFabric: dequeue smallest-remaining, drop largest-remaining.
    Pfabric,
    /// NDP: short data FIFO with payload trimming to a high-priority
    /// control queue.
    NdpTrim {
        /// Maximum number of *untrimmed data* packets queued (NDP uses 8).
        data_cap_packets: usize,
    },
    /// Single FIFO with tail drop.
    DropTail,
}

/// ECN marking configuration (DCTCP-style instantaneous-queue marking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcnConfig {
    /// Mark packets when the queue holds at least this many bytes at
    /// enqueue time.
    pub threshold_bytes: u64,
}

/// Full configuration of one port's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDiscipline {
    /// Scheduling/drop policy.
    pub kind: QueueKind,
    /// Total byte capacity of the port buffer (all levels together).
    pub cap_bytes: u64,
    /// Optional ECN marking.
    pub ecn: Option<EcnConfig>,
}

impl QueueDiscipline {
    /// The paper's commodity switch: 8 strict priorities with a generous
    /// (1 MB) shared buffer and no ECN.
    pub fn strict8(cap_bytes: u64) -> Self {
        QueueDiscipline { kind: QueueKind::StrictPriority { levels: 8 }, cap_bytes, ecn: None }
    }
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet queued intact.
    Accepted,
    /// Packet (or, for pFabric, a different queued packet) was dropped.
    Dropped,
    /// The packet's payload was trimmed; its header was queued.
    Trimmed,
}

struct Waiting<M> {
    pkt: Packet<M>,
    enqueued_at: SimTime,
    /// Time so far spent waiting while a lower-priority packet held the link.
    lag: SimDuration,
}

/// A port's queue: state for whichever discipline is configured.
pub struct PortQueue<M> {
    disc: QueueDiscipline,
    /// Strict priority: one FIFO per level, index = level (0 lowest).
    levels: Vec<VecDeque<Waiting<M>>>,
    /// pFabric / DropTail shared pool (pFabric scans it, DropTail FIFOs it).
    pool: VecDeque<Waiting<M>>,
    /// NDP control/trimmed-header queue (strictly before `pool`).
    ctrl: VecDeque<Waiting<M>>,
    bytes: u64,
    /// Statistics counters (read by the port owner).
    pub drops: u64,
    /// Number of packets trimmed by this queue (NDP).
    pub trims: u64,
    /// Number of packets ECN-marked by this queue.
    pub ecn_marks: u64,
    max_bytes_seen: u64,
    /// Time-weighted integral of queue bytes (for mean queue length).
    byte_time_integral: u128,
    last_change: SimTime,
    /// `(waited, lag)` of the most recent dequeue — read by the flight
    /// recorder so the per-packet wait can be traced without changing the
    /// `dequeue` signature.
    last_wait: (SimDuration, SimDuration),
}

impl<M: PacketMeta> PortQueue<M> {
    /// An empty queue with the given discipline.
    pub fn new(disc: QueueDiscipline) -> Self {
        let levels = match disc.kind {
            QueueKind::StrictPriority { levels } => {
                (0..levels.max(1)).map(|_| VecDeque::new()).collect()
            }
            _ => Vec::new(),
        };
        PortQueue {
            disc,
            levels,
            pool: VecDeque::new(),
            ctrl: VecDeque::new(),
            bytes: 0,
            drops: 0,
            trims: 0,
            ecn_marks: 0,
            max_bytes_seen: 0,
            byte_time_integral: 0,
            last_change: SimTime::ZERO,
            last_wait: (SimDuration::ZERO, SimDuration::ZERO),
        }
    }

    /// Bytes currently queued (not counting any packet being transmitted).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of packets currently queued.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|q| q.len()).sum::<usize>() + self.pool.len() + self.ctrl.len()
    }

    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest instantaneous queue length observed, in bytes.
    pub fn max_bytes_seen(&self) -> u64 {
        self.max_bytes_seen
    }

    /// Time-weighted mean queue length in bytes over `[0, now]`.
    pub fn mean_bytes(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            return 0.0;
        }
        let integral = self.byte_time_integral
            + self.bytes as u128 * (now.as_nanos() - self.last_change.as_nanos()) as u128;
        integral as f64 / now.as_nanos() as f64
    }

    fn touch(&mut self, now: SimTime) {
        let dt = now.as_nanos().saturating_sub(self.last_change.as_nanos());
        self.byte_time_integral += self.bytes as u128 * dt as u128;
        self.last_change = now;
    }

    fn account_add(&mut self, now: SimTime, b: u64) {
        self.touch(now);
        self.bytes += b;
        self.max_bytes_seen = self.max_bytes_seen.max(self.bytes);
    }

    fn account_remove(&mut self, now: SimTime, b: u64) {
        self.touch(now);
        debug_assert!(self.bytes >= b);
        self.bytes -= b;
    }

    /// Offer `pkt` to the queue at time `now`.
    ///
    /// `in_flight` describes the packet currently being transmitted on this
    /// port (if any) so that a newly-arrived higher-priority packet can be
    /// credited preemption lag for the remainder of that transmission.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        mut pkt: Packet<M>,
        in_flight: Option<(&M, SimTime)>,
    ) -> EnqueueOutcome {
        // ECN: mark based on instantaneous occupancy at arrival.
        if let Some(ecn) = self.disc.ecn {
            if self.bytes >= ecn.threshold_bytes {
                pkt.ecn = true;
                self.ecn_marks += 1;
            }
        }

        let size = pkt.wire_bytes() as u64;
        let mut outcome = EnqueueOutcome::Accepted;

        match self.disc.kind {
            QueueKind::StrictPriority { levels } => {
                if self.bytes + size > self.disc.cap_bytes {
                    self.drops += 1;
                    #[cfg(feature = "drop-debug")]
                    eprintln!("DROP at {now:?}: {:?} (queue {} bytes)", pkt, self.bytes);
                    return EnqueueOutcome::Dropped;
                }
                let lvl = (pkt.priority()).min(levels - 1) as usize;
                let w = self.fresh_waiting(now, pkt, in_flight);
                self.account_add(now, size);
                self.levels[lvl].push_back(w);
            }
            QueueKind::Pfabric => {
                if self.bytes + size > self.disc.cap_bytes {
                    // Drop the packet with the largest remaining bytes among
                    // the queued data packets and the arrival. Control
                    // packets are never dropped (they are tiny).
                    let arriving_rem = pkt.meta.fine_priority();
                    let victim = self
                        .pool
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| w.pkt.meta.fine_priority().map(|r| (i, r)))
                        .max_by_key(|&(i, r)| (r, i));
                    match (victim, arriving_rem) {
                        (Some((vi, vr)), Some(ar)) if vr >= ar => {
                            // Evict the queued packet, admit the arrival.
                            let evicted = self.pool.remove(vi).expect("victim index valid");
                            self.account_remove(now, evicted.pkt.wire_bytes() as u64);
                            self.drops += 1;
                            let w = self.fresh_waiting(now, pkt, in_flight);
                            self.account_add(now, size);
                            self.pool.push_back(w);
                            outcome = EnqueueOutcome::Accepted;
                        }
                        (_, Some(_)) => {
                            // Arrival has the most remaining bytes (or queue
                            // holds only control packets): drop the arrival.
                            self.drops += 1;
                            return EnqueueOutcome::Dropped;
                        }
                        (_, None) => {
                            // Control packet: admit even over capacity.
                            let w = self.fresh_waiting(now, pkt, in_flight);
                            self.account_add(now, size);
                            self.pool.push_back(w);
                        }
                    }
                } else {
                    let w = self.fresh_waiting(now, pkt, in_flight);
                    self.account_add(now, size);
                    self.pool.push_back(w);
                }
            }
            QueueKind::NdpTrim { data_cap_packets } => {
                let is_ctrl = pkt.meta.is_control() || pkt.was_trimmed;
                if is_ctrl {
                    if self.bytes + size > self.disc.cap_bytes {
                        self.drops += 1;
                        return EnqueueOutcome::Dropped;
                    }
                    let w = self.fresh_waiting(now, pkt, in_flight);
                    self.account_add(now, size);
                    self.ctrl.push_back(w);
                } else if self.pool.len() >= data_cap_packets {
                    match pkt.meta.trimmed() {
                        Some(tm) => {
                            self.trims += 1;
                            let mut header = pkt.clone();
                            header.meta = tm;
                            header.was_trimmed = true;
                            let hsize = header.wire_bytes() as u64;
                            let w = self.fresh_waiting(now, header, in_flight);
                            self.account_add(now, hsize);
                            self.ctrl.push_back(w);
                            outcome = EnqueueOutcome::Trimmed;
                        }
                        None => {
                            self.drops += 1;
                            return EnqueueOutcome::Dropped;
                        }
                    }
                } else {
                    if self.bytes + size > self.disc.cap_bytes {
                        self.drops += 1;
                        return EnqueueOutcome::Dropped;
                    }
                    let w = self.fresh_waiting(now, pkt, in_flight);
                    self.account_add(now, size);
                    self.pool.push_back(w);
                }
            }
            QueueKind::DropTail => {
                if self.bytes + size > self.disc.cap_bytes {
                    self.drops += 1;
                    return EnqueueOutcome::Dropped;
                }
                let w = self.fresh_waiting(now, pkt, in_flight);
                self.account_add(now, size);
                self.pool.push_back(w);
            }
        }
        outcome
    }

    fn fresh_waiting(
        &self,
        now: SimTime,
        pkt: Packet<M>,
        in_flight: Option<(&M, SimTime)>,
    ) -> Waiting<M> {
        // If the link is currently sending something this packet outranks,
        // the remainder of that transmission is preemption lag.
        let mut lag = SimDuration::ZERO;
        if let Some((meta, ends_at)) = in_flight {
            if outranks_kind(self.disc.kind, &pkt.meta, pkt.was_trimmed, meta, false)
                && ends_at > now
            {
                lag = ends_at - now;
            }
        }
        Waiting { pkt, enqueued_at: now, lag }
    }

    /// Hot-path bypass for an idle port: when the queue is empty and
    /// `pkt` would be accepted intact, perform exactly the accounting an
    /// enqueue-then-immediate-dequeue pair would (byte integral touch,
    /// `max_bytes_seen`, ECN marking) and return `true` so the caller can
    /// transmit the packet directly, skipping the per-level FIFOs and the
    /// dequeue scan. Returns `false` — with `pkt` untouched — whenever
    /// the discipline might drop, trim or reorder, in which case the
    /// caller must fall back to [`enqueue`](Self::enqueue).
    ///
    /// Only call this when the port is idle: a zero-length wait means no
    /// delay attribution and no preemption lag can accrue.
    pub fn pass_through(&mut self, now: SimTime, pkt: &mut Packet<M>) -> bool {
        if !self.is_empty() {
            return false;
        }
        let size = pkt.wire_bytes() as u64;
        if size > self.disc.cap_bytes {
            return false;
        }
        if let QueueKind::NdpTrim { data_cap_packets } = self.disc.kind {
            // A zero-capacity data FIFO trims even the first data packet.
            if data_cap_packets == 0 && !(pkt.meta.is_control() || pkt.was_trimmed) {
                return false;
            }
        }
        // Same ECN rule as `enqueue`: mark on instantaneous occupancy at
        // arrival (zero here, so only a zero threshold marks).
        if let Some(ecn) = self.disc.ecn {
            if self.bytes >= ecn.threshold_bytes {
                pkt.ecn = true;
                self.ecn_marks += 1;
            }
        }
        self.account_add(now, size);
        self.account_remove(now, size);
        true
    }

    /// Remove and return the next packet to transmit, stamping its delay
    /// attribution. Returns `None` when the queue is empty.
    pub fn dequeue(&mut self, now: SimTime) -> Option<Packet<M>> {
        let w = match self.disc.kind {
            QueueKind::StrictPriority { .. } => {
                let lvl = (0..self.levels.len()).rev().find(|&l| !self.levels[l].is_empty())?;
                self.levels[lvl].pop_front().expect("level nonempty")
            }
            QueueKind::Pfabric => {
                if self.pool.is_empty() {
                    return None;
                }
                // Control packets first, then smallest remaining; FIFO
                // within ties (stable via index).
                let idx = self
                    .pool
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, w)| match w.pkt.meta.fine_priority() {
                        None => (0u8, 0u64, *i),
                        Some(r) => (1u8, r, *i),
                    })
                    .map(|(i, _)| i)
                    .expect("pool nonempty");
                self.pool.remove(idx).expect("index valid")
            }
            QueueKind::NdpTrim { .. } => {
                if let Some(w) = self.ctrl.pop_front() {
                    w
                } else {
                    self.pool.pop_front()?
                }
            }
            QueueKind::DropTail => self.pool.pop_front()?,
        };
        self.account_remove(now, w.pkt.wire_bytes() as u64);
        let mut pkt = w.pkt;
        let waited = now.saturating_since(w.enqueued_at);
        let lag = w.lag.min(waited);
        pkt.delay.record_wait(waited, lag);
        self.last_wait = (waited.saturating_sub(lag), lag);
        Some(pkt)
    }

    /// `(queueing, preemption lag)` of the most recently dequeued packet's
    /// wait in this queue. Undefined before the first dequeue.
    pub fn last_wait(&self) -> (SimDuration, SimDuration) {
        self.last_wait
    }

    /// Whether metadata `a` strictly outranks `b` under this queue's
    /// discipline — the same rule the lag accounting uses, exposed so the
    /// flight recorder can report preemptions of an in-flight packet.
    pub fn would_outrank(&self, a: &M, a_trimmed: bool, b: &M) -> bool {
        outranks_kind(self.disc.kind, a, a_trimmed, b, false)
    }

    /// Inform the queue that the port just started transmitting `started`
    /// and will stay busy for `dur`: every queued packet that outranks it
    /// accrues preemption lag for that interval.
    pub fn on_tx_start(&mut self, started: &Packet<M>, dur: SimDuration) {
        let kind = self.disc.kind;
        let outranks = |a: &Waiting<M>| {
            outranks_kind(kind, &a.pkt.meta, a.pkt.was_trimmed, &started.meta, started.was_trimmed)
        };
        for q in self.levels.iter_mut() {
            for w in q.iter_mut() {
                if outranks(w) {
                    w.lag += dur;
                }
            }
        }
        // `pool` and `ctrl` need separate loops to satisfy the closure's
        // borrow of `w`.
        for w in self.pool.iter_mut() {
            if outranks(w) {
                w.lag += dur;
            }
        }
        for w in self.ctrl.iter_mut() {
            if outranks(w) {
                w.lag += dur;
            }
        }
    }
}

/// Whether packet metadata `a` strictly outranks `b` under queue `kind`.
fn outranks_kind<M: PacketMeta>(
    kind: QueueKind,
    a: &M,
    a_trimmed: bool,
    b: &M,
    b_trimmed: bool,
) -> bool {
    match kind {
        QueueKind::StrictPriority { .. } => a.priority() > b.priority(),
        QueueKind::Pfabric => {
            // Control packets outrank data; among data, fewer remaining
            // bytes outranks more.
            match (a.fine_priority(), b.fine_priority()) {
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(ra), Some(rb)) => ra < rb,
                (None, None) => false,
            }
        }
        QueueKind::NdpTrim { .. } => {
            (a.is_control() || a_trimmed) && !(b.is_control() || b_trimmed)
        }
        QueueKind::DropTail => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::testutil::{pkt, TestMeta};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn strict(cap: u64) -> PortQueue<TestMeta> {
        PortQueue::new(QueueDiscipline::strict8(cap))
    }

    #[test]
    fn strict_priority_orders_by_level() {
        let mut q = strict(1 << 20);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 1)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 5)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 3)), None);
        assert_eq!(q.dequeue(t(1)).unwrap().priority(), 5);
        assert_eq!(q.dequeue(t(1)).unwrap().priority(), 3);
        assert_eq!(q.dequeue(t(1)).unwrap().priority(), 1);
        assert!(q.dequeue(t(1)).is_none());
    }

    #[test]
    fn strict_priority_fifo_within_level() {
        let mut q = strict(1 << 20);
        for bytes in [100, 200, 300] {
            q.enqueue(t(0), pkt(0, 1, TestMeta::data(bytes, 2)), None);
        }
        assert_eq!(q.dequeue(t(1)).unwrap().wire_bytes(), 100);
        assert_eq!(q.dequeue(t(1)).unwrap().wire_bytes(), 200);
        assert_eq!(q.dequeue(t(1)).unwrap().wire_bytes(), 300);
    }

    #[test]
    fn strict_priority_drops_over_capacity() {
        let mut q = strict(250);
        assert_eq!(
            q.enqueue(t(0), pkt(0, 1, TestMeta::data(200, 0)), None),
            EnqueueOutcome::Accepted
        );
        assert_eq!(
            q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 7)), None),
            EnqueueOutcome::Dropped
        );
        assert_eq!(q.drops, 1);
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn priorities_above_levels_clamp() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::StrictPriority { levels: 2 },
            cap_bytes: 1 << 20,
            ecn: None,
        });
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 7)), None);
        assert_eq!(q.dequeue(t(0)).unwrap().priority(), 7);
    }

    #[test]
    fn ecn_marks_over_threshold() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::DropTail,
            cap_bytes: 1 << 20,
            ecn: Some(EcnConfig { threshold_bytes: 150 }),
        });
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 0)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 0)), None);
        // Queue now holds 200 >= 150 bytes: third packet is marked.
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 0)), None);
        let a = q.dequeue(t(0)).unwrap();
        let b = q.dequeue(t(0)).unwrap();
        let c = q.dequeue(t(0)).unwrap();
        assert!(!a.ecn && !b.ecn && c.ecn);
        assert_eq!(q.ecn_marks, 1);
    }

    #[test]
    fn pfabric_dequeues_smallest_remaining() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 1 << 20,
            ecn: None,
        });
        let mut big = TestMeta::data(1500, 0);
        big.remaining = Some(100_000);
        let mut small = TestMeta::data(1500, 0);
        small.remaining = Some(500);
        q.enqueue(t(0), pkt(0, 1, big), None);
        q.enqueue(t(0), pkt(0, 1, small), None);
        assert_eq!(q.dequeue(t(1)).unwrap().meta.remaining, Some(500));
        assert_eq!(q.dequeue(t(1)).unwrap().meta.remaining, Some(100_000));
    }

    #[test]
    fn pfabric_control_first() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 1 << 20,
            ecn: None,
        });
        let mut data = TestMeta::data(1500, 0);
        data.remaining = Some(1);
        q.enqueue(t(0), pkt(0, 1, data), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::control(40, 0)), None);
        assert!(q.dequeue(t(1)).unwrap().meta.control);
    }

    #[test]
    fn pfabric_drops_largest_remaining_on_overflow() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 3000,
            ecn: None,
        });
        let mut big = TestMeta::data(1500, 0);
        big.remaining = Some(100_000);
        let mut small = TestMeta::data(1500, 0);
        small.remaining = Some(500);
        q.enqueue(t(0), pkt(0, 1, big), None);
        q.enqueue(t(0), pkt(0, 1, small), None);
        // Queue full (3000 bytes). A medium packet evicts the big one.
        let mut med = TestMeta::data(1500, 0);
        med.remaining = Some(10_000);
        assert_eq!(q.enqueue(t(0), pkt(0, 1, med), None), EnqueueOutcome::Accepted);
        assert_eq!(q.drops, 1);
        let remainings: Vec<_> =
            std::iter::from_fn(|| q.dequeue(t(1))).map(|p| p.meta.remaining.unwrap()).collect();
        assert_eq!(remainings, vec![500, 10_000]);
    }

    #[test]
    fn pfabric_drops_arrival_when_it_is_largest() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::Pfabric,
            cap_bytes: 1500,
            ecn: None,
        });
        let mut small = TestMeta::data(1500, 0);
        small.remaining = Some(500);
        q.enqueue(t(0), pkt(0, 1, small), None);
        let mut big = TestMeta::data(1500, 0);
        big.remaining = Some(9_999_999);
        assert_eq!(q.enqueue(t(0), pkt(0, 1, big), None), EnqueueOutcome::Dropped);
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ndp_trims_when_data_queue_full() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::NdpTrim { data_cap_packets: 2 },
            cap_bytes: 1 << 20,
            ecn: None,
        });
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 0)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 0)), None);
        assert_eq!(
            q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 0)), None),
            EnqueueOutcome::Trimmed
        );
        assert_eq!(q.trims, 1);
        // Trimmed header dequeues before the full data packets.
        let first = q.dequeue(t(1)).unwrap();
        assert!(first.was_trimmed);
        assert_eq!(first.wire_bytes(), 60);
    }

    #[test]
    fn ndp_control_packets_bypass_data() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::NdpTrim { data_cap_packets: 8 },
            cap_bytes: 1 << 20,
            ecn: None,
        });
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 0)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::control(40, 0)), None);
        assert!(q.dequeue(t(1)).unwrap().meta.control);
    }

    #[test]
    fn droptail_fifo_and_cap() {
        let mut q: PortQueue<TestMeta> = PortQueue::new(QueueDiscipline {
            kind: QueueKind::DropTail,
            cap_bytes: 2000,
            ecn: None,
        });
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 5)), None);
        assert_eq!(
            q.enqueue(t(0), pkt(0, 1, TestMeta::data(1500, 7)), None),
            EnqueueOutcome::Dropped
        );
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(400, 0)), None);
        assert_eq!(q.dequeue(t(1)).unwrap().wire_bytes(), 1500);
        assert_eq!(q.dequeue(t(1)).unwrap().wire_bytes(), 400);
    }

    #[test]
    fn delay_attribution_queueing_vs_lag() {
        let mut q = strict(1 << 20);
        // A low-priority packet is in flight until t=1000; a high-priority
        // packet arriving at t=0 accrues 1000ns of preemption lag.
        let inflight = TestMeta::data(1250, 0);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 7)), Some((&inflight, t(1000))));
        let p = q.dequeue(t(1000)).unwrap();
        assert_eq!(p.delay.preemption_lag.as_nanos(), 1000);
        assert_eq!(p.delay.queueing.as_nanos(), 0);
    }

    #[test]
    fn delay_attribution_equal_priority_is_queueing() {
        let mut q = strict(1 << 20);
        let inflight = TestMeta::data(1250, 7);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 7)), Some((&inflight, t(1000))));
        let p = q.dequeue(t(1000)).unwrap();
        assert_eq!(p.delay.preemption_lag.as_nanos(), 0);
        assert_eq!(p.delay.queueing.as_nanos(), 1000);
    }

    #[test]
    fn on_tx_start_accrues_lag_for_outranking_waiters() {
        let mut q = strict(1 << 20);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 7)), None);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(100, 0)), None);
        // Port starts sending a priority-3 packet for 500ns: the P7 waiter
        // accrues lag, the P0 waiter does not.
        let started = pkt(0, 1, TestMeta::data(625, 3));
        q.on_tx_start(&started, SimDuration::from_nanos(500));
        let hi = q.dequeue(t(500)).unwrap();
        assert_eq!(hi.delay.preemption_lag.as_nanos(), 500);
        let lo = q.dequeue(t(500)).unwrap();
        assert_eq!(lo.delay.preemption_lag.as_nanos(), 0);
        assert_eq!(lo.delay.queueing.as_nanos(), 500);
    }

    #[test]
    fn mean_and_max_bytes_tracking() {
        let mut q = strict(1 << 20);
        q.enqueue(t(0), pkt(0, 1, TestMeta::data(1000, 0)), None);
        // Queue holds 1000 bytes over [0, 1000), then empties.
        let _ = q.dequeue(t(1000));
        assert_eq!(q.max_bytes_seen(), 1000);
        let mean = q.mean_bytes(t(2000));
        assert!((mean - 500.0).abs() < 1e-6, "mean {mean}");
    }
}
