//! Run statistics: link utilization, queue occupancy, drops.
//!
//! These feed Table 1 (queue lengths per fabric level), Figure 15
//! (bandwidth utilization), and Figure 16 (wasted bandwidth) of the paper.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Classification of an egress port by its position in the fabric, matching
/// the rows of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Host NIC → TOR.
    HostUp,
    /// TOR → spine (the paper's "TOR→Aggr").
    TorUp,
    /// Spine → TOR (the paper's "Aggr→TOR").
    SpineDown,
    /// TOR → host (the paper's "TOR→host", where Homa's queueing
    /// concentrates).
    TorDown,
}

impl PortClass {
    /// Human-readable label matching the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            PortClass::HostUp => "host->TOR",
            PortClass::TorUp => "TOR->Aggr",
            PortClass::SpineDown => "Aggr->TOR",
            PortClass::TorDown => "TOR->host",
        }
    }
}

/// Online mean/max accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    sum: f64,
    max: f64,
}

impl StreamingStats {
    /// Record one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation (0 if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Per-port transmission statistics maintained by the network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PortStats {
    /// Total nanoseconds the port spent serializing packets.
    pub busy_ns: u64,
    /// Total wire bytes transmitted.
    pub wire_bytes: u64,
    /// Application-goodput bytes transmitted.
    pub goodput_bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Wire bytes transmitted per strict-priority level (Figure 21).
    pub bytes_by_prio: [u64; 8],
    /// Packets dropped at this port's queue.
    pub drops: u64,
    /// Packets trimmed at this port's queue (NDP).
    pub trims: u64,
    /// Packets ECN-marked at this port's queue.
    pub ecn_marks: u64,
    /// Time-weighted mean queue length in bytes (filled in at harvest).
    pub mean_queue_bytes: f64,
    /// Maximum instantaneous queue length in bytes.
    pub max_queue_bytes: u64,
}

impl PortStats {
    /// Link utilization over `[0, now]` (busy fraction).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.busy_ns as f64 / now.as_nanos() as f64
        }
    }
}

/// Aggregate statistics for a finished (or in-progress) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-class aggregation of queue-length statistics: `(class, mean
    /// accumulator over ports' mean bytes, max over ports' max bytes)`.
    pub queue_means: Vec<(PortClass, StreamingStats)>,
    /// Max queue bytes per class.
    pub queue_maxes: Vec<(PortClass, u64)>,
    /// Total drops per class.
    pub drops: Vec<(PortClass, u64)>,
    /// Total trims per class.
    pub trims: Vec<(PortClass, u64)>,
    /// Sum of wire bytes transmitted on host uplinks (offered) and TOR
    /// downlinks (delivered).
    pub host_up_wire_bytes: u64,
    /// Wire bytes delivered on TOR→host downlinks.
    pub tor_down_wire_bytes: u64,
    /// Goodput bytes delivered on TOR→host downlinks.
    pub tor_down_goodput_bytes: u64,
    /// Mean downlink utilization across hosts.
    pub mean_downlink_utilization: f64,
    /// Total simulator events processed when the stats were harvested
    /// (the numerator of the `perf-smoke` events/sec metric).
    pub events_processed: u64,
    /// Fault events applied from an installed [`crate::FaultPlan`]
    /// (0 when no plan was installed).
    pub faults_applied: u64,
    /// Packets dropped because they were routed to a downed link.
    pub fault_drops: u64,
    /// Packet deliveries deferred by a receiver-pause fault (handed to
    /// the transport on resume).
    pub deferred_deliveries: u64,
}

impl RunStats {
    /// Mean queue bytes for a class, if any port of that class exists.
    pub fn mean_queue_bytes(&self, class: PortClass) -> Option<f64> {
        self.queue_means.iter().find(|(c, _)| *c == class).map(|(_, s)| s.mean())
    }

    /// Max queue bytes for a class.
    pub fn max_queue_bytes(&self, class: PortClass) -> Option<u64> {
        self.queue_maxes.iter().find(|(c, _)| *c == class).map(|&(_, m)| m)
    }

    /// Total drops for a class.
    pub fn drops_for(&self, class: PortClass) -> u64 {
        self.drops.iter().find(|(c, _)| *c == class).map(|&(_, d)| d).unwrap_or(0)
    }

    /// Total drops across all classes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().map(|&(_, d)| d).sum()
    }

    /// Total trims across all classes.
    pub fn total_trims(&self) -> u64 {
        self.trims.iter().map(|&(_, t)| t).sum()
    }
}

/// Percentile over a *sorted* slice using nearest-rank interpolation.
///
/// `p` in `[0, 100]`. Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_mean_max() {
        let mut s = StreamingStats::default();
        for v in [1.0, 2.0, 3.0, 10.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn streaming_stats_merge() {
        let mut a = StreamingStats::default();
        a.push(1.0);
        let mut b = StreamingStats::default();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 99.0) - 99.01).abs() < 0.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn port_class_labels() {
        assert_eq!(PortClass::TorDown.label(), "TOR->host");
        assert_eq!(PortClass::TorUp.label(), "TOR->Aggr");
    }

    #[test]
    fn port_stats_utilization() {
        let s = PortStats { busy_ns: 500, ..Default::default() };
        assert!((s.utilization(SimTime::from_nanos(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }
}
