//! Run statistics: link utilization, queue occupancy, drops.
//!
//! These feed Table 1 (queue lengths per fabric level), Figure 15
//! (bandwidth utilization), and Figure 16 (wasted bandwidth) of the paper.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Classification of an egress port by its position in the fabric, matching
/// the rows of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortClass {
    /// Host NIC → TOR.
    HostUp,
    /// TOR → spine (the paper's "TOR→Aggr").
    TorUp,
    /// Spine → TOR (the paper's "Aggr→TOR").
    SpineDown,
    /// TOR → host (the paper's "TOR→host", where Homa's queueing
    /// concentrates).
    TorDown,
}

impl PortClass {
    /// Human-readable label matching the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            PortClass::HostUp => "host->TOR",
            PortClass::TorUp => "TOR->Aggr",
            PortClass::SpineDown => "Aggr->TOR",
            PortClass::TorDown => "TOR->host",
        }
    }
}

/// Online mean/max accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    sum: f64,
    max: f64,
}

impl StreamingStats {
    /// Record one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation (0 if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Per-port transmission statistics maintained by the network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PortStats {
    /// Total nanoseconds the port spent serializing packets.
    pub busy_ns: u64,
    /// Total wire bytes transmitted.
    pub wire_bytes: u64,
    /// Application-goodput bytes transmitted.
    pub goodput_bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Wire bytes transmitted per strict-priority level (Figure 21).
    pub bytes_by_prio: [u64; 8],
    /// Packets dropped at this port's queue.
    pub drops: u64,
    /// Packets trimmed at this port's queue (NDP).
    pub trims: u64,
    /// Packets ECN-marked at this port's queue.
    pub ecn_marks: u64,
    /// Time-weighted mean queue length in bytes (filled in at harvest).
    pub mean_queue_bytes: f64,
    /// Maximum instantaneous queue length in bytes.
    pub max_queue_bytes: u64,
}

impl PortStats {
    /// Link utilization over `[0, now]` (busy fraction).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_nanos() == 0 {
            0.0
        } else {
            self.busy_ns as f64 / now.as_nanos() as f64
        }
    }
}

/// Grant/overcommit credit issued by one receiver transport (or, summed
/// at harvest, by every receiver in a run). Receiver-driven protocols
/// report these through [`crate::Transport::grant_stats`]; the defaults
/// are zero for protocols without grants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrantStats {
    /// Grant packets put on the wire.
    pub grants_issued: u64,
    /// Total new credit granted, in bytes (the integral of the
    /// overcommitment the receiver extended).
    pub granted_bytes: u64,
    /// Resend (retransmission) requests issued.
    pub resends_requested: u64,
}

impl GrantStats {
    /// Accumulate another receiver's counters into this one.
    pub fn merge(&mut self, other: &GrantStats) {
        self.grants_issued += other.grants_issued;
        self.granted_bytes += other.granted_bytes;
        self.resends_requested += other.resends_requested;
    }
}

/// Aggregate statistics for a finished (or in-progress) run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-class aggregation of queue-length statistics: `(class, mean
    /// accumulator over ports' mean bytes, max over ports' max bytes)`.
    pub queue_means: Vec<(PortClass, StreamingStats)>,
    /// Max queue bytes per class.
    pub queue_maxes: Vec<(PortClass, u64)>,
    /// Total drops per class.
    pub drops: Vec<(PortClass, u64)>,
    /// Total trims per class.
    pub trims: Vec<(PortClass, u64)>,
    /// Sum of wire bytes transmitted on host uplinks (offered) and TOR
    /// downlinks (delivered).
    pub host_up_wire_bytes: u64,
    /// Wire bytes delivered on TOR→host downlinks.
    pub tor_down_wire_bytes: u64,
    /// Goodput bytes delivered on TOR→host downlinks.
    pub tor_down_goodput_bytes: u64,
    /// Mean downlink utilization across hosts.
    pub mean_downlink_utilization: f64,
    /// Total simulator events processed when the stats were harvested
    /// (the numerator of the `perf-smoke` events/sec metric).
    pub events_processed: u64,
    /// Fault events applied from an installed [`crate::FaultPlan`]
    /// (0 when no plan was installed).
    pub faults_applied: u64,
    /// Packets dropped because they were routed to a downed link.
    pub fault_drops: u64,
    /// Packet deliveries deferred by a receiver-pause fault (handed to
    /// the transport on resume).
    pub deferred_deliveries: u64,
    /// Grant/overcommit credit summed over every receiver transport
    /// (zeros for protocols without receiver-driven grants).
    pub grants: GrantStats,
}

impl RunStats {
    /// Mean queue bytes for a class, if any port of that class exists.
    pub fn mean_queue_bytes(&self, class: PortClass) -> Option<f64> {
        self.queue_means.iter().find(|(c, _)| *c == class).map(|(_, s)| s.mean())
    }

    /// Max queue bytes for a class.
    pub fn max_queue_bytes(&self, class: PortClass) -> Option<u64> {
        self.queue_maxes.iter().find(|(c, _)| *c == class).map(|&(_, m)| m)
    }

    /// Total drops for a class.
    pub fn drops_for(&self, class: PortClass) -> u64 {
        self.drops.iter().find(|(c, _)| *c == class).map(|&(_, d)| d).unwrap_or(0)
    }

    /// Total drops across all classes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().map(|&(_, d)| d).sum()
    }

    /// Total trims across all classes.
    pub fn total_trims(&self) -> u64 {
        self.trims.iter().map(|&(_, t)| t).sum()
    }
}

/// A mergeable streaming quantile sketch with bounded *relative* error,
/// in the style of DDSketch (Masson et al., VLDB 2019): log-spaced
/// buckets of ratio `gamma = (1+alpha)/(1-alpha)` so any quantile
/// estimate is within `alpha` of the true value, using O(bins) memory
/// regardless of how many observations are pushed.
///
/// This is what lets the harness hot path drop its retained
/// `Vec<MsgRecord>` (O(messages) heap) for slowdown percentiles:
/// slowdowns span `[1, ~1000]`, which a 1% sketch covers in a few
/// hundred buckets. Non-positive observations are counted in a
/// dedicated zero bucket and reported as 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln(gamma)`, cached: bucket key of `v` is `ceil(ln(v)/ln_gamma)`.
    ln_gamma: f64,
    /// Sparse bucket -> count map. BTreeMap keeps iteration (and thus
    /// quantile scans and Debug output) deterministic.
    bins: std::collections::BTreeMap<i32, u64>,
    /// Observations `<= 0` (the log mapping can't represent them).
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(0.01)
    }
}

impl QuantileSketch {
    /// A sketch whose quantile estimates have relative error at most
    /// `alpha` (e.g. 0.01 for 1%).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            bins: std::collections::BTreeMap::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Record one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v <= 0.0 {
            self.zero_count += 1;
        } else {
            let key = (v.ln() / self.ln_gamma).ceil() as i32;
            *self.bins.entry(key).or_insert(0) += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of live buckets (the memory footprint, up to the map's
    /// per-node overhead).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Mean of observations (exact, not sketched; 0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (exact; 0 if none).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (exact; 0 if none).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimate the `p`-th percentile (`p` in `[0, 100]`), within
    /// `alpha` relative error. Returns 0.0 on an empty sketch.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Same nearest-rank convention as [`percentile`] over a sorted
        // slice: rank in [0, count-1].
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        if rank < self.zero_count {
            return 0.0;
        }
        let mut seen = self.zero_count;
        for (&key, &n) in &self.bins {
            seen += n;
            if seen > rank {
                // Bucket k covers (gamma^(k-1), gamma^k]; the midpoint
                // 2*gamma^k/(gamma+1) is within alpha of any member.
                let gamma_k = (key as f64 * self.ln_gamma).exp();
                let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
                return (2.0 * gamma_k / (gamma + 1.0)).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Merge another sketch into this one. Both must have been built
    /// with the same `alpha`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different error bounds"
        );
        for (&key, &n) in &other.bins {
            *self.bins.entry(key).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

/// Percentile over a *sorted* slice using nearest-rank interpolation.
///
/// `p` in `[0, 100]`. Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_mean_max() {
        let mut s = StreamingStats::default();
        for v in [1.0, 2.0, 3.0, 10.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn streaming_stats_merge() {
        let mut a = StreamingStats::default();
        a.push(1.0);
        let mut b = StreamingStats::default();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 99.0) - 99.01).abs() < 0.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn port_class_labels() {
        assert_eq!(PortClass::TorDown.label(), "TOR->host");
        assert_eq!(PortClass::TorUp.label(), "TOR->Aggr");
    }

    #[test]
    fn port_stats_utilization() {
        let s = PortStats { busy_ns: 500, ..Default::default() };
        assert!((s.utilization(SimTime::from_nanos(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn quantile_sketch_bounded_relative_error() {
        // Uniform, exponential-ish and constant streams: every sketched
        // percentile must be within alpha (plus rank slack) of exact.
        let mut s = QuantileSketch::new(0.01);
        let vals: Vec<f64> = (1..=10_000).map(|i| 1.0 + (i as f64) * 0.37).collect();
        for &v in &vals {
            s.push(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = percentile(&sorted, p);
            let est = s.percentile(p);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.011, "p{p}: exact {exact} vs sketch {est} (rel {rel})");
        }
        assert_eq!(s.count(), 10_000);
        assert!((s.mean() - sorted.iter().sum::<f64>() / 10_000.0).abs() < 1e-6);
        assert_eq!(s.min(), sorted[0]);
        assert_eq!(s.max(), sorted[9_999]);
        // O(bins): four orders of magnitude of values fit in few hundred buckets.
        assert!(s.bin_count() < 600, "{} buckets", s.bin_count());
    }

    #[test]
    fn quantile_sketch_merge_matches_single_stream() {
        let mut all = QuantileSketch::new(0.01);
        let mut a = QuantileSketch::new(0.01);
        let mut b = QuantileSketch::new(0.01);
        for i in 1..=1_000 {
            let v = (i as f64).sqrt();
            all.push(v);
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for p in [5.0, 50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p), "merge diverged at p{p}");
        }
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn quantile_sketch_edge_cases() {
        let empty = QuantileSketch::default();
        assert_eq!(empty.percentile(50.0), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);

        // Non-positive values land in the zero bucket and report as 0.
        let mut s = QuantileSketch::default();
        s.push(-3.0);
        s.push(0.0);
        s.push(10.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.percentile(0.0), 0.0);
        let p100 = s.percentile(100.0);
        assert!((p100 - 10.0).abs() / 10.0 <= 0.01, "p100 {p100}");

        // A single value is reported (nearly) exactly at every percentile.
        let mut one = QuantileSketch::default();
        one.push(42.0);
        for p in [0.0, 50.0, 100.0] {
            assert!((one.percentile(p) - 42.0).abs() / 42.0 <= 0.01);
        }
    }
}
