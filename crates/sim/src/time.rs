//! Simulated time.
//!
//! Time is an integer count of nanoseconds since the start of the run.
//! Integer time makes event ordering exact and runs reproducible; a
//! nanosecond is fine enough to resolve the serialization time of a single
//! byte at 100 Gbps (0.08 ns rounds to 0, so byte-level rounding only
//! matters above ~80 Gbps; the paper's fabric is 10/40 Gbps where one byte
//! is 0.8/0.2 ns).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since the run started).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since the start of the run, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The time needed to serialize `bytes` bytes onto a link of
    /// `bits_per_sec`, rounded up to the next nanosecond so that a link is
    /// never modelled as faster than configured.
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8 * 1_000_000_000;
        SimDuration(bits.div_ceil(bits_per_sec as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0);
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - SimTime::from_micros(5)).as_nanos(), 10_000);
        assert_eq!(
            SimTime::from_micros(5).saturating_since(SimTime::from_micros(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn serialization_time_10g() {
        // A 1250-byte packet at 10 Gbps is exactly 1 microsecond.
        let d = SimDuration::serialization(1250, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_000);
        // Rounds up: 1 byte at 10 Gbps is 0.8ns -> 1ns.
        let d = SimDuration::serialization(1, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1);
        // 40 Gbps link is 4x faster.
        let d = SimDuration::serialization(1250, 40_000_000_000);
        assert_eq!(d.as_nanos(), 250);
    }

    #[test]
    fn serialization_never_zero_for_nonzero_bytes() {
        let d = SimDuration::serialization(1, 400_000_000_000);
        assert!(d.as_nanos() >= 1);
        assert_eq!(SimDuration::serialization(0, 10_000_000_000).as_nanos(), 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
        assert_eq!(SimTime::MAX, SimTime::from_nanos(u64::MAX));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
    }
}
