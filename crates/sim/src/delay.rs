//! Per-packet delay attribution.
//!
//! Figure 14 of the paper decomposes the tail latency of short messages
//! into *preemption lag* (a high-priority packet waiting for a
//! lower-priority packet that already occupies the link — unavoidable
//! without link-level preemption) and *queueing delay* (waiting behind
//! packets of equal or higher priority). The fabric accumulates both
//! components into every packet as it traverses queues; the harness
//! aggregates them per message.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Accumulated wait-time decomposition for one packet across all hops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayBreakdown {
    /// Time spent waiting while the output link was busy transmitting a
    /// *lower-priority* packet (Figure 14's "PreemptionLag").
    pub preemption_lag: SimDuration,
    /// Time spent waiting behind packets of equal or higher priority
    /// (Figure 14's "QueuingDelay").
    pub queueing: SimDuration,
}

impl DelayBreakdown {
    /// Total queue-induced delay experienced by the packet.
    pub fn total(&self) -> SimDuration {
        self.preemption_lag + self.queueing
    }

    /// Record a completed wait interval of `waited` total, of which
    /// `lag` was attributable to a lower-priority packet holding the link.
    /// The remainder is classified as queueing delay.
    pub fn record_wait(&mut self, waited: SimDuration, lag: SimDuration) {
        debug_assert!(lag <= waited, "lag {lag:?} exceeds wait {waited:?}");
        self.preemption_lag += lag;
        self.queueing += waited.saturating_sub(lag);
    }

    /// Merge another breakdown into this one (used when aggregating the
    /// packets of a message).
    pub fn merge(&mut self, other: &DelayBreakdown) {
        self.preemption_lag += other.preemption_lag;
        self.queueing += other.queueing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_wait_splits_components() {
        let mut d = DelayBreakdown::default();
        d.record_wait(SimDuration::from_nanos(100), SimDuration::from_nanos(30));
        assert_eq!(d.preemption_lag.as_nanos(), 30);
        assert_eq!(d.queueing.as_nanos(), 70);
        assert_eq!(d.total().as_nanos(), 100);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DelayBreakdown::default();
        a.record_wait(SimDuration::from_nanos(10), SimDuration::from_nanos(10));
        let mut b = DelayBreakdown::default();
        b.record_wait(SimDuration::from_nanos(5), SimDuration::ZERO);
        a.merge(&b);
        assert_eq!(a.preemption_lag.as_nanos(), 10);
        assert_eq!(a.queueing.as_nanos(), 5);
    }
}
