//! The five paper workloads.
//!
//! Anchor points are the message-count deciles published as the x-axis
//! tick labels of Figures 8/12 in the paper (each tick is 10% of all
//! messages), with the minimum size chosen per workload. Sizes are
//! application-level message sizes in bytes.

use crate::dist::MessageSizeDist;
use serde::{Deserialize, Serialize};

/// One of the five workloads from Figure 1 of the paper, ordered by
/// average message size (W1 smallest, W5 most heavy-tailed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Facebook memcached ETC accesses: almost all messages are tiny.
    W1,
    /// Google search application.
    W2,
    /// All applications aggregated in a Google datacenter.
    W3,
    /// Facebook Hadoop cluster.
    W4,
    /// DCTCP web-search benchmark (the classic heavy-tailed workload).
    W5,
}

impl Workload {
    /// All five workloads in paper order.
    pub const ALL: [Workload; 5] =
        [Workload::W1, Workload::W2, Workload::W3, Workload::W4, Workload::W5];

    /// Short name ("W1" ... "W5").
    pub fn name(self) -> &'static str {
        match self {
            Workload::W1 => "W1",
            Workload::W2 => "W2",
            Workload::W3 => "W3",
            Workload::W4 => "W4",
            Workload::W5 => "W5",
        }
    }

    /// Human description as given in Figure 1 of the paper.
    pub fn description(self) -> &'static str {
        match self {
            Workload::W1 => "Facebook memcached (ETC model)",
            Workload::W2 => "Google search application",
            Workload::W3 => "Google datacenter aggregate",
            Workload::W4 => "Facebook Hadoop cluster",
            Workload::W5 => "DCTCP web search",
        }
    }

    /// The reconstructed message-size distribution (see module docs).
    pub fn dist(self) -> MessageSizeDist {
        match self {
            // W1's top decile is refined beyond the published deciles so
            // that >70% of *bytes* sit in messages under 1000 B, matching
            // the paper's description of the ETC workload ("more than 70%
            // of all network traffic, measured in bytes, was in messages
            // less than 1000 bytes").
            Workload::W1 => MessageSizeDist::from_anchors(vec![
                (1, 0.0),
                (2, 0.1),
                (3, 0.2),
                (5, 0.3),
                (11, 0.4),
                (28, 0.5),
                (85, 0.6),
                (167, 0.7),
                (291, 0.8),
                (508, 0.9),
                (650, 0.95),
                (900, 0.98),
                (1_500, 0.995),
                (16_129, 1.0),
            ]),
            // W2's top decile is refined so that ~75-80% of bytes are
            // unscheduled under RTTbytes = 9.7 KB, matching Figure 4
            // ("About 80% of all bytes are unscheduled" for W2, with 6 of
            // 8 levels allocated to unscheduled packets).
            Workload::W2 => MessageSizeDist::from_anchors(vec![
                (1, 0.0),
                (3, 0.1),
                (34, 0.2),
                (58, 0.3),
                (171, 0.4),
                (269, 0.5),
                (320, 0.6),
                (366, 0.7),
                (427, 0.8),
                (512, 0.9),
                (640, 0.95),
                (1_100, 0.98),
                (4_000, 0.995),
                (30_000, 0.999),
                (262_144, 1.0),
            ]),
            // W3's top decile is refined so that ~50% of bytes are
            // unscheduled, matching §5.2/Figure 21 (Homa "splits the
            // priorities evenly between scheduled and unscheduled" for
            // W3: 4 of 8 levels).
            Workload::W3 => MessageSizeDist::from_anchors(vec![
                (30, 0.0),
                (36, 0.1),
                (77, 0.2),
                (110, 0.3),
                (158, 0.4),
                (268, 0.5),
                (313, 0.6),
                (402, 0.7),
                (573, 0.8),
                (1_755, 0.9),
                (5_000, 0.95),
                (9_700, 0.975),
                (25_000, 0.99925),
                (5_114_695, 1.0),
            ]),
            Workload::W4 => MessageSizeDist::from_deciles(
                280,
                [315, 376, 502, 561, 662, 960, 6_387, 49_408, 120_373],
                10_000_000,
            ),
            Workload::W5 => MessageSizeDist::from_deciles(
                1_430,
                [7_210, 21_630, 28_840, 50_470, 70_658, 269_654, 1_058_428, 2_210_586, 11_537_442],
                28_840_000,
            ),
        }
    }

    /// Message sizes at the distribution's count deciles (10%..100%),
    /// i.e. the published x-axis tick labels of Figures 8/12. The
    /// figure-accuracy gate (`repro compare`) uses these to annotate
    /// reference percentiles with concrete sizes.
    pub fn decile_sizes(self) -> [u64; 10] {
        self.dist().decile_points().map(|(_, size)| size)
    }

    /// Parse "W1".."W5" (case-insensitive).
    pub fn parse(s: &str) -> Option<Workload> {
        match s.to_ascii_uppercase().as_str() {
            "W1" => Some(Workload::W1),
            "W2" => Some(Workload::W2),
            "W3" => Some(Workload::W3),
            "W4" => Some(Workload::W4),
            "W5" => Some(Workload::W5),
            _ => None,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_by_mean_size() {
        let means: Vec<f64> = Workload::ALL.iter().map(|w| w.dist().mean()).collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "workload means not increasing: {means:?}");
        }
    }

    #[test]
    fn w1_is_dominated_by_tiny_messages() {
        let d = Workload::W1.dist();
        // >85% of messages under 1000 bytes (paper: "more than 85%" for
        // three of the workloads, W1 the most extreme).
        assert!(d.cdf(1000) > 0.85, "cdf(1000)={}", d.cdf(1000));
        // W1: most bytes are in messages under 1000 bytes too (paper: >70%).
        assert!(d.byte_weighted_cdf(1000) > 0.70, "bytes cdf = {}", d.byte_weighted_cdf(1000));
    }

    #[test]
    fn w5_is_heavy_tailed() {
        let d = Workload::W5.dist();
        // Most bytes in messages over 1 MB (paper: messages > 1MB are 95%
        // of bytes for the web-search workload).
        assert!(
            d.byte_weighted_cdf(1_000_000) < 0.20,
            "bytes cdf = {}",
            d.byte_weighted_cdf(1_000_000)
        );
        // But a majority of *messages* are under 100 KB ("any message
        // shorter than 100 Kbytes was considered short").
        assert!(d.cdf(100_000) > 0.5);
    }

    #[test]
    fn deciles_match_anchors() {
        let d = Workload::W3.dist();
        assert_eq!(d.quantile(0.1), 36);
        assert_eq!(d.quantile(0.5), 268);
        assert_eq!(d.quantile(0.9), 1_755);
        assert_eq!(d.quantile(1.0), 5_114_695);
    }

    #[test]
    fn decile_sizes_match_quantiles() {
        for w in Workload::ALL {
            let d = w.dist();
            let deciles = w.decile_sizes();
            assert_eq!(deciles.len(), 10);
            for (i, &size) in deciles.iter().enumerate() {
                assert_eq!(size, d.quantile((i + 1) as f64 / 10.0));
            }
            // Deciles are non-decreasing and end at the support maximum.
            for pair in deciles.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
            assert_eq!(deciles[9], d.max_size());
        }
    }

    #[test]
    fn parse_round_trips() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
            assert_eq!(Workload::parse(&w.name().to_lowercase()), Some(w));
        }
        assert_eq!(Workload::parse("W9"), None);
    }

    #[test]
    fn unscheduled_fractions_match_paper_priority_splits() {
        // §5.2: Homa "allocates 7 priority levels for unscheduled packets
        // in W1, 4 in W3, and only 1 in W4 and W5"; Figure 4 shows 6 for
        // W2. The allocation is round(8 * unscheduled_byte_fraction), so
        // each workload's fraction must land in the corresponding band.
        let rtt = 9_700;
        let frac = |w: Workload| {
            let d = w.dist();
            d.mean_capped(rtt) / d.mean()
        };
        let levels = |f: f64| ((f * 8.0).round() as u8).clamp(1, 7);
        assert_eq!(levels(frac(Workload::W1)), 7, "W1 f={}", frac(Workload::W1));
        assert_eq!(levels(frac(Workload::W2)), 6, "W2 f={}", frac(Workload::W2));
        assert_eq!(levels(frac(Workload::W3)), 4, "W3 f={}", frac(Workload::W3));
        assert_eq!(levels(frac(Workload::W4)), 1, "W4 f={}", frac(Workload::W4));
        assert_eq!(levels(frac(Workload::W5)), 1, "W5 f={}", frac(Workload::W5));
    }

    #[test]
    fn unscheduled_fraction_decreases_with_heavier_tails() {
        // The fraction of bytes sent blindly (first RTTbytes of each
        // message) is what drives Homa's priority split: high for W1,
        // low for W5 (paper Figure 4 / §5.2: 7 unscheduled levels for W1,
        // 1 for W4/W5).
        let rtt = 9_700;
        let fracs: Vec<f64> = Workload::ALL
            .iter()
            .map(|w| {
                let d = w.dist();
                d.mean_capped(rtt) / d.mean()
            })
            .collect();
        assert!(fracs[0] > 0.9, "W1 unscheduled fraction {}", fracs[0]);
        assert!(fracs[4] < 0.2, "W5 unscheduled fraction {}", fracs[4]);
        for w in fracs.windows(2) {
            assert!(w[0] >= w[1] - 0.05, "not roughly decreasing: {fracs:?}");
        }
    }
}
