//! Source–destination traffic patterns ([`TrafficMatrix`]) and their
//! declarative descriptions ([`TrafficSpec`]).
//!
//! The paper's simulations use uniform-random all-to-all traffic (§5.2),
//! but its headline claims are about behavior under *stress*: incast
//! bursts (Figure 10, §3.6), overload, and mixed workloads. This module
//! makes the communication pattern a first-class, seedable value the
//! experiment drivers consume, instead of an ad-hoc `gen_range` pair
//! buried in the arrival generator:
//!
//! * [`PatternSpec::Uniform`] — the paper's default: src and dst drawn
//!   uniformly at random, dst ≠ src. Byte-compatible with the historical
//!   behavior (same RNG draws in the same order), so existing seeds
//!   replay unchanged.
//! * [`PatternSpec::Permutation`] — a fixed random derangement: each
//!   source sends only to its assigned partner. The classic worst case
//!   for centralized schedulers, and a clean pattern for measuring
//!   per-pair fairness.
//! * [`PatternSpec::Incast { fan_in }`] — `fan_in` senders all target
//!   host 0 (round-robin over senders), the §3.6 stress shape.
//! * [`PatternSpec::Shuffle`] — an all-to-all shuffle: each source
//!   cycles through every other host in round-robin order, like the
//!   transfer phase of a MapReduce shuffle.
//! * [`PatternSpec::Hotspot`] — a fraction of all messages target the
//!   hot rack (rack 0), with sources drawn rack-local or cross-rack;
//!   the remainder is uniform.
//!
//! On top of the pattern, a [`TrafficSpec`] can overlay a periodic
//! *victim flow* (a fixed src→dst probe whose latency is reported
//! separately by the drivers — the "innocent bystander" measurement) and
//! a *bimodal workload mix* (a fraction of messages sampled from a
//! second message-size workload, e.g. W1 mice over W4 elephants).

use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::Rng;

/// The source–destination pattern of a traffic scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternSpec {
    /// Uniform-random all-to-all (the paper's §5.2 default).
    Uniform,
    /// A fixed random derangement: host `i` always sends to `perm[i]`.
    Permutation,
    /// `fan_in` senders (hosts `1..=fan_in`, round-robin) all send to
    /// host 0.
    Incast {
        /// Number of distinct senders converging on host 0 (capped at
        /// `hosts - 1`).
        fan_in: u32,
    },
    /// All-to-all shuffle: each source walks all other hosts in
    /// round-robin order.
    Shuffle,
    /// A fraction of messages target the hot rack (rack 0).
    Hotspot {
        /// Fraction of messages addressed to the hot rack (0..1); the
        /// rest are uniform.
        hot_frac: f64,
        /// Sources of hot messages: inside the hot rack (`true`) or
        /// anywhere outside it (`false`).
        rack_local: bool,
    },
}

/// A periodic background "victim flow" overlaid on the main pattern: a
/// fixed-size message from `src` to `dst` every `period_ns`. The drivers
/// record victim completions separately, so a scenario can report what an
/// incast or a link flap does to an innocent bystander flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimSpec {
    /// Victim sender.
    pub src: u32,
    /// Victim receiver.
    pub dst: u32,
    /// Victim message size in bytes.
    pub size: u64,
    /// Injection period in nanoseconds (first injection at `period_ns`).
    pub period_ns: u64,
}

impl VictimSpec {
    /// A victim flow `src → dst` of `size`-byte messages every
    /// `period_ns`.
    pub fn new(src: u32, dst: u32, size: u64, period_ns: u64) -> Self {
        assert_ne!(src, dst, "victim flow cannot be self-addressed");
        assert!(period_ns > 0, "victim period must be positive");
        VictimSpec { src, dst, size, period_ns }
    }
}

/// A bimodal workload mix: with probability `frac`, a message's size is
/// sampled from `second` instead of the scenario's primary workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// The second mode's workload.
    pub second: Workload,
    /// Fraction of messages drawn from `second` (0..1).
    pub frac: f64,
}

/// Declarative description of a scenario's traffic: pattern plus optional
/// victim-flow overlay and bimodal size mix. The default spec reproduces
/// the historical uniform-random behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Source–destination pattern.
    pub pattern: PatternSpec,
    /// Optional periodic victim flow.
    pub victim: Option<VictimSpec>,
    /// Optional bimodal workload mix.
    pub mix: Option<MixSpec>,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec { pattern: PatternSpec::Uniform, victim: None, mix: None }
    }
}

impl TrafficSpec {
    /// The historical uniform-random pattern (the default).
    pub fn uniform() -> Self {
        TrafficSpec::default()
    }

    /// An incast of `fan_in` senders onto host 0.
    pub fn incast(fan_in: u32) -> Self {
        assert!(fan_in >= 1, "incast needs at least one sender");
        TrafficSpec { pattern: PatternSpec::Incast { fan_in }, ..TrafficSpec::default() }
    }

    /// A fixed random derangement.
    pub fn permutation() -> Self {
        TrafficSpec { pattern: PatternSpec::Permutation, ..TrafficSpec::default() }
    }

    /// An all-to-all shuffle.
    pub fn shuffle() -> Self {
        TrafficSpec { pattern: PatternSpec::Shuffle, ..TrafficSpec::default() }
    }

    /// A hotspot pattern: `hot_frac` of messages target rack 0, sourced
    /// rack-locally or cross-rack.
    pub fn hotspot(hot_frac: f64, rack_local: bool) -> Self {
        assert!((0.0..=1.0).contains(&hot_frac), "hot_frac must be in [0, 1]");
        TrafficSpec {
            pattern: PatternSpec::Hotspot { hot_frac, rack_local },
            ..TrafficSpec::default()
        }
    }

    /// Overlay a periodic victim flow.
    pub fn with_victim(mut self, victim: VictimSpec) -> Self {
        self.victim = Some(victim);
        self
    }

    /// Mix in a second workload for `frac` of messages.
    pub fn with_mix(mut self, second: Workload, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "mix fraction must be in [0, 1]");
        self.mix = Some(MixSpec { second, frac });
        self
    }

    /// Whether this spec is exactly the historical default (uniform, no
    /// victim, no mix), i.e. replays existing seeds unchanged.
    pub fn is_default(&self) -> bool {
        *self == TrafficSpec::default()
    }

    /// Materialize the pattern for a fabric of `hosts` hosts grouped into
    /// racks of `hosts_per_rack`. `seed` only feeds pattern-construction
    /// randomness (the permutation); per-message draws use the arrival
    /// generator's RNG.
    pub fn matrix(&self, hosts: u32, hosts_per_rack: u32, seed: u64) -> TrafficMatrix {
        TrafficMatrix::from_pattern(self.pattern, hosts, hosts_per_rack, seed)
    }

    /// How many host links the pattern actually loads, for converting a
    /// target load fraction into an arrival rate. Uniform-style patterns
    /// spread across every host uplink; an incast is bottlenecked by the
    /// single victim downlink, so "80% load" means 80% of *that* link.
    pub fn loaded_links(&self, hosts: u32) -> u32 {
        match self.pattern {
            PatternSpec::Incast { .. } => 1,
            PatternSpec::Hotspot { .. }
            | PatternSpec::Uniform
            | PatternSpec::Permutation
            | PatternSpec::Shuffle => hosts,
        }
    }
}

/// A materialized, stateful source–destination generator. Created from a
/// [`TrafficSpec`] (or directly via [`TrafficMatrix::incast`]) and driven
/// by [`draw`](Self::draw) once per message.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    hosts: u32,
    kind: MatrixKind,
}

#[derive(Debug, Clone)]
enum MatrixKind {
    Uniform,
    Permutation { perm: Vec<u32> },
    Incast { senders: u32, next: u32 },
    Shuffle { counters: Vec<u32> },
    Hotspot { hot_frac: f64, rack_local: bool, hot_hosts: u32 },
}

impl TrafficMatrix {
    /// Materialize `pattern` over `hosts` hosts in racks of
    /// `hosts_per_rack`.
    pub fn from_pattern(pattern: PatternSpec, hosts: u32, hosts_per_rack: u32, seed: u64) -> Self {
        assert!(hosts >= 2, "patterns need at least two hosts");
        let kind = match pattern {
            PatternSpec::Uniform => MatrixKind::Uniform,
            PatternSpec::Permutation => MatrixKind::Permutation { perm: derangement(hosts, seed) },
            PatternSpec::Incast { fan_in } => {
                MatrixKind::Incast { senders: fan_in.clamp(1, hosts - 1), next: 0 }
            }
            PatternSpec::Shuffle => MatrixKind::Shuffle { counters: vec![0; hosts as usize] },
            PatternSpec::Hotspot { hot_frac, rack_local } => {
                let hot_hosts = hosts_per_rack.min(hosts);
                if rack_local {
                    assert!(hot_hosts >= 2, "rack-local hotspot needs >= 2 hosts in the hot rack");
                } else {
                    assert!(hot_hosts < hosts, "cross-rack hotspot needs hosts outside rack 0");
                }
                MatrixKind::Hotspot { hot_frac, rack_local, hot_hosts }
            }
        };
        TrafficMatrix { hosts, kind }
    }

    /// The uniform-random pattern.
    pub fn uniform(hosts: u32) -> Self {
        TrafficMatrix::from_pattern(PatternSpec::Uniform, hosts, hosts, 0)
    }

    /// An incast of `fan_in` senders onto host 0: successive draws
    /// rotate round-robin over hosts `1..=min(fan_in, hosts-1)`. This is
    /// also the fan-in selector `run_incast` uses for its request
    /// spraying.
    pub fn incast(fan_in: u32, hosts: u32) -> Self {
        TrafficMatrix::from_pattern(PatternSpec::Incast { fan_in }, hosts, hosts, 0)
    }

    /// Number of hosts in the pattern.
    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    /// Draw the next pair of a purely rotational pattern (incast), which
    /// never consumes randomness. Lets closed-loop drivers like
    /// `run_incast` share the pattern without owning an RNG.
    ///
    /// # Panics
    /// If the pattern is randomized (uniform, permutation, shuffle,
    /// hotspot) — use [`draw`](Self::draw) for those.
    pub fn draw_rotational(&mut self) -> (u32, u32) {
        match &mut self.kind {
            MatrixKind::Incast { senders, next } => {
                let src = 1 + (*next % *senders);
                *next = next.wrapping_add(1);
                (src, 0)
            }
            other => panic!("pattern {other:?} needs an RNG; use TrafficMatrix::draw"),
        }
    }

    /// Draw the next `(src, dst)` pair. Patterns with rotation state
    /// (incast, shuffle) advance it; random patterns consume draws from
    /// `rng` — the uniform pattern makes exactly the two `gen_range`
    /// calls the historical generator made, so default-spec runs replay
    /// bit-for-bit.
    pub fn draw(&mut self, rng: &mut StdRng) -> (u32, u32) {
        let hosts = self.hosts;
        if matches!(self.kind, MatrixKind::Incast { .. }) {
            return self.draw_rotational();
        }
        match &mut self.kind {
            MatrixKind::Uniform => uniform_pair(rng, hosts),
            MatrixKind::Permutation { perm } => {
                let src = rng.gen_range(0..hosts);
                (src, perm[src as usize])
            }
            MatrixKind::Incast { .. } => unreachable!("handled above"),
            MatrixKind::Shuffle { counters } => {
                let src = rng.gen_range(0..hosts);
                let k = counters[src as usize];
                counters[src as usize] = k.wrapping_add(1);
                let dst = (src + 1 + (k % (hosts - 1))) % hosts;
                (src, dst)
            }
            MatrixKind::Hotspot { hot_frac, rack_local, hot_hosts } => {
                if rng.gen::<f64>() < *hot_frac {
                    let dst = rng.gen_range(0..*hot_hosts);
                    let src = if *rack_local {
                        let mut s = rng.gen_range(0..*hot_hosts - 1);
                        if s >= dst {
                            s += 1;
                        }
                        s
                    } else {
                        rng.gen_range(*hot_hosts..hosts)
                    };
                    (src, dst)
                } else {
                    uniform_pair(rng, hosts)
                }
            }
        }
    }
}

/// The historical uniform draw: src uniform, dst uniform over the other
/// hosts.
fn uniform_pair(rng: &mut StdRng, hosts: u32) -> (u32, u32) {
    let src = rng.gen_range(0..hosts);
    let mut dst = rng.gen_range(0..hosts - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// A seeded random derangement of `0..hosts` (Fisher–Yates, re-shuffled
/// until no host maps to itself).
fn derangement(hosts: u32, seed: u64) -> Vec<u32> {
    let mut x = seed ^ 0xD129_42F1_A9C7_2E31;
    let mut next = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    let mut perm: Vec<u32> = (0..hosts).collect();
    loop {
        for i in (1..perm.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        if perm.iter().enumerate().all(|(i, &p)| i as u32 != p) {
            return perm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_matches_historical_draws() {
        // The matrix's uniform draw must consume the RNG exactly like the
        // historical inline code, so default-spec runs replay unchanged.
        let mut a = rng();
        let mut b = rng();
        let mut m = TrafficMatrix::uniform(16);
        for _ in 0..1_000 {
            let got = m.draw(&mut a);
            let src = b.gen_range(0..16u32);
            let mut dst = b.gen_range(0..15u32);
            if dst >= src {
                dst += 1;
            }
            assert_eq!(got, (src, dst));
        }
    }

    #[test]
    fn permutation_is_a_fixed_derangement() {
        let mut m = TrafficSpec::permutation().matrix(12, 4, 99);
        let mut r = rng();
        let mut seen: Vec<Option<u32>> = vec![None; 12];
        for _ in 0..2_000 {
            let (src, dst) = m.draw(&mut r);
            assert_ne!(src, dst);
            match seen[src as usize] {
                None => seen[src as usize] = Some(dst),
                Some(prev) => assert_eq!(prev, dst, "partner of {src} changed"),
            }
        }
        // Every host drew at least once and partners are distinct.
        let partners: Vec<u32> = seen.iter().map(|p| p.expect("all hosts drawn")).collect();
        let mut sorted = partners.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "not a permutation: {partners:?}");
    }

    #[test]
    fn incast_rotates_over_fan_in_senders() {
        let mut m = TrafficMatrix::incast(3, 10);
        let mut r = rng();
        let pairs: Vec<(u32, u32)> = (0..7).map(|_| m.draw(&mut r)).collect();
        assert_eq!(pairs, vec![(1, 0), (2, 0), (3, 0), (1, 0), (2, 0), (3, 0), (1, 0)]);
    }

    #[test]
    fn incast_fan_in_caps_at_population() {
        let mut m = TrafficMatrix::incast(64, 5);
        let mut r = rng();
        for _ in 0..20 {
            let (src, dst) = m.draw(&mut r);
            assert_eq!(dst, 0);
            assert!((1..5).contains(&src));
        }
    }

    #[test]
    fn shuffle_walks_every_destination() {
        let hosts = 6u32;
        let mut m = TrafficSpec::shuffle().matrix(hosts, hosts, 0);
        let mut r = rng();
        let mut per_src: Vec<Vec<u32>> = vec![Vec::new(); hosts as usize];
        for _ in 0..6_000 {
            let (src, dst) = m.draw(&mut r);
            assert_ne!(src, dst);
            per_src[src as usize].push(dst);
        }
        for (src, dsts) in per_src.iter().enumerate() {
            // Each source's destination sequence is the round-robin walk.
            for (k, &dst) in dsts.iter().enumerate() {
                let expect = (src as u32 + 1 + (k as u32 % (hosts - 1))) % hosts;
                assert_eq!(dst, expect, "src {src} draw {k}");
            }
        }
    }

    #[test]
    fn hotspot_concentrates_on_rack_zero() {
        let mut m = TrafficSpec::hotspot(0.8, false).matrix(40, 10, 0);
        let mut r = rng();
        let mut hot = 0;
        for _ in 0..10_000 {
            let (src, dst) = m.draw(&mut r);
            assert_ne!(src, dst);
            if dst < 10 {
                hot += 1;
            }
        }
        // ~80% hot plus the uniform remainder's spillover into rack 0.
        assert!((7_500..9_500).contains(&hot), "hot count {hot}");
    }

    #[test]
    fn cross_rack_hotspot_sources_outside_hot_rack() {
        let mut m = TrafficSpec::hotspot(1.0, false).matrix(40, 10, 0);
        let mut r = rng();
        for _ in 0..1_000 {
            let (src, dst) = m.draw(&mut r);
            assert!(dst < 10, "hot destination in rack 0, got {dst}");
            assert!(src >= 10, "hot message sourced in-rack: {src}");
        }
    }

    #[test]
    fn rack_local_hotspot_stays_in_rack() {
        let mut m = TrafficSpec::hotspot(1.0, true).matrix(40, 10, 0);
        let mut r = rng();
        for _ in 0..1_000 {
            let (src, dst) = m.draw(&mut r);
            assert!(src < 10 && dst < 10 && src != dst);
        }
    }

    #[test]
    fn loaded_links_normalization() {
        assert_eq!(TrafficSpec::uniform().loaded_links(40), 40);
        assert_eq!(TrafficSpec::incast(20).loaded_links(40), 1);
        assert_eq!(TrafficSpec::shuffle().loaded_links(40), 40);
    }

    #[test]
    fn default_spec_is_default() {
        assert!(TrafficSpec::default().is_default());
        assert!(TrafficSpec::uniform().is_default());
        assert!(!TrafficSpec::incast(4).is_default());
        assert!(!TrafficSpec::uniform().with_mix(Workload::W1, 0.5).is_default());
    }
}
