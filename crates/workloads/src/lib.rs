//! # homa-workloads — datacenter message-size workloads W1–W5
//!
//! The Homa paper designs and evaluates against five message-size
//! distributions (Figure 1):
//!
//! | id | source | character |
//! |----|--------|-----------|
//! | W1 | Facebook memcached (ETC model) | almost all tiny messages |
//! | W2 | Google search application | small messages, some KBs |
//! | W3 | aggregated Google datacenter traffic | mixed |
//! | W4 | Facebook Hadoop cluster | medium/heavy-tailed |
//! | W5 | DCTCP web-search benchmark | very heavy-tailed |
//!
//! The underlying traces are proprietary, but the paper's figures expose
//! each distribution's *message-count deciles* (the x-axis tick marks of
//! Figures 8/12 are the 10%, 20%, ..., 100% quantiles of message size).
//! This crate reconstructs each workload as a piecewise log-linear CDF
//! through those published anchor points — see `DESIGN.md` for the
//! substitution rationale. The reconstructed distributions reproduce the
//! properties the paper's results depend on: W1–W3 carry most *bytes* in
//! small (≤ RTTbytes) messages, while W4–W5 carry most bytes in messages
//! of hundreds of kilobytes or more.
//!
//! The crate also supplies the Poisson open-loop arrival machinery and the
//! load arithmetic used by every experiment.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`workload`] | Figure 1's W1–W5 definitions (+ the decile points the figure-accuracy gate joins on) |
//! | [`dist`] | the piecewise log-linear CDF reconstruction behind Figure 1 |
//! | [`arrivals`] | §5.1/§5.2 open-loop Poisson traffic at a target load |
//! | [`traffic`] | beyond-paper: incast/permutation/shuffle/hotspot patterns, victim overlays, mixes |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod dist;
pub mod traffic;
pub mod workload;

pub use arrivals::{Arrival, LoadPlan, PoissonArrivals};
pub use dist::MessageSizeDist;
pub use traffic::{MixSpec, PatternSpec, TrafficMatrix, TrafficSpec, VictimSpec};
pub use workload::Workload;
