//! Open-loop Poisson arrivals and load arithmetic.
//!
//! The paper's simulations create messages at senders "according to a
//! Poisson process", with the rate selected to produce a target *network
//! load*: the fraction of available network bandwidth consumed by goodput
//! packets, including protocol headers and the minimum control overhead
//! (§5.2). [`LoadPlan`] performs that conversion; [`PoissonArrivals`]
//! yields `(time, size, src, dst)` tuples for the drivers.

use crate::dist::MessageSizeDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Converts a target network load into a per-sender message arrival rate.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Number of hosts generating traffic.
    pub hosts: u32,
    /// Capacity of one host link in bits per second.
    pub host_link_bps: u64,
    /// Target load as a fraction of aggregate host-link bandwidth (0..1).
    pub load: f64,
    /// Mean message size in application bytes.
    pub mean_msg_bytes: f64,
    /// Per-message protocol overhead in wire bytes (headers for all its
    /// packets plus amortized control packets).
    pub mean_overhead_bytes: f64,
}

impl LoadPlan {
    /// Mean wire bytes consumed per message.
    pub fn mean_wire_bytes(&self) -> f64 {
        self.mean_msg_bytes + self.mean_overhead_bytes
    }

    /// Aggregate message arrival rate (messages per second) across all
    /// hosts that produces the target load.
    pub fn aggregate_rate(&self) -> f64 {
        let capacity_bytes_per_sec = self.hosts as f64 * self.host_link_bps as f64 / 8.0;
        self.load * capacity_bytes_per_sec / self.mean_wire_bytes()
    }

    /// Mean interarrival time between messages fabric-wide, in seconds.
    pub fn mean_interarrival_secs(&self) -> f64 {
        1.0 / self.aggregate_rate()
    }

    /// Estimate per-message protocol overhead for a transport that segments
    /// into `payload`-byte packets with `header` bytes of framing each, and
    /// sends roughly one `ctrl`-byte control packet per data packet beyond
    /// the blind `unsched` prefix.
    pub fn estimate_overhead(
        dist: &MessageSizeDist,
        payload: u64,
        header: u64,
        ctrl: u64,
        unsched: u64,
    ) -> f64 {
        // Numerical expectation over the quantile grid.
        let n = 10_000;
        let mut total = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            let s = dist.quantile(p);
            let pkts = s.div_ceil(payload).max(1);
            let sched_bytes = s.saturating_sub(unsched);
            let grants = sched_bytes.div_ceil(payload);
            total += (pkts * header + grants * ctrl) as f64;
        }
        total / n as f64
    }
}

/// An open-loop Poisson arrival generator over a fixed host population.
///
/// Senders and receivers are drawn uniformly at random (receiver != sender),
/// matching the paper's all-to-all communication pattern.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: StdRng,
    dist: MessageSizeDist,
    hosts: u32,
    /// Mean interarrival in nanoseconds (fabric-wide).
    mean_gap_ns: f64,
    next_ns: u64,
}

/// One generated message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in nanoseconds.
    pub at_ns: u64,
    /// Sending host index.
    pub src: u32,
    /// Receiving host index (never equal to `src`).
    pub dst: u32,
    /// Message size in bytes.
    pub size: u64,
}

impl PoissonArrivals {
    /// New generator: fabric-wide mean interarrival `mean_gap_secs`,
    /// message sizes from `dist`, uniform src/dst over `hosts`.
    pub fn new(seed: u64, dist: MessageSizeDist, hosts: u32, mean_gap_secs: f64) -> Self {
        assert!(hosts >= 2);
        assert!(mean_gap_secs > 0.0);
        let mut gen = PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            dist,
            hosts,
            mean_gap_ns: mean_gap_secs * 1e9,
            next_ns: 0,
        };
        gen.next_ns = gen.sample_gap();
        gen
    }

    fn sample_gap(&mut self) -> u64 {
        // Exponential via inverse transform; bounded away from 0 to keep
        // u64 math safe.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        (-u.ln() * self.mean_gap_ns).round().max(1.0) as u64
    }

    /// Peek the time of the next arrival without consuming it.
    pub fn peek_ns(&self) -> u64 {
        self.next_ns
    }

    /// Generate the next arrival.
    pub fn next_arrival(&mut self) -> Arrival {
        let at_ns = self.next_ns;
        self.next_ns += self.sample_gap();
        let src = self.rng.gen_range(0..self.hosts);
        let mut dst = self.rng.gen_range(0..self.hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let size = self.dist.sample(&mut self.rng);
        Arrival { at_ns, src, dst, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn load_plan_rate_math() {
        let plan = LoadPlan {
            hosts: 10,
            host_link_bps: 10_000_000_000,
            load: 0.8,
            mean_msg_bytes: 10_000.0,
            mean_overhead_bytes: 0.0,
        };
        // 10 hosts x 1.25 GB/s x 0.8 / 10 KB = 1M messages/sec.
        let rate = plan.aggregate_rate();
        assert!((rate - 1_000_000.0).abs() / 1_000_000.0 < 1e-9);
        assert!((plan.mean_interarrival_secs() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn arrivals_have_expected_rate() {
        let dist = MessageSizeDist::fixed(1000);
        let mut gen = PoissonArrivals::new(42, dist, 4, 1e-6);
        let mut count = 0u64;
        loop {
            let a = gen.next_arrival();
            if a.at_ns > 1_000_000_000 {
                break;
            }
            count += 1;
        }
        // ~1M arrivals in a simulated second, within 1%.
        assert!((count as f64 - 1e6).abs() / 1e6 < 0.01, "count={count}");
    }

    #[test]
    fn arrivals_never_self_addressed() {
        let dist = Workload::W1.dist();
        let mut gen = PoissonArrivals::new(7, dist, 3, 1e-6);
        for _ in 0..10_000 {
            let a = gen.next_arrival();
            assert_ne!(a.src, a.dst);
            assert!(a.src < 3 && a.dst < 3);
            assert!(a.size >= 1);
        }
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        let run = |seed| {
            let mut g = PoissonArrivals::new(seed, Workload::W2.dist(), 8, 1e-6);
            (0..100).map(|_| g.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn arrival_times_strictly_increase() {
        let mut g = PoissonArrivals::new(9, Workload::W3.dist(), 8, 1e-7);
        let mut prev = 0;
        for _ in 0..10_000 {
            let a = g.next_arrival();
            assert!(a.at_ns > prev);
            prev = a.at_ns;
        }
    }

    #[test]
    fn overhead_estimate_reasonable() {
        let d = Workload::W4.dist();
        let oh = LoadPlan::estimate_overhead(&d, 1400, 60, 40, 9700);
        // W4 mean is ~ tens of KB; overhead should be a few percent of it.
        let mean = d.mean();
        assert!(oh > 0.0 && oh < mean * 0.2, "oh={oh} mean={mean}");
    }
}
