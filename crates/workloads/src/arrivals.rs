//! Open-loop Poisson arrivals and load arithmetic.
//!
//! The paper's simulations create messages at senders "according to a
//! Poisson process", with the rate selected to produce a target *network
//! load*: the fraction of available network bandwidth consumed by goodput
//! packets, including protocol headers and the minimum control overhead
//! (§5.2). [`LoadPlan`] performs that conversion; [`PoissonArrivals`]
//! yields `(time, size, src, dst)` tuples for the drivers.

use crate::dist::MessageSizeDist;
use crate::traffic::{TrafficMatrix, VictimSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Converts a target network load into a per-sender message arrival rate.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Number of hosts generating traffic.
    pub hosts: u32,
    /// Capacity of one host link in bits per second.
    pub host_link_bps: u64,
    /// Target load as a fraction of aggregate host-link bandwidth (0..1).
    pub load: f64,
    /// Mean message size in application bytes.
    pub mean_msg_bytes: f64,
    /// Per-message protocol overhead in wire bytes (headers for all its
    /// packets plus amortized control packets).
    pub mean_overhead_bytes: f64,
}

impl LoadPlan {
    /// Mean wire bytes consumed per message.
    pub fn mean_wire_bytes(&self) -> f64 {
        self.mean_msg_bytes + self.mean_overhead_bytes
    }

    /// Aggregate message arrival rate (messages per second) across all
    /// hosts that produces the target load.
    pub fn aggregate_rate(&self) -> f64 {
        let capacity_bytes_per_sec = self.hosts as f64 * self.host_link_bps as f64 / 8.0;
        self.load * capacity_bytes_per_sec / self.mean_wire_bytes()
    }

    /// Mean interarrival time between messages fabric-wide, in seconds.
    pub fn mean_interarrival_secs(&self) -> f64 {
        1.0 / self.aggregate_rate()
    }

    /// Estimate per-message protocol overhead for a transport that segments
    /// into `payload`-byte packets with `header` bytes of framing each, and
    /// sends roughly one `ctrl`-byte control packet per data packet beyond
    /// the blind `unsched` prefix.
    pub fn estimate_overhead(
        dist: &MessageSizeDist,
        payload: u64,
        header: u64,
        ctrl: u64,
        unsched: u64,
    ) -> f64 {
        // Numerical expectation over the quantile grid.
        let n = 10_000;
        let mut total = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            let s = dist.quantile(p);
            let pkts = s.div_ceil(payload).max(1);
            let sched_bytes = s.saturating_sub(unsched);
            let grants = sched_bytes.div_ceil(payload);
            total += (pkts * header + grants * ctrl) as f64;
        }
        total / n as f64
    }
}

/// An open-loop Poisson arrival generator over a fixed host population.
///
/// By default senders and receivers are drawn uniformly at random
/// (receiver != sender), matching the paper's all-to-all communication
/// pattern; [`with_matrix`](Self::with_matrix) swaps in any
/// [`TrafficMatrix`] pattern, [`with_mix`](Self::with_mix) makes the
/// size distribution bimodal, and [`with_victim`](Self::with_victim)
/// overlays a periodic victim flow. The unadorned generator is
/// draw-for-draw identical to its historical behavior, so existing seeds
/// replay unchanged.
#[derive(Debug)]
pub struct PoissonArrivals {
    rng: StdRng,
    dist: MessageSizeDist,
    matrix: TrafficMatrix,
    /// Second size mode: `frac` of messages sample from this
    /// distribution instead of `dist`.
    mix: Option<(MessageSizeDist, f64)>,
    victim: Option<VictimSpec>,
    victim_next_ns: u64,
    /// Mean interarrival in nanoseconds (fabric-wide).
    mean_gap_ns: f64,
    next_ns: u64,
}

/// One generated message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in nanoseconds.
    pub at_ns: u64,
    /// Sending host index.
    pub src: u32,
    /// Receiving host index (never equal to `src`).
    pub dst: u32,
    /// Message size in bytes.
    pub size: u64,
    /// True when this arrival belongs to the victim-flow overlay rather
    /// than the main pattern.
    pub victim: bool,
}

impl PoissonArrivals {
    /// New generator: fabric-wide mean interarrival `mean_gap_secs`,
    /// message sizes from `dist`, uniform src/dst over `hosts`.
    pub fn new(seed: u64, dist: MessageSizeDist, hosts: u32, mean_gap_secs: f64) -> Self {
        assert!(hosts >= 2);
        assert!(mean_gap_secs > 0.0);
        let mut gen = PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            dist,
            matrix: TrafficMatrix::uniform(hosts),
            mix: None,
            victim: None,
            victim_next_ns: 0,
            mean_gap_ns: mean_gap_secs * 1e9,
            next_ns: 0,
        };
        gen.next_ns = gen.sample_gap();
        gen
    }

    /// Replace the uniform pattern with `matrix` (built over the same
    /// host population).
    pub fn with_matrix(mut self, matrix: TrafficMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Sample `frac` of message sizes from `second` instead of the
    /// primary distribution (a bimodal workload mix).
    pub fn with_mix(mut self, second: MessageSizeDist, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac));
        self.mix = Some((second, frac));
        self
    }

    /// Overlay a periodic victim flow; its arrivals interleave with the
    /// main pattern in time order and carry `victim: true`.
    pub fn with_victim(mut self, victim: VictimSpec) -> Self {
        self.victim_next_ns = victim.period_ns;
        self.victim = Some(victim);
        self
    }

    fn sample_gap(&mut self) -> u64 {
        // Exponential via inverse transform; bounded away from 0 to keep
        // u64 math safe.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        (-u.ln() * self.mean_gap_ns).round().max(1.0) as u64
    }

    /// Peek the time of the next arrival without consuming it.
    pub fn peek_ns(&self) -> u64 {
        match &self.victim {
            Some(_) => self.next_ns.min(self.victim_next_ns),
            None => self.next_ns,
        }
    }

    /// Generate the next arrival (victim overlay and main pattern merged
    /// in time order; the victim wins ties so its cadence never slips).
    pub fn next_arrival(&mut self) -> Arrival {
        if let Some(v) = self.victim {
            if self.victim_next_ns <= self.next_ns {
                let at_ns = self.victim_next_ns;
                self.victim_next_ns += v.period_ns;
                return Arrival { at_ns, src: v.src, dst: v.dst, size: v.size, victim: true };
            }
        }
        let at_ns = self.next_ns;
        self.next_ns += self.sample_gap();
        let (src, dst) = self.matrix.draw(&mut self.rng);
        let size = match &self.mix {
            Some((second, frac)) if self.rng.gen::<f64>() < *frac => second.sample(&mut self.rng),
            _ => self.dist.sample(&mut self.rng),
        };
        Arrival { at_ns, src, dst, size, victim: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn load_plan_rate_math() {
        let plan = LoadPlan {
            hosts: 10,
            host_link_bps: 10_000_000_000,
            load: 0.8,
            mean_msg_bytes: 10_000.0,
            mean_overhead_bytes: 0.0,
        };
        // 10 hosts x 1.25 GB/s x 0.8 / 10 KB = 1M messages/sec.
        let rate = plan.aggregate_rate();
        assert!((rate - 1_000_000.0).abs() / 1_000_000.0 < 1e-9);
        assert!((plan.mean_interarrival_secs() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn arrivals_have_expected_rate() {
        let dist = MessageSizeDist::fixed(1000);
        let mut gen = PoissonArrivals::new(42, dist, 4, 1e-6);
        let mut count = 0u64;
        loop {
            let a = gen.next_arrival();
            if a.at_ns > 1_000_000_000 {
                break;
            }
            count += 1;
        }
        // ~1M arrivals in a simulated second, within 1%.
        assert!((count as f64 - 1e6).abs() / 1e6 < 0.01, "count={count}");
    }

    #[test]
    fn arrivals_never_self_addressed() {
        let dist = Workload::W1.dist();
        let mut gen = PoissonArrivals::new(7, dist, 3, 1e-6);
        for _ in 0..10_000 {
            let a = gen.next_arrival();
            assert_ne!(a.src, a.dst);
            assert!(a.src < 3 && a.dst < 3);
            assert!(a.size >= 1);
        }
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        let run = |seed| {
            let mut g = PoissonArrivals::new(seed, Workload::W2.dist(), 8, 1e-6);
            (0..100).map(|_| g.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn arrival_times_strictly_increase() {
        let mut g = PoissonArrivals::new(9, Workload::W3.dist(), 8, 1e-7);
        let mut prev = 0;
        for _ in 0..10_000 {
            let a = g.next_arrival();
            assert!(a.at_ns > prev);
            prev = a.at_ns;
        }
    }

    #[test]
    fn matrix_composition_redirects_endpoints() {
        use crate::traffic::TrafficMatrix;
        let mut g = PoissonArrivals::new(11, MessageSizeDist::fixed(500), 8, 1e-6)
            .with_matrix(TrafficMatrix::incast(4, 8));
        let mut prev = 0u64;
        for _ in 0..200 {
            let a = g.next_arrival();
            assert!(a.at_ns > prev);
            prev = a.at_ns;
            assert_eq!(a.dst, 0);
            assert!((1..=4).contains(&a.src));
            assert!((500..=501).contains(&a.size), "size {}", a.size);
            assert!(!a.victim);
        }
    }

    #[test]
    fn victim_overlay_interleaves_in_time_order() {
        use crate::traffic::VictimSpec;
        let mut g = PoissonArrivals::new(5, Workload::W1.dist(), 8, 1e-6)
            .with_victim(VictimSpec::new(7, 0, 2_000, 10_000));
        let mut prev = 0u64;
        let mut victims = 0u64;
        let mut last_victim_at = 0u64;
        for _ in 0..5_000 {
            let a = g.next_arrival();
            assert!(a.at_ns >= prev, "arrivals out of order");
            prev = a.at_ns;
            if a.victim {
                victims += 1;
                assert_eq!((a.src, a.dst, a.size), (7, 0, 2_000));
                assert_eq!(a.at_ns, last_victim_at + 10_000, "victim cadence slipped");
                last_victim_at = a.at_ns;
            }
        }
        assert!(victims > 100, "victim overlay starved: {victims}");
    }

    #[test]
    fn bimodal_mix_samples_both_modes() {
        let small = MessageSizeDist::fixed(10);
        let mut g = PoissonArrivals::new(3, MessageSizeDist::fixed(1_000_000), 4, 1e-6)
            .with_mix(small, 0.3);
        let (mut a, mut b) = (0u64, 0u64);
        for _ in 0..5_000 {
            let size = g.next_arrival().size;
            if size <= 100 {
                a += 1;
            } else {
                b += 1;
            }
        }
        let frac = a as f64 / (a + b) as f64;
        assert!((0.25..0.35).contains(&frac), "mix fraction {frac}");
    }

    #[test]
    fn overhead_estimate_reasonable() {
        let d = Workload::W4.dist();
        let oh = LoadPlan::estimate_overhead(&d, 1400, 60, 40, 9700);
        // W4 mean is ~ tens of KB; overhead should be a few percent of it.
        let mean = d.mean();
        assert!(oh > 0.0 && oh < mean * 0.2, "oh={oh} mean={mean}");
    }
}
