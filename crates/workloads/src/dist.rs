//! Piecewise log-linear message-size distributions.
//!
//! A [`MessageSizeDist`] is defined by anchor points `(size, cum_prob)`
//! with sizes strictly increasing and probabilities non-decreasing from 0
//! to 1. Between anchors the quantile function interpolates linearly in
//! `log(size)` — the natural interpolation for the many-decades size
//! ranges of datacenter workloads.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A message-size distribution given as a piecewise log-linear CDF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSizeDist {
    /// `(size_bytes, cumulative_probability)` anchors; the first has
    /// probability 0.0 and the last 1.0.
    anchors: Vec<(u64, f64)>,
}

impl MessageSizeDist {
    /// Build a distribution from CDF anchors.
    ///
    /// # Panics
    ///
    /// If fewer than two anchors are given, sizes are not strictly
    /// increasing, probabilities are not non-decreasing, or the endpoints
    /// are not 0.0 / 1.0.
    pub fn from_anchors(anchors: Vec<(u64, f64)>) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        assert_eq!(anchors.first().unwrap().1, 0.0, "first anchor must have p=0");
        assert_eq!(anchors.last().unwrap().1, 1.0, "last anchor must have p=1");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must be strictly increasing: {:?}", w);
            assert!(w[0].1 <= w[1].1, "probabilities must be non-decreasing: {:?}", w);
            assert!(w[0].0 >= 1, "sizes must be >= 1");
        }
        MessageSizeDist { anchors }
    }

    /// A distribution from decile anchors as published in the paper's
    /// figures: `min` is the smallest message (p=0), `deciles` are the
    /// 10%..90% quantiles, and `max` the largest (p=1).
    pub fn from_deciles(min: u64, deciles: [u64; 9], max: u64) -> Self {
        let mut anchors = Vec::with_capacity(11);
        anchors.push((min, 0.0));
        for (i, &d) in deciles.iter().enumerate() {
            anchors.push((d, (i as f64 + 1.0) / 10.0));
        }
        anchors.push((max, 1.0));
        // Published deciles occasionally repeat a size (heavy point mass);
        // nudge duplicates up by one byte to keep sizes strictly
        // increasing while preserving the distribution shape.
        for i in 1..anchors.len() {
            if anchors[i].0 <= anchors[i - 1].0 {
                anchors[i].0 = anchors[i - 1].0 + 1;
            }
        }
        Self::from_anchors(anchors)
    }

    /// A fixed-size (degenerate) distribution, handy for tests and incast
    /// experiments.
    pub fn fixed(size: u64) -> Self {
        assert!(size >= 1);
        MessageSizeDist { anchors: vec![(size, 0.0), (size + 1, 1.0)] }
    }

    /// The quantile function: the message size at cumulative probability
    /// `p` ∈ [0, 1].
    pub fn quantile(&self, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        let a = &self.anchors;
        if p <= a[0].1 {
            return a[0].0;
        }
        for w in a.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if p <= p1 {
                if p1 <= p0 {
                    return s1;
                }
                let frac = (p - p0) / (p1 - p0);
                let ls = (s0 as f64).ln() + frac * ((s1 as f64).ln() - (s0 as f64).ln());
                return ls.exp().round().max(1.0) as u64;
            }
        }
        a.last().unwrap().0
    }

    /// Cumulative probability that a message is `<= size` (inverse of
    /// [`quantile`](Self::quantile), linear in log-size within segments).
    pub fn cdf(&self, size: u64) -> f64 {
        let a = &self.anchors;
        if size <= a[0].0 {
            return if size == a[0].0 { a[0].1.max(f64::MIN_POSITIVE) } else { 0.0 };
        }
        if size >= a.last().unwrap().0 {
            return 1.0;
        }
        for w in a.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if size <= s1 {
                let frac =
                    ((size as f64).ln() - (s0 as f64).ln()) / ((s1 as f64).ln() - (s0 as f64).ln());
                return p0 + frac * (p1 - p0);
            }
        }
        1.0
    }

    /// Draw a message size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Mean message size in bytes, computed by integrating the quantile
    /// function over each log-linear segment in closed form.
    pub fn mean(&self) -> f64 {
        let mut total = 0.0;
        for w in self.anchors.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            let dp = p1 - p0;
            if dp <= 0.0 {
                continue;
            }
            let r = s1 as f64 / s0 as f64;
            // ∫ s0 * r^u du over u in [0,1], scaled by dp.
            let seg_mean =
                if (r - 1.0).abs() < 1e-12 { s0 as f64 } else { s0 as f64 * (r - 1.0) / r.ln() };
            total += dp * seg_mean;
        }
        total
    }

    /// Mean of `min(size, cap)` — the expected *unscheduled* bytes per
    /// message when the first `cap` (RTTbytes) bytes are sent blindly.
    /// Computed numerically over a fine quantile grid.
    pub fn mean_capped(&self, cap: u64) -> f64 {
        let n = 10_000;
        let mut total = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            total += self.quantile(p).min(cap) as f64;
        }
        total / n as f64
    }

    /// Fraction of all *bytes* belonging to messages of size `<= size`
    /// (the paper's Figure 1 lower panel / Figure 4 y-axis), computed
    /// numerically.
    pub fn byte_weighted_cdf(&self, size: u64) -> f64 {
        let n = 20_000;
        let mut below = 0.0;
        let mut total = 0.0;
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            let s = self.quantile(p) as f64;
            total += s;
            if s <= size as f64 {
                below += s;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            below / total
        }
    }

    /// The smallest message size in the distribution's support.
    pub fn min_size(&self) -> u64 {
        self.anchors[0].0
    }

    /// The largest message size in the distribution's support.
    pub fn max_size(&self) -> u64 {
        self.anchors.last().unwrap().0
    }

    /// The anchor points (for plotting Figure 1).
    pub fn anchors(&self) -> &[(u64, f64)] {
        &self.anchors
    }

    /// The message-count deciles of the distribution: `(percentile,
    /// size)` at 10%, 20%, ..., 100%. These are the x-axis tick marks of
    /// Figures 8/9/12/13 (each tick covers 10% of messages), and the
    /// points the `repro compare` gate joins reference curves on.
    pub fn decile_points(&self) -> [(f64, u64); 10] {
        std::array::from_fn(|i| {
            let p = (i + 1) as f64 / 10.0;
            (p * 100.0, self.quantile(p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> MessageSizeDist {
        MessageSizeDist::from_anchors(vec![(10, 0.0), (100, 0.5), (1000, 1.0)])
    }

    #[test]
    fn quantile_hits_anchors() {
        let d = simple();
        assert_eq!(d.quantile(0.0), 10);
        assert_eq!(d.quantile(0.5), 100);
        assert_eq!(d.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_log_linear_between_anchors() {
        let d = simple();
        // Halfway (p=0.25) between 10 and 100 in log space is ~31.6.
        let q = d.quantile(0.25);
        assert!((31..=33).contains(&q), "got {q}");
    }

    #[test]
    fn cdf_inverts_quantile() {
        let d = simple();
        for p in [0.05, 0.1, 0.3, 0.5, 0.7, 0.95] {
            let s = d.quantile(p);
            let back = d.cdf(s);
            assert!((back - p).abs() < 0.02, "p={p} size={s} back={back}");
        }
    }

    #[test]
    fn cdf_boundaries() {
        let d = simple();
        assert_eq!(d.cdf(5), 0.0);
        assert_eq!(d.cdf(1000), 1.0);
        assert_eq!(d.cdf(100_000), 1.0);
    }

    #[test]
    fn sample_within_support_and_distributed() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(7);
        let mut below_100 = 0;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((10..=1000).contains(&s));
            if s <= 100 {
                below_100 += 1;
            }
        }
        let frac = below_100 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn mean_matches_monte_carlo() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mc: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let analytic = d.mean();
        assert!((mc - analytic).abs() / analytic < 0.02, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn mean_capped_below_mean() {
        let d = simple();
        assert!(d.mean_capped(50) < d.mean());
        assert!(d.mean_capped(1_000_000) <= d.mean() * 1.01);
        // Cap below min: everything capped.
        assert!((d.mean_capped(10) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn byte_weighted_cdf_is_below_count_cdf_for_small_sizes() {
        // Small messages hold a smaller share of bytes than of counts.
        let d = simple();
        assert!(d.byte_weighted_cdf(100) < d.cdf(100));
        assert!(d.byte_weighted_cdf(1000) > 0.99);
    }

    #[test]
    fn fixed_dist_always_returns_size() {
        let d = MessageSizeDist::fixed(777);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((777..=778).contains(&s));
        }
    }

    #[test]
    fn from_deciles_dedups_repeated_sizes() {
        let d = MessageSizeDist::from_deciles(5, [10, 10, 10, 20, 30, 40, 50, 60, 70], 100);
        assert_eq!(d.quantile(0.0), 5);
        assert_eq!(d.quantile(1.0), 100);
        // Monotone quantile.
        let mut prev = 0;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_increasing_sizes() {
        let _ = MessageSizeDist::from_anchors(vec![(10, 0.0), (10, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "first anchor")]
    fn rejects_bad_first_probability() {
        let _ = MessageSizeDist::from_anchors(vec![(10, 0.1), (20, 1.0)]);
    }
}
