//! # homa-harness — experiment drivers for the paper's evaluation
//!
//! Everything needed to regenerate the tables and figures of §5 of the
//! Homa paper on the `homa-sim` fabric:
//!
//! * [`driver`] — generic open-loop experiment loops (one-way messages
//!   for the §5.2 simulations, echo RPCs for the §5.1 implementation
//!   measurements, incast rounds for Figure 10), workload injection,
//!   wasted-bandwidth sampling and delay attribution.
//! * [`slowdown`] — per-message records and the paper's slowdown metric:
//!   observed completion time over the best possible time on an unloaded
//!   network, summarized at p50/p99 over size bins that are linear in
//!   message count (the x-axis convention of Figures 8/9/12/13).
//! * [`scenario`] — declarative [`ScenarioSpec`]s (fabric shape, workload,
//!   load, seed, event engine) that the drivers consume; the vocabulary of
//!   the `perf-smoke` CI gate and the determinism tests.
//! * [`capacity`] — the highest-sustainable-load search behind Figure 15.
//! * [`figures`] — digitized reference curves from the published
//!   Figures 12–16 and the delta machinery of the `repro compare`
//!   figure-accuracy gate.
//! * [`render`] — plain-text table/series renderers used by the `repro`
//!   binary and recorded in `EXPERIMENTS.md`.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`driver`] | §5.1–§5.2 experiment setups |
//! | [`slowdown`] | §5.1 slowdown metric, Figures 8/9/12/13 binning |
//! | [`scenario`] | §5.2 simulation configurations as values |
//! | [`capacity`] | Figure 15 capacity search |
//! | [`figures`] | Figures 12–16 published curves |
//! | [`render`] | the figures' text form |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod driver;
pub mod figures;
pub mod render;
pub mod scenario;
pub mod slowdown;

pub use capacity::max_sustainable_load;
pub use driver::{
    run_incast, run_oneway, run_rpc_echo, IncastResult, OnewayOpts, OnewayResult, RpcOpts,
    RpcResult,
};
pub use figures::{compare_curves, CurveDelta, MeasuredPoint, PointDelta, RefCurve};
pub use scenario::{
    run_incast_scenario, run_oneway_scenario, run_rpc_echo_scenario, FabricSpec, ScenarioSpec,
};
pub use slowdown::{MsgRecord, SlowdownBin, SlowdownSummary};
