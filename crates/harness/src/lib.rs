//! # homa-harness — experiment drivers for the paper's evaluation
//!
//! Everything needed to regenerate the tables and figures of §5 of the
//! Homa paper on the `homa-sim` fabric. The single driving surface is
//! the [`ScenarioSpec`]: build one (fabric shape, workload, load, seed,
//! event engine, traffic overlay, fault plan), then call
//! [`ScenarioSpec::run_oneway`], [`ScenarioSpec::run_rpc_echo`] or
//! [`ScenarioSpec::run_incast`] on it. Every run is a pure function of
//! its spec, and every spec serializes to a one-line replay string via
//! [`ScenarioSpec::to_spec_line`].
//!
//! * [`scenario`] — declarative [`ScenarioSpec`]s and their run methods;
//!   the vocabulary of the `perf-smoke` CI gate, the determinism tests
//!   and the fuzz suites.
//! * [`driver`] — the open-loop experiment loops behind the spec run
//!   methods (one-way messages for the §5.2 simulations, echo RPCs for
//!   the §5.1 implementation measurements, incast rounds for Figure 10),
//!   workload injection, wasted-bandwidth sampling, delay attribution
//!   and delivery accounting.
//! * [`spec_line`] — the canonical `key=value` text encoding of a spec
//!   (`format ∘ parse` identity), so any run — including a shrunk fuzz
//!   failure — is replayable from a pasted line.
//! * [`fuzzing`] — seeded scenario generation ([`ScenarioSpec::arbitrary`])
//!   and deterministic shrinking ([`fuzzing::shrink_to_minimal`]) for the
//!   differential and conservation fuzz suites.
//! * [`slowdown`] — per-message records and the paper's slowdown metric:
//!   observed completion time over the best possible time on an unloaded
//!   network, summarized at p50/p99 over size bins that are linear in
//!   message count (the x-axis convention of Figures 8/9/12/13).
//! * [`capacity`] — the highest-sustainable-load search behind Figure 15.
//! * [`figures`] — digitized reference curves from the published
//!   Figures 12–16 and the delta machinery of the `repro compare`
//!   figure-accuracy gate.
//! * [`render`] — plain-text table/series renderers used by the `repro`
//!   binary and recorded in `EXPERIMENTS.md`.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`scenario`] | §5.2 simulation configurations as values |
//! | [`driver`] | §5.1–§5.2 experiment setups |
//! | [`slowdown`] | §5.1 slowdown metric, Figures 8/9/12/13 binning |
//! | [`capacity`] | Figure 15 capacity search |
//! | [`figures`] | Figures 12–16 published curves |
//! | [`render`] | the figures' text form |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capacity;
pub mod driver;
pub mod figures;
pub mod fuzzing;
pub mod render;
pub mod scenario;
pub mod slowdown;
pub mod spec_line;

pub use capacity::{
    max_sustainable_load, max_sustainable_load_with, CapacityProbe, CapacitySearch,
};
pub use driver::{IncastOpts, IncastResult, OnewayOpts, OnewayResult, RpcOpts, RpcResult};
pub use figures::{compare_curves, CurveDelta, MeasuredPoint, PointDelta, RefCurve};
pub use fuzzing::stateful::{parse_ops_line, shrink_ops_to_minimal, OpTrace};
pub use fuzzing::{
    fuzz_iters, report_failure, shrink_to_minimal, shrink_to_minimal_with, FuzzFamily, SplitMix64,
};
pub use scenario::{FabricSpec, ScenarioSpec};
pub use slowdown::{MsgRecord, SlowdownBin, SlowdownSummary};
