//! Structure-aware scenario generation and shrinking for the fuzz suites.
//!
//! The differential and conservation fuzzers (`tests/fuzz_differential.rs`,
//! `tests/fuzz_conservation.rs`) draw whole scenarios from
//! [`ScenarioSpec::arbitrary`]: a seeded, bounded walk over the fabric ×
//! workload × load × traffic × fault space. Because every run here is a
//! pure function of its spec, a failing draw is fully captured by its
//! [`ScenarioSpec::to_spec_line`] string — the harness shrinks the spec
//! with [`shrink_to_minimal`] and prints that line for exact replay.
//!
//! Generation is deliberately conservative about validity: victim flows
//! and fault events only ever name hosts that exist on the drawn fabric,
//! cross-rack hotspots are only drawn on multi-rack fabrics, and fault
//! plans stick to the host-level vocabulary (link flaps, receiver
//! pauses, rate limits) that is meaningful on every topology. The goal
//! is for *every* generated spec to be a legal run, so any panic or
//! divergence the fuzzers see is a real bug, not a generator artifact.

use crate::scenario::{FabricSpec, ScenarioSpec};
use homa_sim::{Fault, FaultPlan, HostId, LinkId};
use homa_workloads::{TrafficSpec, VictimSpec, Workload};

pub mod grammar;
pub mod stateful;

/// SplitMix64: tiny, seedable, and statistically fine for test-case
/// generation. Hand-rolled so the fuzzers add no dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// All workloads, in index order, for seeded selection.
const WORKLOADS: [Workload; 5] =
    [Workload::W1, Workload::W2, Workload::W3, Workload::W4, Workload::W5];

/// Message budget for a drawn workload: heavy-tailed distributions get
/// fewer messages so a single fuzz iteration stays in the tens of
/// milliseconds even on the larger fabrics.
fn message_budget(rng: &mut SplitMix64, wl: Workload) -> u64 {
    match wl {
        Workload::W1 => rng.range(120, 300),
        Workload::W2 => rng.range(100, 240),
        Workload::W3 => rng.range(80, 180),
        Workload::W4 => rng.range(50, 120),
        Workload::W5 => rng.range(24, 48),
    }
}

fn arbitrary_fabric(rng: &mut SplitMix64) -> FabricSpec {
    match rng.below(4) {
        0 => FabricSpec::SingleSwitch { hosts: rng.range(4, 12) as u32 },
        1 => FabricSpec::LeafSpine {
            racks: rng.range(2, 3) as u32,
            hosts_per_rack: rng.range(4, 6) as u32,
            spines: rng.range(1, 2) as u32,
        },
        2 => FabricSpec::MultiTor { hosts: [16, 24, 32][rng.below(3) as usize] },
        _ => FabricSpec::FatTree { k: 4 },
    }
}

fn multi_rack(fabric: FabricSpec) -> bool {
    !matches!(fabric, FabricSpec::SingleSwitch { .. })
}

fn arbitrary_traffic(rng: &mut SplitMix64, fabric: FabricSpec, hosts: u32) -> TrafficSpec {
    let mut traffic = if rng.chance(1, 2) {
        TrafficSpec::uniform()
    } else {
        match rng.below(4) {
            0 => TrafficSpec::permutation(),
            1 => TrafficSpec::incast(rng.range(2, 8) as u32),
            2 => TrafficSpec::shuffle(),
            // Cross-rack hotspots need more than one rack to make sense;
            // on single-switch fabrics fall back to a rack-local one.
            _ => {
                let frac = rng.range(3, 9) as f64 / 10.0;
                TrafficSpec::hotspot(frac, !multi_rack(fabric) || rng.chance(1, 2))
            }
        }
    };
    if hosts >= 3 && rng.chance(3, 10) {
        let src = rng.below(hosts as u64) as u32;
        let dst = (src + 1 + rng.below(hosts as u64 - 1) as u32) % hosts;
        traffic = traffic.with_victim(VictimSpec::new(
            src,
            dst,
            rng.range(1_000, 50_000),
            rng.range(100_000, 1_000_000),
        ));
    }
    if rng.chance(1, 4) {
        let second = WORKLOADS[rng.below(5) as usize];
        traffic = traffic.with_mix(second, rng.range(1, 5) as f64 / 10.0);
    }
    traffic
}

/// Fault plans are drawn from the host-level vocabulary only — uplink
/// and downlink flaps, receiver pauses, host-link rate limits — which
/// is valid on every fabric. Times sit inside the first few hundred
/// microseconds so faults actually overlap the injected traffic.
fn arbitrary_faults(rng: &mut SplitMix64, hosts: u32) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if !rng.chance(45, 100) {
        return plan;
    }
    for _ in 0..rng.range(1, 3) {
        let host = HostId(rng.below(hosts as u64) as u32);
        let at = rng.range(50_000, 400_000);
        let dur = rng.range(20_000, 200_000);
        match rng.below(4) {
            0 => {
                let link = if rng.chance(1, 2) {
                    LinkId::HostUplink(host)
                } else {
                    LinkId::HostDownlink(host)
                };
                plan = plan.at(at, Fault::LinkDown(link)).at(at + dur, Fault::LinkUp(link));
            }
            1 => plan = plan.receiver_pause(host, at, at + dur),
            2 => {
                let link = LinkId::HostUplink(host);
                plan = plan.rate_limit(link, at, rng.range(500_000_000, 4_000_000_000), at + dur);
            }
            _ => {
                let link = LinkId::HostDownlink(host);
                plan = plan
                    .at(at, Fault::RateLimit { link, bps: rng.range(500_000_000, 4_000_000_000) })
                    .at(at + dur, Fault::RateRestore(link));
            }
        }
    }
    plan
}

impl ScenarioSpec {
    /// A seeded, bounded random scenario: every draw is a legal run on
    /// its own fabric, and the whole spec (including `spec.seed`, set to
    /// the generator seed) is determined by `seed`. Used by the fuzz
    /// suites; `HOMA_FUZZ_ITERS` scales how many draws they take.
    pub fn arbitrary(seed: u64) -> ScenarioSpec {
        let mut rng = SplitMix64::new(seed);
        let fabric = arbitrary_fabric(&mut rng);
        let hosts = fabric.hosts();
        let workload = WORKLOADS[rng.below(5) as usize];
        let messages = message_budget(&mut rng, workload);
        let load = rng.range(6, 15) as f64 / 20.0; // 0.30..=0.75 in 0.05 steps
        let traffic = arbitrary_traffic(&mut rng, fabric, hosts);
        let faults = arbitrary_faults(&mut rng, hosts);
        ScenarioSpec::new(format!("fuzz_{seed:016x}"), fabric, workload, load, messages, seed)
            .with_traffic(traffic)
            .with_faults(faults)
    }

    /// Candidate simplifications of this spec, most aggressive first:
    /// halve the message count, step the fabric down a size class, drop
    /// fault events one at a time, drop the victim flow, drop the
    /// workload mix, and finally flatten the pattern to uniform. Each
    /// candidate is itself a legal spec, so [`shrink_to_minimal`] can
    /// greedily walk this list while a failure predicate still fires.
    pub fn shrink(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        if self.messages > 24 {
            out.push(self.clone().with_messages(self.messages / 2));
        }
        if let Some(smaller) = shrink_fabric(self.fabric) {
            out.push(refit(self.clone(), smaller));
        }
        if !self.faults.is_empty() {
            for drop in 0..self.faults.events.len() {
                let mut plan = self.faults.clone();
                plan.events.remove(drop);
                out.push(self.clone().with_faults(plan));
            }
        }
        if self.traffic.victim.is_some() {
            let mut t = self.traffic;
            t.victim = None;
            out.push(self.clone().with_traffic(t));
        }
        if self.traffic.mix.is_some() {
            let mut t = self.traffic;
            t.mix = None;
            out.push(self.clone().with_traffic(t));
        }
        if !matches!(self.traffic.pattern, homa_workloads::PatternSpec::Uniform) {
            let mut t = self.traffic;
            t.pattern = homa_workloads::PatternSpec::Uniform;
            out.push(self.clone().with_traffic(t));
        }
        out
    }
}

/// One size-class step down, terminating at `SingleSwitch { hosts: 4 }`.
fn shrink_fabric(f: FabricSpec) -> Option<FabricSpec> {
    match f {
        FabricSpec::FatTree { .. } | FabricSpec::Paper => Some(FabricSpec::MultiTor { hosts: 16 }),
        FabricSpec::MultiTor { hosts } if hosts > 16 => Some(FabricSpec::MultiTor { hosts: 16 }),
        FabricSpec::MultiTor { .. } => {
            Some(FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 4, spines: 1 })
        }
        FabricSpec::LeafSpine { .. } => Some(FabricSpec::SingleSwitch { hosts: 8 }),
        FabricSpec::SingleSwitch { hosts } if hosts > 4 => {
            Some(FabricSpec::SingleSwitch { hosts: (hosts / 2).max(4) })
        }
        FabricSpec::SingleSwitch { .. } => None,
    }
}

/// Move `spec` onto a smaller fabric, dropping any traffic overlay or
/// fault event that names a host the new fabric doesn't have, and
/// flattening cross-rack hotspots when the new fabric has one rack.
fn refit(spec: ScenarioSpec, fabric: FabricSpec) -> ScenarioSpec {
    let hosts = fabric.hosts();
    let mut traffic = spec.traffic;
    if let Some(v) = traffic.victim {
        if v.src >= hosts || v.dst >= hosts {
            traffic.victim = None;
        }
    }
    if let homa_workloads::PatternSpec::Hotspot { hot_frac, rack_local: false } = traffic.pattern {
        if !multi_rack(fabric) {
            traffic.pattern = homa_workloads::PatternSpec::Hotspot { hot_frac, rack_local: true };
        }
    }
    let mut faults = spec.faults.clone();
    faults.events.retain(|(_, f)| fault_fits(*f, hosts));
    let mut out = spec;
    out.fabric = fabric;
    out.with_traffic(traffic).with_faults(faults)
}

fn fault_fits(f: Fault, hosts: u32) -> bool {
    let link_ok = |l: LinkId| match l {
        LinkId::HostUplink(h) | LinkId::HostDownlink(h) => h.0 < hosts,
        LinkId::TorUplink { .. } | LinkId::SpineDownlink { .. } => false,
    };
    match f {
        Fault::LinkDown(l) | Fault::LinkUp(l) | Fault::RateRestore(l) => link_ok(l),
        Fault::RateLimit { link, .. } => link_ok(link),
        Fault::PauseReceiver(h) | Fault::ResumeReceiver(h) => h.0 < hosts,
        Fault::RackOutage { .. }
        | Fault::RackRestore { .. }
        | Fault::SpineOutage { .. }
        | Fault::SpineRestore { .. } => false,
    }
}

/// Greedily shrink `initial` while `fails` keeps returning true, taking
/// the first failing candidate produced by `candidates` at each step.
/// Deterministic: the same input, candidate function and predicate
/// always land on the same minimum, and the result is locally minimal —
/// no single candidate of the returned value still fails. All three
/// fuzz shrinkers (scenario specs, op traces, mutated spec lines) are
/// thin wrappers over this loop.
pub fn shrink_to_minimal_with<T: Clone>(
    initial: &T,
    candidates: impl Fn(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> bool,
) -> T {
    let mut current = initial.clone();
    'outer: loop {
        for candidate in candidates(&current) {
            if fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// Greedily shrink `spec` while `fails` keeps returning true, taking
/// the first failing candidate at each step. Deterministic: the same
/// spec and predicate always shrink to the same minimal spec. The
/// predicate is re-run once per accepted candidate, so the cost is
/// `O(steps × candidates)` runs of the scenario.
pub fn shrink_to_minimal(
    spec: &ScenarioSpec,
    fails: impl FnMut(&ScenarioSpec) -> bool,
) -> ScenarioSpec {
    shrink_to_minimal_with(spec, ScenarioSpec::shrink, fails)
}

/// Iteration count for a fuzz loop: `HOMA_FUZZ_ITERS` if set and
/// parseable, else `default`. CI smoke jobs pin this to 500; the
/// `#[ignore]` long-haul variants multiply it further.
pub fn fuzz_iters(default: u64) -> u64 {
    std::env::var("HOMA_FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Record a fuzz failure: always printed to stderr, and appended to
/// `$HOMA_FUZZ_FAILURE_DIR/<family>.txt` when that variable is set (CI
/// uploads the directory as an artifact). Each line is a replayable
/// spec line followed by ` # <detail>`.
pub fn report_failure(family: &str, spec_line: &str, detail: &str) {
    eprintln!("[{family}] FUZZ FAILURE — replay with:\n  {spec_line}\n  ({detail})");
    if let Ok(dir) = std::env::var("HOMA_FUZZ_FAILURE_DIR") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{family}.txt"));
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{spec_line} # {detail}");
        }
    }
}

/// One fuzz family's shared plumbing: its artifact name, its replay
/// environment variable, and the `HOMA_FUZZ_ITERS` / failure-reporting /
/// replay-env conventions every family follows. All five families (wire,
/// differential, conservation, stateful, spec-grammar) drive their test
/// loops through one of these so iteration budgets, artifact paths and
/// replay hooks stay consistent.
#[derive(Debug, Clone, Copy)]
pub struct FuzzFamily {
    /// Family name: the artifact file is `$HOMA_FUZZ_FAILURE_DIR/<name>.txt`.
    pub name: &'static str,
    /// Environment variable holding a one-line failure to replay.
    pub replay_var: &'static str,
}

impl FuzzFamily {
    /// A family with its artifact `name` and replay environment variable.
    pub const fn new(name: &'static str, replay_var: &'static str) -> Self {
        FuzzFamily { name, replay_var }
    }

    /// Iteration budget: `HOMA_FUZZ_ITERS` if set and parseable, else
    /// `default`. CI smoke jobs pin the variable to 500; the `#[ignore]`
    /// long-haul variants multiply the default instead.
    pub fn iters(&self, default: u64) -> u64 {
        fuzz_iters(default)
    }

    /// The one-line failure to replay, if the family's replay variable
    /// is set and non-empty.
    pub fn replay(&self) -> Option<String> {
        std::env::var(self.replay_var).ok().filter(|line| !line.trim().is_empty())
    }

    /// Record a shrunk failure through [`report_failure`] and panic with
    /// the replay instructions. The panic message names `replay_var` so
    /// a failing CI log is self-describing.
    pub fn fail(&self, minimal_line: &str, detail: &str) -> ! {
        report_failure(self.name, minimal_line, detail);
        panic!(
            "[{}] {detail}\nreplay with:\n  {}='{minimal_line}' cargo test\n",
            self.name, self.replay_var
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitrary_is_deterministic_and_bounded() {
        for seed in 0..200 {
            let a = ScenarioSpec::arbitrary(seed);
            let b = ScenarioSpec::arbitrary(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            let hosts = a.fabric.hosts();
            assert!((4..=32).contains(&hosts), "seed {seed}: {hosts} hosts");
            assert!((24..=300).contains(&a.messages), "seed {seed}: {} msgs", a.messages);
            assert!((0.30..=0.75).contains(&a.load), "seed {seed}: load {}", a.load);
            assert_eq!(a.seed, seed);
            if let Some(v) = a.traffic.victim {
                assert!(v.src < hosts && v.dst < hosts && v.src != v.dst);
            }
            for &(_, f) in &a.faults.events {
                assert!(fault_fits(f, hosts), "seed {seed}: fault {f:?} off-fabric");
            }
        }
    }

    #[test]
    fn arbitrary_specs_round_trip_through_spec_lines() {
        for seed in 0..500 {
            let spec = ScenarioSpec::arbitrary(seed);
            let line = spec.to_spec_line();
            let back = ScenarioSpec::parse_spec_line(&line)
                .unwrap_or_else(|e| panic!("seed {seed}: `{line}` failed to parse: {e}"));
            assert_eq!(back, spec, "seed {seed} diverged via `{line}`");
        }
    }

    #[test]
    fn arbitrary_covers_the_scenario_space() {
        let mut fabrics = [false; 4];
        let mut faulted = 0;
        let mut victims = 0;
        let mut mixed = 0;
        let mut non_uniform = 0;
        for seed in 0..400 {
            let s = ScenarioSpec::arbitrary(seed);
            let idx = match s.fabric {
                FabricSpec::SingleSwitch { .. } => 0,
                FabricSpec::LeafSpine { .. } => 1,
                FabricSpec::MultiTor { .. } => 2,
                _ => 3,
            };
            fabrics[idx] = true;
            faulted += u32::from(!s.faults.is_empty());
            victims += u32::from(s.traffic.victim.is_some());
            mixed += u32::from(s.traffic.mix.is_some());
            non_uniform +=
                u32::from(!matches!(s.traffic.pattern, homa_workloads::PatternSpec::Uniform));
        }
        assert!(fabrics.iter().all(|&f| f), "some fabric class never drawn");
        assert!(faulted > 80, "only {faulted}/400 runs faulted");
        assert!(victims > 50, "only {victims}/400 runs had victims");
        assert!(mixed > 40, "only {mixed}/400 runs had mixes");
        assert!(non_uniform > 100, "only {non_uniform}/400 non-uniform patterns");
    }

    #[test]
    fn shrink_candidates_stay_legal() {
        for seed in 0..150 {
            let spec = ScenarioSpec::arbitrary(seed);
            for cand in spec.shrink() {
                let hosts = cand.fabric.hosts();
                if let Some(v) = cand.traffic.victim {
                    assert!(v.src < hosts && v.dst < hosts, "seed {seed} shrank off-fabric");
                }
                for &(_, f) in &cand.faults.events {
                    assert!(fault_fits(f, hosts), "seed {seed} shrank fault off-fabric");
                }
                // Every candidate must still serialize and replay.
                let line = cand.to_spec_line();
                assert_eq!(ScenarioSpec::parse_spec_line(&line).unwrap(), cand);
            }
        }
    }

    /// The acceptance-criterion demo in miniature: a predicate that
    /// fails whenever a spec still carries any fault event shrinks down
    /// to a single-event plan on the smallest fabric — and the result
    /// is printable and replayable as a one-line spec.
    #[test]
    fn shrinker_reaches_a_minimal_failing_spec() {
        let seed = (0..5_000)
            .find(|&s| ScenarioSpec::arbitrary(s).faults.events.len() >= 2)
            .expect("generator never produced a multi-fault plan");
        let spec = ScenarioSpec::arbitrary(seed);
        let minimal = shrink_to_minimal(&spec, |s| !s.faults.is_empty());
        assert_eq!(minimal.faults.events.len(), 1, "should shrink to exactly one fault");
        assert!(minimal.messages <= 24, "messages should have been halved to the floor");
        assert!(
            matches!(minimal.fabric, FabricSpec::SingleSwitch { hosts: 4 })
                || minimal.faults.events.len() == 1,
            "fabric should shrink while the fault survives refitting"
        );
        let line = minimal.to_spec_line();
        assert_eq!(ScenarioSpec::parse_spec_line(&line).unwrap(), minimal);
        // Deterministic: shrinking again lands on the same spec.
        assert_eq!(shrink_to_minimal(&spec, |s| !s.faults.is_empty()), minimal);
    }

    #[test]
    fn shrink_to_minimal_returns_input_when_nothing_smaller_fails() {
        let spec = ScenarioSpec::arbitrary(7);
        assert_eq!(shrink_to_minimal(&spec, |s| s == &spec), spec);
    }
}
